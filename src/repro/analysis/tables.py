"""Table 1 of the paper, as data, plus a paper-vs-measured renderer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Table1Row:
    """One row of the paper's Table 1 (or a Theorem 1.6 entry)."""

    problem: str
    kind: str                 # "upper" or "lower"
    ratio: str                # approximation ratio as printed in the paper
    paper_bound: str          # the paper's Õ/Ω expression
    claimed_exponent: float   # polylog-free exponent of the n-term
    reference: str            # theorem number or citation
    bench: str                # benchmark file that regenerates the row


#: The paper's Table 1 plus the two Theorem 1.6 results, keyed by exp id
#: (see DESIGN.md §3 for the same index).
TABLE1_CLAIMS: Dict[str, Table1Row] = {
    "T1-R1-LB": Table1Row(
        "Directed MWC", "lower", "2-eps", "Omega(n / log n)", 1.0,
        "Thm 1.2.A", "bench_lb_directed.py"),
    "T1-R2-LB": Table1Row(
        "Directed MWC", "lower", "alpha", "Omega(sqrt(n) / log n)", 0.5,
        "Thm 1.2.B", "bench_lb_alpha.py"),
    "T1-R1-UB": Table1Row(
        "Directed MWC", "upper", "1 (exact)", "O~(n)", 1.0,
        "[8]", "bench_exact_directed.py"),
    "T1-R2-UB": Table1Row(
        "Directed unweighted MWC", "upper", "2", "O~(n^{4/5} + D)", 0.8,
        "Thm 1.2.C", "bench_directed_2approx.py"),
    "T1-R2-UBw": Table1Row(
        "Directed weighted MWC", "upper", "2+eps", "O~(n^{4/5} + D)", 0.8,
        "Thm 1.2.D", "bench_directed_weighted.py"),
    "T1-R3-LB": Table1Row(
        "Undirected weighted MWC", "lower", "2-eps / alpha",
        "Omega(n / log n), Omega(sqrt(n)/log n)", 1.0,
        "Thm 1.4.A/B", "bench_lb_undirected.py"),
    "T1-R3-UB": Table1Row(
        "Undirected weighted MWC", "upper", "1 (exact)", "O~(n)", 1.0,
        "[8]", "bench_exact_undirected.py"),
    "T1-R4-UB": Table1Row(
        "Undirected weighted MWC", "upper", "2+eps", "O~(n^{2/3} + D)",
        2.0 / 3.0, "Thm 1.4.C", "bench_undirected_weighted.py"),
    "T1-R5-LB": Table1Row(
        "Girth", "lower", "alpha", "Omega(n^{1/4} / log n)", 0.25,
        "Thm 1.3.A", "bench_lb_girth.py"),
    "T1-R5-UB": Table1Row(
        "Girth", "upper", "1 (exact)", "O(n)", 1.0,
        "[28]", "bench_exact_girth.py"),
    "T1-R6-UB": Table1Row(
        "Girth", "upper", "2 - 1/g", "O~(sqrt(n) + D)", 0.5,
        "Thm 1.3.B", "bench_girth_2approx.py"),
    "T6-A": Table1Row(
        "k-source BFS", "upper", "exact", "O~(sqrt(nk) + D), k >= n^{1/3}",
        0.5, "Thm 1.6.A", "bench_ksource_bfs.py"),
    "T6-B": Table1Row(
        "k-source SSSP", "upper", "1+eps", "O~(sqrt(nk) + D), k >= n^{1/3}",
        0.5, "Thm 1.6.B", "bench_ksource_sssp.py"),
}


def render_table(measured: Optional[Dict[str, Dict[str, object]]] = None) -> str:
    """Render Table 1 with optional per-row measured results.

    ``measured[exp_id]`` may carry keys ``exponent``, ``r_squared``,
    ``ratio_ok``, ``note`` — typically produced by the benchmarks.
    """
    measured = measured or {}
    header = (f"{'exp id':<11} {'problem':<26} {'ratio':<12} "
              f"{'paper bound':<38} {'measured':<24} {'ref':<10}")
    lines = [header, "-" * len(header)]
    for exp_id, row in TABLE1_CLAIMS.items():
        got = measured.get(exp_id)
        if got is None:
            shown = "-"
        else:
            parts = []
            if "exponent" in got:
                parts.append(f"n^{float(got['exponent']):.2f}")
            if "ratio_ok" in got:
                parts.append("ratio ok" if got["ratio_ok"] else "RATIO FAIL")
            if "note" in got:
                parts.append(str(got["note"]))
            shown = ", ".join(parts) if parts else "-"
        lines.append(
            f"{exp_id:<11} {row.problem:<26} {row.ratio:<12} "
            f"{row.paper_bound:<38} {shown:<24} {row.reference:<10}"
        )
    return "\n".join(lines)
