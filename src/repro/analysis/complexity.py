"""Round-complexity exponent fitting.

Paper claims are of the form Õ(n^e + D); on a geometric sweep of n (with D
held small or subtracted) the measured rounds should fit ``rounds ~ c * n^e``
in log-log space. ``fit_exponent`` does the least-squares fit and reports
the slope, so benchmarks can compare against the claimed exponent without
chasing absolute constants (which Õ hides anyway).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class FitResult:
    """Least-squares power-law fit ``y = c * x^exponent``."""

    exponent: float
    constant: float
    r_squared: float
    points: List[Tuple[float, float]]

    def predict(self, x: float) -> float:
        """Predicted y at x under the fitted power law."""
        return self.constant * (x ** self.exponent)

    def matches(self, claimed: float, tol: float = 0.25) -> bool:
        """Whether the fitted exponent is within ``tol`` of the claim.

        The default tolerance is generous because polylog factors and
        additive +D terms bend small-n fits; EXPERIMENTS.md reports the raw
        numbers alongside.
        """
        return abs(self.exponent - claimed) <= tol


def fit_exponent(ns: Sequence[float], rounds: Sequence[float],
                 polylog_correction: float = 0.0) -> FitResult:
    """Fit ``rounds ~ c * n^e * (log2 n)^p`` by log-log regression.

    ``polylog_correction`` is ``p``, the number of log factors the paper's
    Õ bound hides for this algorithm: at simulable n, ``log2 n`` behaves
    like a substantial power of n (log2 384 ≈ n^{0.43}), so raw fits
    overstate the exponent. Benchmarks report both the raw (p = 0) and the
    corrected fit; EXPERIMENTS.md discusses the gap.
    """
    if len(ns) != len(rounds) or len(ns) < 2:
        raise ValueError("need at least two (n, rounds) points")
    if any(x <= 0 for x in ns) or any(y <= 0 for y in rounds):
        raise ValueError("power-law fit requires positive values")
    ns = np.asarray(ns, dtype=float)
    rounds = np.asarray(rounds, dtype=float)
    if polylog_correction:
        rounds = rounds / np.log2(ns) ** polylog_correction
    lx = np.log(ns)
    ly = np.log(rounds)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(
        exponent=float(slope),
        constant=float(math.exp(intercept)),
        r_squared=r2,
        points=list(zip(map(float, ns), map(float, rounds))),
    )


def crossover_point(
    xs: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> Optional[float]:
    """First x where series_a drops (weakly) below series_b, if any.

    Used for "who wins where" claims, e.g. §4's girth algorithm vs the
    Peleg–Roditty–Tal baseline as the girth grows.
    """
    for x, a, b in zip(xs, series_a, series_b):
        if a <= b:
            return float(x)
    return None


def geometric_sizes(start: int, stop: int, count: int) -> List[int]:
    """``count`` roughly geometric sizes in [start, stop], deduplicated."""
    if count < 2:
        return [start]
    ratio = (stop / start) ** (1.0 / (count - 1))
    sizes = []
    for i in range(count):
        n = int(round(start * ratio ** i))
        if not sizes or n > sizes[-1]:
            sizes.append(n)
    return sizes
