"""Congestion analysis of simulator runs.

Summarizes a :class:`~repro.congest.network.NetworkStats` into the numbers
the paper's congestion arguments talk about (per-phase link loads, how often
the bandwidth was exceeded and by how much), and renders a compact ASCII
histogram for benchmark/ablation output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.congest.network import NetworkStats


@dataclass
class CongestionSummary:
    """Digest of per-step maximum link loads."""

    steps: int
    max_load: int
    mean_load: float
    overloaded_steps: int      # steps whose max load exceeded the bandwidth
    overload_fraction: float
    words_per_step: float

    def __str__(self) -> str:
        return (f"steps={self.steps} max_load={self.max_load} "
                f"mean_load={self.mean_load:.2f} "
                f"overloaded={self.overloaded_steps} "
                f"({100 * self.overload_fraction:.1f}%)")


def summarize(stats: NetworkStats, bandwidth: int = 1) -> CongestionSummary:
    """Digest the link-load histogram of a finished run."""
    hist = stats.link_load_histogram
    steps = sum(hist.values())
    if steps == 0:
        return CongestionSummary(0, 0, 0.0, 0, 0.0, 0.0)
    total_load = sum(load * count for load, count in hist.items())
    overloaded = sum(count for load, count in hist.items() if load > bandwidth)
    return CongestionSummary(
        steps=steps,
        max_load=stats.max_link_load,
        mean_load=total_load / steps,
        overloaded_steps=overloaded,
        overload_fraction=overloaded / steps,
        words_per_step=stats.words / steps,
    )


def load_histogram_ascii(stats: NetworkStats, width: int = 40,
                         buckets: int = 8) -> str:
    """Render the per-step max-load distribution as an ASCII histogram."""
    hist = stats.link_load_histogram
    if not hist:
        return "(no steps recorded)"
    max_load = max(hist)
    bucket_size = max(1, (max_load + buckets) // buckets)
    counts: Dict[int, int] = {}
    for load, count in hist.items():
        counts[load // bucket_size] = counts.get(load // bucket_size, 0) + count
    peak = max(counts.values())
    lines: List[str] = []
    for b in sorted(counts):
        lo, hi = b * bucket_size, (b + 1) * bucket_size - 1
        bar = "#" * max(1, round(width * counts[b] / peak))
        lines.append(f"load {lo:>4}-{hi:<4} | {bar} {counts[b]}")
    return "\n".join(lines)
