"""Analysis utilities: exponent fitting, crossover detection, Table 1 view."""

from repro.analysis.complexity import (
    crossover_point,
    fit_exponent,
    FitResult,
    geometric_sizes,
)
from repro.analysis.tables import Table1Row, render_table, TABLE1_CLAIMS

__all__ = [
    "fit_exponent",
    "FitResult",
    "crossover_point",
    "geometric_sizes",
    "Table1Row",
    "render_table",
    "TABLE1_CLAIMS",
]
