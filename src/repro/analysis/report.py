"""Regenerate the experiments report from persisted benchmark results.

``pytest benchmarks/ --benchmark-only`` persists one JSON per experiment
under ``benchmarks/results/``; this module turns that directory back into
the paper-vs-measured markdown used in EXPERIMENTS.md — so the document is
reproducible from artifacts rather than hand-maintained numbers. Exposed on
the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.analysis.tables import TABLE1_CLAIMS


def load_results(directory: str) -> Dict[str, dict]:
    """Load every ``<exp_id>.json`` in ``directory``."""
    out: Dict[str, dict] = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name)) as f:
            payload = json.load(f)
        exp_id = payload.get("exp_id")
        if exp_id:
            out[exp_id] = payload
    return out


def _fmt_rounds(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def _row_markdown(exp_id: str, payload: dict) -> List[str]:
    claim = TABLE1_CLAIMS.get(exp_id)
    title = f"### {exp_id}"
    if claim:
        title += f" — {claim.problem} ({claim.ratio}): paper {claim.paper_bound}"
    lines = [title, ""]
    rows = payload.get("rows", [])
    if rows:
        lines.append("| n | rounds | ratio | extras |")
        lines.append("|---|---|---|---|")
        for row in rows:
            value = row.get("value")
            truth = row.get("true_value")
            if value is not None and truth not in (None, 0, float("inf")):
                try:
                    ratio = f"{float(value) / float(truth):.3f}"
                except (TypeError, ZeroDivisionError, ValueError):
                    ratio = "-"
            else:
                ratio = "-"
            extras = ", ".join(f"{k}={v}" for k, v in row.get("extra", {}).items())
            lines.append(f"| {row['n']} | {_fmt_rounds(row['rounds'])} "
                         f"| {ratio} | {extras} |")
        lines.append("")
    fit = payload.get("fit")
    if fit:
        claim_txt = (f" (paper exponent {claim.claimed_exponent:.2f})"
                     if claim else "")
        lines.append(f"- fitted exponent: **{fit['exponent']:.3f}**{claim_txt}, "
                     f"R² = {fit['r_squared']:.3f}")
    corrected = payload.get("corrected_fit")
    if corrected:
        lines.append(
            f"- polylog-corrected exponent "
            f"(p = {corrected.get('polylog_correction', '?')}): "
            f"**{corrected['exponent']:.3f}**, R² = {corrected['r_squared']:.3f}")
    notes = payload.get("notes")
    if notes:
        lines.append(f"- note: {notes}")
    lines.append("")
    return lines


def render_report(directory: str) -> str:
    """Markdown report for every persisted experiment, Table 1 order first."""
    results = load_results(directory)
    lines = [
        "# Measured results (auto-generated)",
        "",
        f"Source: `{directory}` — regenerate with "
        "`pytest benchmarks/ --benchmark-only` followed by "
        "`python -m repro report`.",
        "",
    ]
    ordered = [k for k in TABLE1_CLAIMS if k in results]
    ordered += [k for k in results if k not in TABLE1_CLAIMS]
    if not ordered:
        lines.append("_No persisted results found._")
    for exp_id in ordered:
        lines.extend(_row_markdown(exp_id, results[exp_id]))
    return "\n".join(lines)


def write_report(directory: str, out_path: Optional[str] = None) -> str:
    """Render and optionally write the report; returns the markdown."""
    text = render_report(directory)
    if out_path:
        with open(out_path, "w") as f:
            f.write(text + "\n")
    return text
