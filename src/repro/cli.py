"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``mwc``       compute (approximate) MWC of an edge-list graph
``apsp``      distributed APSP round/value report
``generate``  write a workload graph as an edge list
``table``     render Table 1 with any persisted benchmark results
``verify-lb`` build + verify a lower-bound reduction instance
``cache``     inspect or clear the graph / ground-truth disk cache
``metrics``   summarize observability JSONL records (see repro.obs)
``lint``      run congestlint, the CONGEST conformance analyzer
              (see repro.lint and docs/static_analysis.md)
``resume``    continue an interrupted journaled sweep from its last
              completed point (see docs/resilience.md)

``mwc`` and ``apsp`` accept ``--metrics`` (print a per-phase round
breakdown) and ``--metrics-out FILE`` (append the run's observability
record as one JSON line); both imply phase tracking for the run. They also
accept ``--degrade`` (with ``--max-rounds``: return a best-effort result
flagged inexact instead of aborting on budget exhaustion), and ``mwc
--algorithm exact`` accepts ``--checkpoint KEY`` to snapshot/resume the
run through the content-addressed cache.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.graphs.graph import INF


def _add_seed(p: argparse.ArgumentParser) -> None:
    """Attach the standard --seed option."""
    p.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_max_rounds(p: argparse.ArgumentParser) -> None:
    """Attach the standard --max-rounds round-budget option."""
    p.add_argument(
        "--max-rounds", type=_positive_int, default=None, metavar="R",
        help="abort with a clear error once the simulated execution "
             "exceeds R CONGEST rounds (default: unbounded)")


def _add_engine(p: argparse.ArgumentParser) -> None:
    """Attach the standard --engine exchange-path selector."""
    p.add_argument(
        "--engine", default="auto",
        choices=("auto", "kernel", "batch", "dict"),
        help="simulator execution engine: 'kernel' forces the vectorized "
             "multi-wave kernel (implies batching), 'batch' the columnar "
             "exchange without kernels, 'dict' the scalar reference path, "
             "'auto' (default) honors REPRO_KERNELS/REPRO_BATCH")


def _engine_scope(args):
    """Ambient batching/kernels overrides for the selected --engine."""
    import contextlib

    from repro.congest.batch import batching
    from repro.congest.kernels import kernels

    engine = getattr(args, "engine", "auto")
    if engine == "auto":
        return contextlib.nullcontext()
    stack = contextlib.ExitStack()
    stack.enter_context(batching(engine in ("kernel", "batch")))
    stack.enter_context(kernels(engine == "kernel"))
    return stack


def _add_degrade(p: argparse.ArgumentParser) -> None:
    """Attach the standard --degrade graceful-degradation switch."""
    p.add_argument(
        "--degrade", action="store_true",
        help="degrade to a best-effort result (flagged inexact) instead of "
             "aborting when --max-rounds is exhausted (docs/resilience.md)")


def _degrade_scope(args):
    """Ambient degradation override for --degrade."""
    import contextlib

    from repro.resilience.degrade import degrading

    if getattr(args, "degrade", False):
        return degrading(True)
    return contextlib.nullcontext()


def _add_metrics(p: argparse.ArgumentParser) -> None:
    """Attach the standard --metrics / --metrics-out options."""
    p.add_argument(
        "--metrics", action="store_true",
        help="enable phase-scoped metrics and print a per-phase breakdown")
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="append the run's observability record to FILE as JSONL "
             "(implies --metrics)")


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimum Weight Cycle in the CONGEST model (PODC 2024 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mwc", help="compute (approximate) MWC")
    p.add_argument("graph", help="edge-list file (see repro.graphs.io)")
    p.add_argument("--algorithm", default="auto",
                   choices=["auto", "exact", "2approx", "weighted-approx",
                            "girth-approx", "apsp-approx"],
                   help="'auto' picks the paper's algorithm for the class")
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--witness", action="store_true",
                   help="also construct a witness cycle (exact only)")
    p.add_argument("--checkpoint", default=None, metavar="KEY",
                   help="snapshot the run under this cache key at "
                        "--checkpoint-interval rounds and resume from the "
                        "latest snapshot if one exists (exact algorithm "
                        "only; see docs/resilience.md)")
    p.add_argument("--checkpoint-interval", type=_positive_int, default=None,
                   metavar="R",
                   help="rounds between checkpoint snapshots (default 64)")
    _add_seed(p)
    _add_max_rounds(p)
    _add_engine(p)
    _add_degrade(p)
    _add_metrics(p)

    p = sub.add_parser("apsp", help="distributed APSP")
    p.add_argument("graph")
    p.add_argument("--mode", default="auto",
                   choices=["auto", "exact", "approx"])
    p.add_argument("--eps", type=float, default=0.5)
    _add_seed(p)
    _add_max_rounds(p)
    _add_engine(p)
    _add_degrade(p)
    _add_metrics(p)

    p = sub.add_parser("generate", help="generate a workload graph")
    p.add_argument("out", help="output edge-list path")
    p.add_argument("--type", default="er",
                   choices=["er", "cycle", "cycle-chords", "grid", "planted"])
    p.add_argument("-n", type=int, default=64)
    p.add_argument("-p", type=float, default=0.08)
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--max-weight", type=int, default=8)
    p.add_argument("--cycle-len", type=int, default=4)
    p.add_argument("--chords", type=int, default=3)
    _add_seed(p)

    p = sub.add_parser("table", help="render Table 1 (paper vs measured)")
    p.add_argument("--results", default=None,
                   help="benchmarks/results directory (default: autodetect)")

    p = sub.add_parser("report",
                       help="regenerate the measured-results markdown from "
                            "persisted benchmark JSONs")
    p.add_argument("--results", default=None)
    p.add_argument("--out", default=None,
                   help="write markdown to this path (default: stdout)")

    p = sub.add_parser("verify-lb", help="verify a lower-bound family")
    p.add_argument("--family", default="directed",
                   choices=["directed", "undirected-weighted",
                            "alpha-directed", "alpha-undirected", "girth"])
    p.add_argument("-m", type=int, default=6, help="encoding size parameter")
    p.add_argument("--alpha", type=float, default=4.0)
    p.add_argument("--intersecting", action="store_true")
    _add_seed(p)

    p = sub.add_parser("cache",
                       help="inspect or clear the benchmark result cache")
    p.add_argument("action", nargs="?", default="stats",
                   choices=["stats", "clear"],
                   help="'stats' (default) prints entry counts; 'clear' "
                        "deletes every cached entry")

    p = sub.add_parser("metrics",
                       help="summarize observability JSONL records")
    p.add_argument("file", help="JSONL file written via --metrics-out or "
                                "repro.obs.emit_jsonl")
    p.add_argument("--json", action="store_true",
                   help="print the aggregated per-phase totals as JSON "
                        "instead of a table")

    p = sub.add_parser("lint",
                       help="run congestlint (CONGEST conformance rules)")
    p.add_argument("paths", nargs="*", default=None, metavar="PATH",
                   help="files or directories to lint (default: src/repro "
                        "resolved against the repository root)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (default: text)")
    p.add_argument("--rules", default=None, metavar="CL001,CL003",
                   help="comma-separated subset of rule ids to run")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file (default: .congestlint.json at the "
                        "repository root)")
    p.add_argument("--fail-on-new", action="store_true",
                   help="exit 0 when every finding is in the baseline, "
                        "1 only for findings not baselined (the CI gate)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to accept the current "
                        "findings, then exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")

    p = sub.add_parser("resume",
                       help="resume an interrupted journaled sweep")
    p.add_argument("journal",
                   help="JSONL sweep journal written by "
                        "run_sweep(journal=...)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS, else serial)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-point wall-clock budget for the remaining points")
    p.add_argument("--retries", type=int, default=0,
                   help="retry budget per remaining point (default 0)")
    return parser


def _load(path: str):
    from repro.graphs.io import load_edgelist
    return load_edgelist(path)


def _metrics_wanted(args) -> bool:
    return bool(getattr(args, "metrics", False)
                or getattr(args, "metrics_out", None))


def _metrics_scope(args):
    """Ambient phase-tracking scope: active iff --metrics/--metrics-out."""
    import contextlib

    from repro.obs import observing

    return observing() if _metrics_wanted(args) else contextlib.nullcontext()


def _finish_metrics(args, label: str, res) -> None:
    """Print the per-phase table and/or append the JSONL record."""
    if not _metrics_wanted(args):
        return
    from repro.obs import emit_jsonl, get_registry, summarize_phases

    stats = res.stats
    record = {
        "label": label,
        "rounds": res.rounds,
        "stats": {"steps": stats.steps, "messages": stats.messages,
                  "words": stats.words,
                  "local_messages": stats.local_messages,
                  "max_link_load": stats.max_link_load},
        "phases": res.details.get("phases", {}),
    }
    snapshot = get_registry().snapshot()
    if snapshot:
        record["metrics"] = snapshot
    print()
    print(summarize_phases([record]))
    if args.metrics_out:
        path = emit_jsonl(record, args.metrics_out)
        print(f"metrics record appended to {path}")


def cmd_mwc(args) -> int:
    """Handle `repro mwc`: compute (approximate) MWC of an edge list."""
    from repro.core.apsp import mwc_via_approx_apsp
    from repro.core.directed_mwc import directed_mwc_2approx
    from repro.core.exact_mwc import exact_mwc_congest
    from repro.core.girth import girth_2approx
    from repro.core.weighted_mwc import (
        directed_weighted_mwc_approx,
        undirected_weighted_mwc_approx,
    )

    g = _load(args.graph)
    algorithm = args.algorithm
    if algorithm == "auto":
        if not g.weighted and g.directed:
            algorithm = "2approx"
        elif not g.weighted:
            algorithm = "girth-approx"
        else:
            algorithm = "weighted-approx"
    checkpoint = None
    if args.checkpoint:
        if algorithm != "exact":
            print("error: --checkpoint is only supported with "
                  "--algorithm exact", file=sys.stderr)
            return 2
        from repro.congest.checkpoint import DEFAULT_INTERVAL, CheckpointManager
        checkpoint = CheckpointManager(
            args.checkpoint,
            interval=args.checkpoint_interval or DEFAULT_INTERVAL)
    with _metrics_scope(args):
        if algorithm == "exact":
            res = exact_mwc_congest(g, seed=args.seed,
                                    construct_witness=args.witness,
                                    checkpoint=checkpoint)
        elif algorithm == "2approx":
            res = directed_mwc_2approx(g, seed=args.seed)
        elif algorithm == "girth-approx":
            res = girth_2approx(g, seed=args.seed)
        elif algorithm == "weighted-approx":
            if g.directed:
                res = directed_weighted_mwc_approx(g, eps=args.eps,
                                                   seed=args.seed)
            else:
                res = undirected_weighted_mwc_approx(g, eps=args.eps,
                                                     seed=args.seed)
        elif algorithm == "apsp-approx":
            res = mwc_via_approx_apsp(g, eps=args.eps, seed=args.seed)
        else:  # pragma: no cover - argparse restricts choices
            raise ValueError(algorithm)
    value = "inf (acyclic)" if res.value == INF else f"{res.value:g}"
    print(f"graph: {g}")
    print(f"algorithm: {algorithm}")
    print(f"mwc value: {value}")
    print(f"congest rounds: {res.rounds}")
    if not res.exact:
        events = res.details.get("degraded", [])
        print(f"DEGRADED: best-effort upper bound after {len(events)} "
              f"absorbed budget failure(s); rerun with a larger "
              f"--max-rounds for the exact value")
    if checkpoint is not None:
        meta = res.details.get("checkpoint", {})
        resumed = meta.get("resumed_stage")
        print(f"checkpoint: {meta.get('saved', 0)} snapshot(s) taken"
              + (f", resumed at stage {resumed!r}" if resumed else ""))
    witness = res.details.get("witness")
    if witness:
        print(f"witness cycle: {' -> '.join(map(str, witness))}")
    _finish_metrics(args, f"mwc/{algorithm}", res)
    return 0


def cmd_apsp(args) -> int:
    """Handle `repro apsp`: distributed APSP report."""
    from repro.core.apsp import apsp_approx, apsp_unweighted, apsp_weighted_exact

    g = _load(args.graph)
    mode = args.mode
    if mode == "auto":
        mode = "approx" if g.weighted else "exact"
    with _metrics_scope(args):
        if mode == "exact":
            res = apsp_weighted_exact(g, seed=args.seed) if g.weighted \
                else apsp_unweighted(g, seed=args.seed)
        else:
            res = apsp_approx(g, eps=args.eps, seed=args.seed)
    reachable = sum(len(d) for d in res.dist)
    print(f"graph: {g}")
    print(f"mode: {res.details['mode']}")
    print(f"congest rounds: {res.rounds}")
    print(f"reachable pairs: {reachable} / {g.n * g.n}")
    if not res.exact:
        events = res.details.get("degraded", [])
        print(f"DEGRADED: partial distances after {len(events)} absorbed "
              f"budget failure(s)")
    _finish_metrics(args, f"apsp/{mode}", res)
    return 0


def cmd_generate(args) -> int:
    """Handle `repro generate`: write a workload graph."""
    from repro.graphs import (
        cycle_graph,
        cycle_with_chords,
        erdos_renyi,
        grid_graph,
        planted_mwc,
    )
    from repro.graphs.io import save_edgelist

    if args.type == "er":
        g = erdos_renyi(args.n, args.p, directed=args.directed,
                        weighted=args.weighted, max_weight=args.max_weight,
                        seed=args.seed)
    elif args.type == "cycle":
        g = cycle_graph(args.n, directed=args.directed,
                        weighted=args.weighted,
                        weights=[1] * args.n if args.weighted else None)
    elif args.type == "cycle-chords":
        g = cycle_with_chords(args.n, args.chords, directed=args.directed,
                              weighted=args.weighted,
                              max_weight=args.max_weight, seed=args.seed)
    elif args.type == "grid":
        side = max(2, int(args.n ** 0.5))
        g = grid_graph(side, side, weighted=args.weighted,
                       max_weight=args.max_weight, seed=args.seed)
    else:
        g = planted_mwc(args.n, cycle_len=args.cycle_len, p=args.p,
                        directed=args.directed, weighted=args.weighted,
                        seed=args.seed)
    save_edgelist(g, args.out)
    print(f"wrote {g} to {args.out}")
    return 0


def cmd_table(args) -> int:
    """Handle `repro table`: render Table 1 with measured results."""
    from repro.analysis.tables import render_table
    from repro.harness import results_dir

    directory = args.results or results_dir()
    measured = {}
    if os.path.isdir(directory):
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(directory, name)) as f:
                payload = json.load(f)
            entry = {}
            if "fit" in payload:
                entry["exponent"] = payload["fit"]["exponent"]
            ratios = [r.get("value") is not None for r in payload.get("rows", [])]
            if any(ratios):
                entry["ratio_ok"] = True
            measured[payload["exp_id"]] = entry
    print(render_table(measured))
    return 0


def cmd_report(args) -> int:
    """Handle `repro report`: regenerate the measured-results markdown."""
    from repro.analysis.report import write_report
    from repro.harness import results_dir

    directory = args.results or results_dir()
    text = write_report(directory, args.out)
    if args.out:
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def cmd_verify_lb(args) -> int:
    """Handle `repro verify-lb`: build + verify a reduction instance."""
    from repro.lowerbounds import (
        alpha_approx_directed_family,
        alpha_approx_undirected_family,
        directed_mwc_family,
        girth_alpha_family,
        random_disjoint,
        random_intersecting,
        undirected_weighted_family,
        verify_instance,
    )

    m = args.m
    maker = random_intersecting if args.intersecting else random_disjoint
    if args.family == "directed":
        inst = directed_mwc_family(m, maker(m * m, seed=args.seed))
    elif args.family == "undirected-weighted":
        inst = undirected_weighted_family(m, maker(m * m, seed=args.seed))
    elif args.family == "alpha-directed":
        inst = alpha_approx_directed_family(m, m, args.alpha,
                                            maker(m, seed=args.seed))
    elif args.family == "alpha-undirected":
        inst = alpha_approx_undirected_family(m, m, args.alpha,
                                              maker(m, seed=args.seed))
    else:
        inst = girth_alpha_family(m, max(3, m // 2), args.alpha,
                                  maker(m, seed=args.seed))
    report = verify_instance(inst)
    print(f"family: {inst.meta['family']} (theorem {inst.meta['theorem']})")
    for key, val in report.items():
        print(f"  {key}: {val}")
    print("gap property verified.")
    return 0


def cmd_cache(args) -> int:
    """Handle `repro cache`: show or clear the disk cache."""
    from repro import cache

    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.cache_root()}")
        return 0
    stats = cache.info()
    print(f"cache root: {stats['root']}")
    print(f"enabled: {stats['enabled']}")
    if not stats["kinds"]:
        print("  (empty)")
    for kind, meta in stats["kinds"].items():
        print(f"  {kind}: {meta['entries']} entries, {meta['bytes']} bytes")
    print(f"total: {stats['total_bytes']} bytes")
    return 0


def cmd_metrics(args) -> int:
    """Handle `repro metrics`: summarize an observability JSONL file."""
    from repro.obs import aggregate_phases, read_jsonl, summarize_phases

    records = read_jsonl(args.file)
    if args.json:
        print(json.dumps(aggregate_phases(records), indent=2, sort_keys=True))
        return 0
    print(f"{len(records)} record(s) in {args.file}")
    print(summarize_phases(records))
    return 0


def cmd_resume(args) -> int:
    """Handle `repro resume`: continue an interrupted journaled sweep.

    The journal header carries everything needed to reconstruct the call —
    experiment id, sizes, report parameters, and the runner's
    ``module:function`` import reference — so resuming needs no other
    state. Already-journaled points are skipped; the merged report matches
    the uninterrupted run on :func:`repro.harness.report_fingerprint`.
    """
    import importlib

    from repro.harness import emit, report_fingerprint, run_sweep
    from repro.resilience.journal import JournalError, read_journal

    try:
        header, completed = read_journal(args.journal)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ref = header.get("runner") or ""
    if ":" not in ref:
        print(f"error: journal header has no importable runner "
              f"reference (got {ref!r})", file=sys.stderr)
        return 2
    mod_name, func_name = ref.split(":", 1)
    try:
        runner = importlib.import_module(mod_name)
        for part in func_name.split("."):
            runner = getattr(runner, part)
    except (ImportError, AttributeError) as exc:
        print(f"error: cannot import sweep runner {ref!r}: {exc}",
              file=sys.stderr)
        return 2
    sizes = header["sizes"]
    print(f"resuming sweep {header['exp_id']}: "
          f"{len(completed)}/{len(sizes)} point(s) already journaled")
    report = run_sweep(
        header["exp_id"], sizes, runner,
        fit=header.get("fit", True),
        notes=header.get("notes", ""),
        polylog_correction=header.get("polylog_correction", 0.0),
        jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        journal=args.journal, resume=True)
    emit(report)
    print(f"report fingerprint: {report_fingerprint(report)}")
    return 0


def _repo_root() -> str:
    """Repository root guess: the directory holding ``src/repro``."""
    here = os.path.dirname(os.path.abspath(__file__))   # .../src/repro
    return os.path.dirname(os.path.dirname(here))


def cmd_lint(args) -> int:
    """Handle `repro lint`: run congestlint over the given paths.

    Exit codes: 0 clean (or all findings baselined under ``--fail-on-new``),
    1 findings (or new findings), 2 usage/internal errors (argparse and
    unreadable-baseline failures).
    """
    from repro.lint import (
        BASELINE_FILENAME,
        RULES,
        all_rules,
        diff_baseline,
        load_baseline,
        run_lint,
        save_baseline,
    )

    if args.list_rules:
        for spec in all_rules():
            print(f"{spec.rule_id}  {spec.description}")
        return 0

    root = _repo_root()
    paths = args.paths or [os.path.join(root, "src", "repro")]
    rules = None
    if args.rules:
        rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    report = run_lint(paths, root=root, rules=rules)
    baseline_path = args.baseline or os.path.join(root, BASELINE_FILENAME)

    if args.update_baseline:
        save_baseline(baseline_path, report.findings)
        print(f"baseline updated: {len(report.findings)} finding(s) "
              f"recorded in {baseline_path}")
        return 0

    if args.fail_on_new:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: unreadable baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2
        new, stale = diff_baseline(report.findings, baseline)
        if args.format == "json":
            print(json.dumps({
                "new": [f.as_dict() for f in new],
                "baselined": len(report.findings) - len(new),
                "stale_baseline": [list(k) for k in stale],
                "suppressed": len(report.suppressed),
                "errors": report.errors,
                "files_checked": report.files_checked,
            }, indent=2, sort_keys=True))
        else:
            for f in new:
                print(f.render())
            for key in stale:
                print(f"stale baseline entry (no longer occurs): "
                      f"{key[0]}: {key[1]} {key[2]}")
            print(f"{len(new)} new finding(s), "
                  f"{len(report.findings) - len(new)} baselined, "
                  f"{len(report.suppressed)} suppressed, "
                  f"{report.files_checked} file(s) checked")
        return 1 if (new or report.errors) else 0

    print(report.render_json() if args.format == "json"
          else report.render_text())
    return 1 if (report.findings or report.errors) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.congest.network import RoundBudgetExceeded, round_budget

    args = build_parser().parse_args(argv)
    handlers = {
        "mwc": cmd_mwc,
        "apsp": cmd_apsp,
        "generate": cmd_generate,
        "table": cmd_table,
        "report": cmd_report,
        "verify-lb": cmd_verify_lb,
        "cache": cmd_cache,
        "metrics": cmd_metrics,
        "lint": cmd_lint,
        "resume": cmd_resume,
    }
    try:
        # Commands that simulate CONGEST executions honor --max-rounds by
        # installing an ambient round budget on every network they build.
        with round_budget(getattr(args, "max_rounds", None)), \
                _engine_scope(args), _degrade_scope(args):
            return handlers[args.command](args)
    except RoundBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
