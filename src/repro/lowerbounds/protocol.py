"""Two-party view of CONGEST executions on lower-bound instances.

The reduction direction of the proofs: a t-round CONGEST algorithm on a
reduction instance yields a two-party protocol in which Alice and Bob
simulate their own sides and exchange only the messages that cross the
partition — ``t * cut * Θ(log n)`` bits. Since disjointness needs Ω(k)
bits, t is bounded below.

:class:`CutMeter` instruments a :class:`~repro.congest.network.CongestNetwork`
to measure exactly that cross-cut traffic while one of the repository's real
algorithms runs, and :func:`measure_cut_traffic` packages the experiment:
the measured bits of a *correct* distinguishing algorithm can then be
compared against the k-bit requirement (see ``benchmarks/bench_lb_*``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Optional

from repro.congest.network import CongestNetwork
from repro.lowerbounds.constructions import LowerBoundInstance

#: Bits carried by one Θ(log n)-bit message word on an n-node network.
def word_bits(n: int) -> int:
    """Bits per Theta(log n)-bit message word on an n-node network."""
    return max(1, math.ceil(math.log2(max(2, n))))


class CutMeter:
    """Counts message words crossing a vertex partition during execution.

    Wraps ``net.exchange``; every message whose endpoints lie on different
    sides is accounted. Usage::

        net = CongestNetwork(inst.graph, seed=0)
        meter = CutMeter(net, inst.alice)
        run_algorithm_on(net)
        print(meter.words_crossed, meter.bits_crossed)
    """

    def __init__(self, net: CongestNetwork, alice: FrozenSet[int]):
        self.net = net
        self.alice = alice
        self.words_crossed = 0
        self.messages_crossed = 0
        self._original_exchange = net.exchange
        net.exchange = self._metered_exchange  # type: ignore[method-assign]

    def _metered_exchange(self, outboxes):
        for u, outbox in outboxes.items():
            u_side = u in self.alice
            for v, msgs in outbox.items():
                if (v in self.alice) != u_side:
                    self.messages_crossed += len(msgs)
                    self.words_crossed += sum(w for _, w in msgs)
        return self._original_exchange(outboxes)

    @property
    def bits_crossed(self) -> int:
        return self.words_crossed * word_bits(self.net.n)

    def detach(self) -> None:
        """Restore the network's original (unmetered) exchange method."""
        self.net.exchange = self._original_exchange  # type: ignore[method-assign]


def solve_disjointness_via_mwc(
    inst: LowerBoundInstance,
    runner: Optional[Callable[[CongestNetwork], object]] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """The reduction, end to end: decide set disjointness by computing MWC.

    Runs a CONGEST MWC algorithm (default: the exact APSP reduction) on the
    instance network and declares the sets *intersecting* iff the computed
    value is below the midpoint of the family's yes/no gap. Any algorithm
    whose approximation ratio is below ``inst.gap_ratio`` decides correctly
    — which is precisely how the round lower bound transfers from the
    Ω(k)-bit communication bound.

    Returns the decision, its correctness, and the measured cut traffic.
    """
    if runner is None:
        from repro.core.exact_mwc import exact_mwc_congest_on
        runner = exact_mwc_congest_on
    net = CongestNetwork(inst.graph, seed=seed)
    meter = CutMeter(net, inst.alice)
    result = runner(net)
    meter.detach()
    value = getattr(result, "value", result)
    threshold = (inst.yes_value + inst.no_value) / 2.0
    declared_disjoint = bool(value >= threshold)
    return {
        "value": value,
        "declared_disjoint": declared_disjoint,
        "correct": declared_disjoint == inst.disjointness.disjoint,
        "rounds": net.rounds,
        "bits_crossed": meter.bits_crossed,
        "k_bits": inst.k_bits,
    }


def measure_cut_traffic(
    inst: LowerBoundInstance,
    runner: Callable[[CongestNetwork], object],
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Run ``runner`` on the instance's network and report cut traffic.

    ``runner`` receives a fresh :class:`CongestNetwork` over the instance
    graph and should execute a distinguishing algorithm (e.g.
    ``exact_mwc_congest_on``). Returns the measured cross-cut bits together
    with the k-bit requirement for context.
    """
    net = CongestNetwork(inst.graph, seed=seed)
    meter = CutMeter(net, inst.alice)
    result = runner(net)
    meter.detach()
    return {
        "rounds": net.rounds,
        "words_crossed": meter.words_crossed,
        "bits_crossed": meter.bits_crossed,
        "k_bits": inst.k_bits,
        "cut_utilisation": meter.bits_crossed / max(1, inst.k_bits),
        "result": result,
    }
