"""Machine checks for the lower-bound reductions.

``verify_instance`` checks, on a concrete instance, everything the proofs
rest on: the Alice/Bob partition covers the graph, each player's bit edges
stay on their side, the network is connected, and — via the sequential
exact MWC — the instance's value equals the family's claimed yes/no value.

``implied_round_bound`` evaluates the numeric round bound a correct
distinguisher inherits from the Ω(k) disjointness bound: for cut-based
families, ``k / (cut_words * log2 n)`` (a t-round algorithm can be simulated
by Alice and Bob exchanging only the actual cross-cut traffic, i.e.
``t * cut * Θ(log n)`` bits); for the Das-Sarma zone families,
``min(dilation / 2, k / ((overlay_cut + 1) * log2^2 n))`` per the simulation
theorem of [49].
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.lowerbounds.constructions import LowerBoundInstance
from repro.lowerbounds.set_disjointness import (
    DisjointnessInstance,
    random_disjoint,
    random_intersecting,
)
from repro.sequential.mwc import exact_mwc


def cut_edges(inst: LowerBoundInstance) -> int:
    """Number of (undirected communication) edges crossing the partition."""
    crossing = 0
    seen = set()
    g = inst.graph
    for u, v, _ in g.edges():
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        if (u in inst.alice) != (v in inst.alice):
            crossing += 1
    return crossing


def implied_round_bound(inst: LowerBoundInstance) -> float:
    """Numeric round lower bound implied by Ω(k)-bit disjointness."""
    n = inst.graph.n
    log_n = max(1.0, math.log2(n))
    if inst.meta.get("bound_type") == "cut":
        return inst.k_bits / (cut_edges(inst) * log_n)
    dilation = float(inst.meta.get("dilation", 0))
    overlay_cut = float(inst.meta.get("overlay_cut", 0))
    zone_term = inst.k_bits / ((overlay_cut + 1.0) * log_n * log_n)
    return min(dilation / 2.0, zone_term) if dilation else zone_term


def verify_instance(inst: LowerBoundInstance) -> Dict[str, object]:
    """Check every structural property the reduction proof relies on.

    Raises ``AssertionError`` with a descriptive message on failure;
    returns a report dict on success.
    """
    g = inst.graph
    assert inst.alice | inst.bob == frozenset(range(g.n)), "partition misses vertices"
    assert not (inst.alice & inst.bob), "partition overlaps"
    assert g.is_connected(), "communication graph must be connected"
    value = exact_mwc(g)
    if inst.disjointness.disjoint:
        assert value == inst.no_value, (
            f"disjoint instance has MWC {value}, expected {inst.no_value}")
    else:
        assert value == inst.yes_value, (
            f"intersecting instance has MWC {value}, expected {inst.yes_value}")
    ratio = inst.gap_ratio
    target = float(inst.meta.get("alpha", inst.meta.get("target_ratio", 1.0)))
    assert ratio > target - 1e-9 or math.isclose(ratio, target), (
        f"gap ratio {ratio} below target {target}")
    return {
        "n": g.n,
        "m": g.m,
        "k_bits": inst.k_bits,
        "cut": cut_edges(inst),
        "mwc": value,
        "gap_ratio": ratio,
        "implied_rounds": implied_round_bound(inst),
        "diameter": g.undirected_diameter() if g.n <= 4000 else None,
    }


def verify_gap(
    family: Callable[[DisjointnessInstance], LowerBoundInstance],
    k: int,
    trials: int = 5,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Verify the yes/no gap across random disjoint/intersecting inputs."""
    rng = np.random.default_rng(seed)
    reports = []
    for t in range(trials):
        for maker in (random_disjoint, random_intersecting):
            inst = family(maker(k, rng=rng))
            reports.append(verify_instance(inst))
    return {"trials": len(reports), "reports": reports}
