"""Reduction graph families for the paper's lower bounds.

Every family takes a :class:`~repro.lowerbounds.set_disjointness.DisjointnessInstance`
and produces a network split between Alice and Bob such that the MWC value
reveals whether the sets intersect:

========================================  ==========  =====================
Family                                    Theorem     Gap (yes vs no)
========================================  ==========  =====================
``directed_mwc_family``                   1.2.A       4 vs 8  (ratio 2)
``undirected_weighted_family``            1.4.A       2W+2 vs 4W (ratio→2)
``alpha_approx_directed_family``          1.2.B       ~l vs > alpha*l
``alpha_approx_undirected_family``        1.4.B       ~l vs > alpha*l
``girth_alpha_family``                    1.3.A       ~l vs > alpha*l
========================================  ==========  =====================

The (2-eps) families use the layered 4-cycle encoding (m^2 bits over an
O(m)-edge cut — the direct cut-simulation argument gives Ω(k/(cut log n)) =
Ω(n / log n) rounds). The ratio saturates at 2 *structurally*: when the sets
are disjoint, composite 8-cycles formed from two Alice bits and two Bob
bits still exist, capping the "no" value at twice the "yes" value — which is
exactly why 2-approximation algorithms (the paper's upper bounds) escape the
linear bound.

The alpha families use the loops-plus-tree shape of Das Sarma et al. [49]:
k loops whose closing edges are one per player, a low-diameter acyclic tree
overlay for fast global communication, and a heavy/long baseline cycle that
pins the "no" value above alpha times the "yes" value. Their round bound
comes from the zone-simulation theorem of [49] (Ω̃(min(path length, k))),
which we cite rather than re-prove; the gap property and the structural
parameters are machine-verified.

The girth family (1.3.A) cannot use weights or a shortcut overlay (an
unweighted overlay that touches a loop twice would itself create short
cycles), so it attaches the connectivity tree at a single vertex per loop;
its diameter is Θ(path length) rather than the Θ(log n) the full version's
construction achieves — a documented deviation (DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph, GraphError
from repro.lowerbounds.set_disjointness import DisjointnessInstance


@dataclass
class LowerBoundInstance:
    """A reduction instance: network + player partition + claimed gap."""

    graph: Graph
    alice: FrozenSet[int]
    bob: FrozenSet[int]
    k_bits: int
    #: MWC value when the sets intersect (exact).
    yes_value: float
    #: MWC value when the sets are disjoint (exact).
    no_value: float
    disjointness: DisjointnessInstance
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def gap_ratio(self) -> float:
        return self.no_value / self.yes_value


class _Builder:
    """Incremental graph builder tracking vertex ownership."""

    def __init__(self, directed: bool, weighted: bool):
        self.directed = directed
        self.weighted = weighted
        self.edges: List[Tuple[int, int, int]] = []
        self.owner: List[str] = []

    def vertex(self, owner: str) -> int:
        self.owner.append(owner)
        return len(self.owner) - 1

    def vertices(self, owner: str, count: int) -> List[int]:
        return [self.vertex(owner) for _ in range(count)]

    def edge(self, u: int, v: int, w: int = 1) -> None:
        self.edges.append((u, v, w))

    def path(self, vs: Sequence[int], w: int = 1) -> None:
        for a, b in zip(vs, vs[1:]):
            self.edge(a, b, w)

    def cycle(self, vs: Sequence[int], w: int = 1) -> None:
        self.path(vs, w)
        self.edge(vs[-1], vs[0], w)

    def build(self) -> Tuple[Graph, FrozenSet[int], FrozenSet[int]]:
        g = Graph(len(self.owner), directed=self.directed, weighted=self.weighted)
        for u, v, w in self.edges:
            g.add_edge(u, v, w if self.weighted else 1)
        alice = frozenset(i for i, o in enumerate(self.owner) if o == "A")
        bob = frozenset(i for i, o in enumerate(self.owner) if o == "B")
        return g, alice, bob


def _overlay_tree(b: _Builder, leaves: Sequence[int], owner: str,
                  weight: int = 1) -> Optional[int]:
    """Balanced binary (out-)tree over ``leaves``; returns the root.

    Internal vertices are fresh and owned by ``owner``. Directed mode adds
    parent->child arcs only (acyclic); undirected mode adds plain edges —
    safe from new cycles only if each connected gadget component contributes
    at most one leaf, or if ``weight`` is heavy enough to price tree cycles
    out of the gap (callers choose).
    """
    level = list(leaves)
    if not level:
        return None
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            parent = b.vertex(owner)
            for child in level[i:i + 2]:
                b.edge(parent, child, weight)
            nxt.append(parent)
        level = nxt
    return level[0]


def directed_mwc_family(m: int, inst: DisjointnessInstance) -> LowerBoundInstance:
    """Theorem 1.2.A: (2-eps)-approx of directed MWC needs Ω(n / log n).

    Layered digraph A1 -> A2 -> B1 -> B2 -> A1 encoding m^2 bits per player;
    an intersecting position closes a 4-cycle, otherwise the lightest cycles
    are the composite / baseline 8-cycles. Constant diameter via per-side
    out-hubs (out-edges cannot create cycles).
    """
    if inst.k != m * m:
        raise GraphError(f"need k = m^2 = {m * m} bits, got {inst.k}")
    b = _Builder(directed=True, weighted=False)
    a1 = b.vertices("A", m)
    a2 = b.vertices("A", m)
    b1 = b.vertices("B", m)
    b2 = b.vertices("B", m)
    for i in range(m):
        for j in range(m):
            if inst.sa[i * m + j]:
                b.edge(a1[i], a2[j])
            if inst.sb[i * m + j]:
                b.edge(b1[j], b2[i])
    for j in range(m):
        b.edge(a2[j], b1[j])      # fixed cut edges
    for i in range(m):
        b.edge(b2[i], a1[i])      # fixed cut edges
    base = b.vertices("A", 8)
    b.cycle(base)                  # baseline 8-cycle
    hub_a = b.vertex("A")
    hub_b = b.vertex("B")
    for v in a1 + a2 + base:
        b.edge(hub_a, v)
    for v in b1 + b2:
        b.edge(hub_b, v)
    b.edge(hub_a, hub_b)
    g, alice, bob = b.build()
    return LowerBoundInstance(
        graph=g, alice=alice, bob=bob, k_bits=m * m,
        yes_value=4, no_value=8, disjointness=inst,
        meta={
            "family": "directed_mwc",
            "theorem": "1.2.A",
            "bound_type": "cut",
            "claimed_exponent": 1.0,
            "diameter_claim": "O(1)",
            "target_ratio": 2.0,
        },
    )


def undirected_weighted_family(
    m: int, inst: DisjointnessInstance, W: int = 64
) -> LowerBoundInstance:
    """Theorem 1.4.A: (2-eps)-approx of undirected weighted MWC, Ω(n/log n).

    Undirected analogue of the layered family: bit edges weigh W, fixed cut
    edges weigh 1. Intersection closes a cycle of weight 2W + 2; otherwise
    the lightest cycles (bipartite bit 4-cycles / the fixed baseline) weigh
    4W — ratio 4W / (2W + 2) -> 2 as W grows. Hub edges weigh 3W so no
    hub-mediated cycle (>= 6W) enters the gap.
    """
    if inst.k != m * m:
        raise GraphError(f"need k = m^2 = {m * m} bits, got {inst.k}")
    if W < 2:
        raise GraphError("W must be >= 2 for a meaningful gap")
    b = _Builder(directed=False, weighted=True)
    a1 = b.vertices("A", m)
    a2 = b.vertices("A", m)
    b1 = b.vertices("B", m)
    b2 = b.vertices("B", m)
    for i in range(m):
        for j in range(m):
            if inst.sa[i * m + j]:
                b.edge(a1[i], a2[j], W)
            if inst.sb[i * m + j]:
                b.edge(b1[j], b2[i], W)
    for j in range(m):
        b.edge(a2[j], b1[j], 1)
    for i in range(m):
        b.edge(b2[i], a1[i], 1)
    base = b.vertices("A", 4)
    b.cycle(base, W)               # baseline cycle of weight 4W
    hub_a = b.vertex("A")
    hub_b = b.vertex("B")
    for v in a1 + a2 + base:
        b.edge(hub_a, v, 3 * W)
    for v in b1 + b2:
        b.edge(hub_b, v, 3 * W)
    b.edge(hub_a, hub_b, 3 * W)
    g, alice, bob = b.build()
    return LowerBoundInstance(
        graph=g, alice=alice, bob=bob, k_bits=m * m,
        yes_value=2 * W + 2, no_value=4 * W, disjointness=inst,
        meta={
            "family": "undirected_weighted",
            "theorem": "1.4.A",
            "bound_type": "cut",
            "claimed_exponent": 1.0,
            "diameter_claim": "O(1)",
            "target_ratio": 4 * W / (2 * W + 2),
            "W": W,
        },
    )


def _loop_gadget(b: _Builder, ell: int, sa_bit: bool, sb_bit: bool,
                 weight: int = 1) -> Tuple[int, int, int, int]:
    """One loop: fixed forward path (split mid-way), bit-gated return path.

    Returns ``(x, y, r, rp)``: the loop head (Alice), tail (Bob), and the
    two relay vertices (Bob / Alice). The loop closes into a cycle of
    ``ell + 4`` edges iff both players' bits are set. Callers must keep the
    relays connected (they dangle when a bit is absent) — the alpha
    families attach them to the overlay tree, the girth family uses
    :func:`_detour_loop_gadget` instead.
    """
    half = max(1, ell // 2)
    x = b.vertex("A")
    alice_path = b.vertices("A", half)
    bob_path = b.vertices("B", ell - half)
    y = b.vertex("B")
    b.path([x] + alice_path + bob_path + [y], weight)
    r = b.vertex("B")
    rp = b.vertex("A")
    b.edge(rp, r, weight)          # fixed cut relay
    if sb_bit:
        b.edge(y, r, weight)
    if sa_bit:
        b.edge(rp, x, weight)
    return x, y, r, rp


def _detour_loop_gadget(b: _Builder, ell: int, detour: int,
                        sa_bit: bool, sb_bit: bool) -> int:
    """Loop gadget where a 0-bit becomes a long detour instead of a gap.

    Unweighted construction for the girth family: bit = 1 contributes one
    edge, bit = 0 a path of ``detour + 1`` edges, so the loop *always*
    closes (keeping the graph connected with a single tree attachment) with
    total length ``ell + 4`` iff both bits are set, and at least
    ``ell + 4 + detour`` otherwise. Returns the attachment vertex x.
    """
    half = max(1, ell // 2)
    x = b.vertex("A")
    alice_path = b.vertices("A", half)
    bob_path = b.vertices("B", ell - half)
    y = b.vertex("B")
    b.path([x] + alice_path + bob_path + [y])
    r = b.vertex("B")
    rp = b.vertex("A")
    b.edge(rp, r)                  # fixed cut relay
    if sb_bit:
        b.edge(y, r)
    else:
        b.path([y] + b.vertices("B", detour) + [r])
    if sa_bit:
        b.edge(rp, x)
    else:
        b.path([rp] + b.vertices("A", detour) + [x])
    return x


def alpha_approx_directed_family(
    num_loops: int, ell: int, alpha: float, inst: DisjointnessInstance
) -> LowerBoundInstance:
    """Theorem 1.2.B: alpha-approx of directed MWC needs Ω̃(sqrt(n)).

    k = num_loops disjointness bits; loop i becomes a directed cycle of
    ell + 4 edges iff position i is in both sets. A directed out-tree
    overlay (acyclic by construction) keeps the diameter Θ(log n); the
    baseline cycle of length floor(alpha (ell+4)) + 1 pins the disjoint
    value. With ell = k = Θ(sqrt(n)), the zone simulation of [49] gives
    Ω̃(min(ell, k)) = Ω̃(sqrt(n)) rounds.
    """
    if inst.k != num_loops:
        raise GraphError(f"need k = {num_loops} bits, got {inst.k}")
    b = _Builder(directed=True, weighted=False)
    attach_a: List[int] = []
    attach_b: List[int] = []
    for i in range(num_loops):
        half = max(1, ell // 2)
        x = b.vertex("A")
        alice_path = b.vertices("A", half)
        bob_path = b.vertices("B", ell - half)
        y = b.vertex("B")
        b.path([x] + alice_path + bob_path + [y])
        r = b.vertex("B")
        rp = b.vertex("A")
        b.edge(r, rp)             # fixed cut relay (B -> A)
        if inst.sb[i]:
            b.edge(y, r)
        if inst.sa[i]:
            b.edge(rp, x)
        # The out-tree overlay attaches to *every* gadget vertex (directed
        # arcs cannot create cycles), giving true O(log n) diameter.
        attach_a.extend([x, rp] + alice_path)
        attach_b.extend([y, r] + bob_path)
    yes = ell + 4
    base_len = math.floor(alpha * yes) + 1
    base = b.vertices("A", base_len)
    b.cycle(base)
    attach_a.extend(base)
    root_a = _overlay_tree(b, attach_a, "A")
    root_b = _overlay_tree(b, attach_b, "B")
    if root_a is not None and root_b is not None:
        b.edge(root_a, root_b)
    g, alice, bob = b.build()
    return LowerBoundInstance(
        graph=g, alice=alice, bob=bob, k_bits=num_loops,
        yes_value=yes, no_value=base_len, disjointness=inst,
        meta={
            "family": "alpha_directed",
            "theorem": "1.2.B",
            "bound_type": "zone",
            "claimed_exponent": 0.5,
            "dilation": ell,
            "overlay_cut": 1,
            "diameter_claim": "O(log n)",
            "alpha": alpha,
        },
    )


def alpha_approx_undirected_family(
    num_loops: int, ell: int, alpha: float, inst: DisjointnessInstance
) -> LowerBoundInstance:
    """Theorem 1.4.B: alpha-approx of undirected weighted MWC, Ω̃(sqrt(n)).

    Undirected loops with unit weights; the tree overlay edges are heavy
    (any cycle using two of them outweighs alpha times the loop value), so
    the overlay can attach everywhere and the diameter stays Θ(log n).
    """
    if inst.k != num_loops:
        raise GraphError(f"need k = {num_loops} bits, got {inst.k}")
    b = _Builder(directed=False, weighted=True)
    yes = ell + 4
    base_edge = math.floor(alpha * yes / 4) + 1
    heavy = 4 * base_edge + 1      # two heavy edges outweigh the baseline
    attach_a: List[int] = []
    attach_b: List[int] = []
    for i in range(num_loops):
        first = len(b.owner)
        x, y, r, rp = _loop_gadget(b, ell, inst.sa[i], inst.sb[i])
        # Attach every gadget vertex: heavy tree edges price any
        # tree-mediated cycle (>= 2 * heavy) out of the gap.
        for v in range(first, len(b.owner)):
            (attach_a if b.owner[v] == "A" else attach_b).append(v)
    base = b.vertices("A", 4)
    b.cycle(base, base_edge)
    attach_a.extend(base)
    root_a = _overlay_tree(b, attach_a, "A", weight=heavy)
    root_b = _overlay_tree(b, attach_b, "B", weight=heavy)
    if root_a is not None and root_b is not None:
        b.edge(root_a, root_b, heavy)
    g, alice, bob = b.build()
    return LowerBoundInstance(
        graph=g, alice=alice, bob=bob, k_bits=num_loops,
        yes_value=yes, no_value=4 * base_edge, disjointness=inst,
        meta={
            "family": "alpha_undirected",
            "theorem": "1.4.B",
            "bound_type": "zone",
            "claimed_exponent": 0.5,
            "dilation": ell,
            "overlay_cut": 1,
            "diameter_claim": "O(log n)",
            "alpha": alpha,
        },
    )


def girth_alpha_family(
    num_loops: int, ell: int, alpha: float, inst: DisjointnessInstance
) -> LowerBoundInstance:
    """Theorem 1.3.A: alpha-approx of girth needs Ω̃(n^{1/4}).

    Unweighted undirected loops (cycle length ell + 4 iff the position is
    in both sets) and a baseline cycle of length floor(alpha (ell+4)) + 1.
    No shortcut overlay is possible without creating short cycles, so the
    connectivity tree attaches at a single vertex per component and the
    instance diameter is Θ(ell) = Θ(n^{1/4}) with the default sizing (the
    full version's Θ(log n)-diameter construction is not reproduced —
    DESIGN.md §6).
    """
    if inst.k != num_loops:
        raise GraphError(f"need k = {num_loops} bits, got {inst.k}")
    b = _Builder(directed=False, weighted=False)
    yes = ell + 4
    base_len = math.floor(alpha * yes) + 1
    attach: List[int] = []
    for i in range(num_loops):
        x = _detour_loop_gadget(b, ell, detour=base_len, sa_bit=inst.sa[i],
                                sb_bit=inst.sb[i])
        attach.append(x)
    base = b.vertices("A", base_len)
    b.cycle(base)
    attach.append(base[0])
    _overlay_tree(b, attach, "A")
    g, alice, bob = b.build()
    return LowerBoundInstance(
        graph=g, alice=alice, bob=bob, k_bits=num_loops,
        yes_value=yes, no_value=base_len, disjointness=inst,
        meta={
            "family": "girth_alpha",
            "theorem": "1.3.A",
            "bound_type": "zone",
            "claimed_exponent": 0.25,
            "dilation": ell,
            "overlay_cut": 0,
            "diameter_claim": "Theta(ell) (deviation; see DESIGN.md)",
            "alpha": alpha,
        },
    )
