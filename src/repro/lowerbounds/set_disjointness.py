"""Two-party set disjointness: instances and the classical hardness facts.

Set disjointness: Alice holds ``S_a``, Bob holds ``S_b`` (k-bit strings);
they must decide whether some position carries a 1 in both. The classical
communication lower bound is Ω(k) bits even with shared randomness
[7, 35, 46] — every reduction in :mod:`repro.lowerbounds.constructions`
inherits its round bound from this fact.

We do not re-prove Ω(k) (it is information-theoretic); what we machine-check
is the *fooling set* underpinning the deterministic bound: the 2^k pairs
``(S, complement(S))`` are all disjoint, yet crossing any two distinct pairs
produces an intersecting pair — so a deterministic protocol needs 2^k
distinct transcripts, i.e. k bits (``tests/test_lowerbounds.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class DisjointnessInstance:
    """A set-disjointness input pair over ``k`` bit positions."""

    sa: Tuple[bool, ...]
    sb: Tuple[bool, ...]

    def __post_init__(self):
        if len(self.sa) != len(self.sb):
            raise ValueError("Alice and Bob strings must have equal length")

    @property
    def k(self) -> int:
        return len(self.sa)

    @property
    def disjoint(self) -> bool:
        return not any(a and b for a, b in zip(self.sa, self.sb))

    def intersection(self) -> List[int]:
        """Positions set in both strings (empty iff disjoint)."""
        return [i for i, (a, b) in enumerate(zip(self.sa, self.sb)) if a and b]


def random_disjoint(k: int, density: float = 0.4,
                    rng: Optional[np.random.Generator] = None,
                    seed: Optional[int] = None) -> DisjointnessInstance:
    """A random disjoint pair: positions are split between the players."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    owner = rng.random(k)
    sa = tuple(bool(x < density) for x in owner)
    sb = tuple(bool(x > 1 - density) and not a for a, x in zip(sa, owner))
    inst = DisjointnessInstance(sa, sb)
    assert inst.disjoint
    return inst


def random_intersecting(k: int, density: float = 0.4,
                        rng: Optional[np.random.Generator] = None,
                        seed: Optional[int] = None) -> DisjointnessInstance:
    """A random pair with at least one common position."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    base = random_disjoint(k, density, rng=rng)
    hit = int(rng.integers(0, k))
    sa = list(base.sa)
    sb = list(base.sb)
    sa[hit] = True
    sb[hit] = True
    return DisjointnessInstance(tuple(sa), tuple(sb))


def fooling_set(k: int) -> Iterator[DisjointnessInstance]:
    """The canonical 2^k fooling set: ``(S, complement(S))`` for all S.

    Property (machine-checked in tests): each pair is disjoint, but for any
    two distinct pairs ``(S, S̄)`` and ``(T, T̄)``, at least one of the
    crossed pairs ``(S, T̄)``, ``(T, S̄)`` intersects — which forces a
    deterministic protocol to use a distinct transcript per pair, hence
    >= k bits of communication.
    """
    for bits in product([False, True], repeat=k):
        sa = tuple(bits)
        sb = tuple(not b for b in bits)
        yield DisjointnessInstance(sa, sb)


def crossing_intersects(p: DisjointnessInstance, q: DisjointnessInstance) -> bool:
    """Whether either crossed pair (p.sa, q.sb) or (q.sa, p.sb) intersects."""
    first = any(a and b for a, b in zip(p.sa, q.sb))
    second = any(a and b for a, b in zip(q.sa, p.sb))
    return first or second
