"""Lower-bound constructions and verification (paper §1.4, Theorems
1.2.A/B, 1.3.A, 1.4.A/B).

A CONGEST lower bound cannot be "run"; what can be reproduced and
machine-checked is:

1. the **reduction graph family** — how a set-disjointness instance is
   encoded into a network whose MWC value differs by the target gap between
   the intersecting and disjoint cases (:mod:`repro.lowerbounds.constructions`);
2. the **gap property** itself, checked against the sequential exact MWC
   (:mod:`repro.lowerbounds.verification`);
3. the **implied round bound** — Ω(k / (cut · log n)) for the cut-based
   reductions, and the dilation term for the Das-Sarma-style [49] families
   (:func:`repro.lowerbounds.verification.implied_round_bound`);
4. the **two-party view** — running our real algorithms on the instances
   and measuring the bits that actually cross the Alice/Bob cut
   (:mod:`repro.lowerbounds.protocol`).
"""

from repro.lowerbounds.set_disjointness import (
    DisjointnessInstance,
    random_disjoint,
    random_intersecting,
    fooling_set,
)
from repro.lowerbounds.constructions import (
    LowerBoundInstance,
    alpha_approx_directed_family,
    alpha_approx_undirected_family,
    directed_mwc_family,
    girth_alpha_family,
    undirected_weighted_family,
)
from repro.lowerbounds.verification import (
    cut_edges,
    implied_round_bound,
    verify_gap,
    verify_instance,
)
from repro.lowerbounds.protocol import CutMeter, measure_cut_traffic

__all__ = [
    "DisjointnessInstance",
    "random_disjoint",
    "random_intersecting",
    "fooling_set",
    "LowerBoundInstance",
    "directed_mwc_family",
    "undirected_weighted_family",
    "alpha_approx_directed_family",
    "alpha_approx_undirected_family",
    "girth_alpha_family",
    "cut_edges",
    "implied_round_bound",
    "verify_gap",
    "verify_instance",
    "CutMeter",
    "measure_cut_traffic",
]
