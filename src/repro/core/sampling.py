"""Shared-randomness vertex sampling used by all the paper's algorithms.

The CONGEST model used in the paper allows shared randomness; the sample is
drawn from the network seed, so every node agrees on membership without
communication.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np


def sample_vertices(
    rng: np.random.Generator,
    n: int,
    prob: float,
    ensure_nonempty: bool = True,
) -> List[int]:
    """Sample each vertex independently with probability ``prob``."""
    p = min(1.0, max(0.0, prob))
    mask = rng.random(n) < p
    sample = [int(v) for v in np.flatnonzero(mask)]
    if ensure_nonempty and not sample and n > 0:
        sample = [int(rng.integers(0, n))]
    return sample


def hitting_set_probability(h: int, n: int, constant: float = 4.0) -> float:
    """Sampling probability Theta(log n / h): hits any h-vertex set w.h.p."""
    if h <= 0:
        raise ValueError(f"h must be positive, got {h}")
    return min(1.0, constant * math.log(max(2, n)) / h)
