"""Hop-limited (1+eps)-approximate multi-source SSSP via scaling ([41], §5).

This is the weighted replacement for h-hop BFS used throughout the paper's
weighted algorithms: run the unit-speed wave (= stretched-graph BFS, §4) on
every scaled graph ``G^i`` with the scaled hop budget ``h*``, un-scale each
wave's distances, and keep the per-(source, vertex) minimum. The scaling
lemma guarantees the result is within ``(1 + eps)`` of the true h-hop-
limited distance and never below the true (unrestricted) distance.

Round cost: O((h* + k) log(hW)) = Õ(h/eps + k), measured by the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.congest.primitives.waves import multi_source_wave
from repro.graphs.graph import INF
from repro.graphs.scaling import hop_budget, scale_ladder, unscale_value


def approx_hop_sssp(
    net: CongestNetwork,
    sources: Sequence[int],
    h: int,
    eps: float,
    reverse: bool = False,
) -> List[Dict[int, float]]:
    """(1+eps)-approximate h-hop-limited distances from ``sources``.

    Returns ``dist[v]`` mapping source -> estimate. Estimates satisfy
    ``d(s, v) <= estimate <= (1 + eps) * d_h(s, v)`` (w.h.p. over nothing —
    this subroutine is deterministic given the graph), where ``d_h`` is the
    minimum weight over paths of at most ``h`` hops.

    For unweighted graphs this degenerates to exact h-hop BFS (single scale,
    weights 1), so callers can use it uniformly.
    """
    best, _pred = approx_hop_sssp_with_pred(net, sources, h, eps, reverse)
    return best


def approx_hop_sssp_with_pred(
    net: CongestNetwork,
    sources: Sequence[int],
    h: int,
    eps: float,
    reverse: bool = False,
) -> Tuple[List[Dict[int, float]], List[Dict[int, int]]]:
    """Like :func:`approx_hop_sssp` but also returns walk predecessors.

    ``pred[v][s]`` is the neighbor of ``v`` on the estimate-realizing walk
    (the wave parent at the scale achieving the minimum). The undirected
    weighted MWC algorithm uses it to reject degenerate backtracking cycle
    candidates (§5.1).
    """
    g = net.graph
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    best: List[Dict[int, float]] = [dict() for _ in range(g.n)]
    pred: List[Dict[int, int]] = [dict() for _ in range(g.n)]
    if not g.weighted:
        known, parents = multi_source_wave(net, sources, budget=h,
                                           reverse=reverse, record_parents=True)
        for v in range(g.n):
            best[v] = {s: float(d) for s, d in known[v].items()}
            pred[v] = dict(parents[v])
        return best, pred
    budget = hop_budget(h, eps)
    for i, gi in scale_ladder(g, h, eps):
        known, parents = multi_source_wave(
            net, sources, budget=budget, reverse=reverse, weight_graph=gi,
            record_parents=True,
        )
        for v in range(g.n):
            for s, d in known[v].items():
                est = unscale_value(d, i, h, eps)
                if est < best[v].get(s, INF):
                    best[v][s] = est
                    p = parents[v].get(s)
                    if p is not None:
                        pred[v][s] = p
    return best, pred


def approx_hop_sssp_single_scale(
    net: CongestNetwork,
    sources: Sequence[int],
    h: int,
    eps: float,
    scale: int,
    reverse: bool = False,
) -> List[Dict[int, float]]:
    """Distances from one scale only (used by per-scale MWC subroutines)."""
    g = net.graph
    ladder = dict(scale_ladder(g, h, eps))
    if scale not in ladder:
        raise ValueError(f"scale {scale} outside ladder for h={h}")
    budget = hop_budget(h, eps)
    known, _ = multi_source_wave(
        net, sources, budget=budget, reverse=reverse, weight_graph=ladder[scale]
    )
    out: List[Dict[int, float]] = [dict() for _ in range(g.n)]
    for v in range(g.n):
        for s, d in known[v].items():
            out[v][s] = unscale_value(d, scale, h, eps)
    return out
