"""(2 - 1/g)-approximate girth in Õ(sqrt(n) + D) rounds (§4, Thm 1.3.B).

Method (paper §4): BFS from Θ̃(sqrt(n)) sampled vertices gives, for every
non-tree edge (x, y) of a sampled tree, a candidate cycle of weight
d(w, x) + d(w, y) + w(x, y); this is exact (or near-exact) whenever some
sampled vertex sits on (or near) a minimum weight cycle. Cycles that evade
all samples are confined to small neighborhoods, and a sqrt(n)-nearest
source detection [37] computes those exactly. Candidates are validated by
excluding *degenerate backtracking walks*: a candidate for edge (x, y) is
admitted only if the BFS parent of x is not y and vice versa — every
admitted candidate is then the weight of a closed walk traversing (x, y)
once, which contains a simple cycle, so no candidate can undershoot the
girth.

``hop_limited_girth_on`` is Corollary 4.1: the same computation limited to a
weight budget, optionally on re-weighted (scaled) edges — the building block
of the §5 weighted MWC algorithms. Global aggregation always runs on the
physical network, so the convergecast term stays O(D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork, RoundBudgetExceeded
from repro.congest.primitives.convergecast import converge_min
from repro.congest.primitives.waves import multi_source_wave, source_detection
from repro.core.results import AlgorithmResult
from repro.core.sampling import sample_vertices
from repro.graphs.graph import Graph, GraphError, INF
from repro.resilience.degrade import (
    degrade_enabled,
    finalize_result_details,
    record_degradation,
)


def _converge_min_degradable(net: CongestNetwork,
                             best: Sequence[float]) -> float:
    """Global min via convergecast; central completion under degradation.

    Every candidate admitted by the §4 validation is the weight of a real
    closed walk, so taking the minimum centrally after a budget cut still
    yields a sound girth upper bound — only the distributed announcement is
    skipped, and the event is recorded on the network.
    """
    try:
        return converge_min(net, list(best))
    except RoundBudgetExceeded as exc:
        if not degrade_enabled():
            raise
        record_degradation(net, "convergecast", str(exc))
        return min(best) if len(best) else INF


def _exchange_vectors_degradable(
    net: CongestNetwork,
    vectors: Sequence[Dict[int, Tuple[float, int]]],
) -> List[Dict[int, Dict[int, Tuple[float, int]]]]:
    """:func:`_exchange_vectors`, absorbing a budget cut under degradation.

    The vectors already exist at every node; only the (charged, failed)
    exchange step is replaced by its centrally computed result, so every
    candidate derived from it is still the weight of a real closed walk.
    """
    try:
        return _exchange_vectors(net, vectors)
    except RoundBudgetExceeded as exc:
        if not degrade_enabled():
            raise
        record_degradation(net, "sketch-exchange", str(exc))
        return [{u: vectors[u] for u in net.comm_neighbors_sorted(x)}
                for x in range(net.n)]


@dataclass
class GirthParams:
    """Constants of the §4 algorithm.

    ``sigma_constant * sqrt(n)`` is the neighborhood size; the sampling
    probability is ``sample_constant / sigma`` (paper: Θ(log n / sqrt(n)),
    polylog folded into the constant at simulable n — see DESIGN.md §1).
    """

    sigma_constant: float = 1.5
    sample_constant: float = 3.0

    def sigma(self, n: int) -> int:
        """Neighborhood size sigma = c * sqrt(n)."""
        return max(2, math.ceil(self.sigma_constant * math.sqrt(n)))

    def sample_probability(self, n: int) -> float:
        """Per-vertex sampling probability c / sigma."""
        return min(1.0, self.sample_constant / self.sigma(n))


def _exchange_vectors(
    net: CongestNetwork,
    vectors: Sequence[Dict[int, Tuple[float, int]]],
) -> List[Dict[int, Dict[int, Tuple[float, int]]]]:
    """Each vertex sends its (source -> (dist, parent)) vector to neighbors.

    One synchronous step; the simulator charges ceil(len/B) rounds per link,
    i.e. O(max vector length) — the paper's O(|W|) / O(sigma) exchange.
    Attributed to the ``"sketch-exchange"`` phase bucket under metrics.
    """
    with net.phase("sketch-exchange"):
        batch = BatchedOutbox()
        for v in range(net.n):
            vec = vectors[v]
            words = max(1, 2 * len(vec))
            for u in net.comm_neighbors_sorted(v):
                batch.send(v, u, vec, words)
        result: List[Dict[int, Dict[int, Tuple[float, int]]]] = [dict() for _ in range(net.n)]
        inboxes = (net.exchange_batched(batch) if fast_path(net)
                   else net.exchange(batch.to_outboxes()))
        for v, by_sender in inboxes.items():
            for u, payloads in by_sender.items():
                result[v][u] = payloads[0]
        return result


def _edge_candidates(
    g: Graph,
    weight_graph: Optional[Graph],
    vectors: Sequence[Dict[int, Tuple[float, int]]],
    neighbor_vectors: Sequence[Dict[int, Dict[int, Tuple[float, int]]]],
    budget: Optional[float] = None,
) -> List[float]:
    """Per-vertex best cycle candidate over incident edges.

    For edge (x, y) and a source w known to both endpoints, the candidate
    d(w, x) + d(w, y) + w(x, y) is admitted unless the walk would backtrack
    (parent of x is y, or parent of y is x).
    """
    wg = weight_graph if weight_graph is not None else g
    best = [INF] * g.n
    arg: List[Optional[Tuple[int, int, int]]] = [None] * g.n
    for x in range(g.n):
        own = vectors[x]
        if not own:
            continue
        for y, got in neighbor_vectors[x].items():
            w_xy = wg.weight(x, y)
            if budget is not None and w_xy > budget:
                # Scaled weight exceeding the hop budget may be *clamped*
                # (scale_ladder); such an edge cannot belong to any cycle
                # this scale is responsible for, and its clamped weight
                # would un-scale below the true weight — skip it.
                continue
            for w, (d_wx, p_x) in own.items():
                pair = got.get(w)
                if pair is None:
                    continue
                d_wy, p_y = pair
                if p_x == y or p_y == x:
                    continue  # degenerate backtracking walk, no cycle inside
                cand = d_wx + d_wy + w_xy
                if cand < best[x]:
                    best[x] = cand
                    arg[x] = (w, x, y)
    return best, arg


def _vertex_candidates(
    g: Graph,
    weight_graph: Optional[Graph],
    neighbor_vectors: Sequence[Dict[int, Dict[int, Tuple[float, int]]]],
    budget: Optional[float] = None,
) -> List[float]:
    """Per-vertex candidates for cycles with exactly one vertex outside the
    neighborhoods (paper §4: "computing lengths of cycles such that exactly
    one vertex is outside the neighborhood").

    A vertex z whose neighbors x, y both know source u closes the cycle
    u ->* x - z - y ->* u of weight d(u,x) + w(x,z) + w(z,y) + d(u,y) even
    when z itself never learned u. Backtracking is excluded via the
    neighbors' parents (a parent equal to z would mean the recorded path
    already runs through z). Pure local computation on the already-exchanged
    vectors: zero extra rounds.
    """
    wg = weight_graph if weight_graph is not None else g
    best = [INF] * g.n
    arg: List[Optional[Tuple[int, int, int, int]]] = [None] * g.n
    for z in range(g.n):
        got = neighbor_vectors[z]
        if len(got) < 2:
            continue
        items = list(got.items())
        for i, (x, vec_x) in enumerate(items):
            w_zx = wg.weight(z, x)
            if budget is not None and w_zx > budget:
                continue
            for y, vec_y in items[i + 1:]:
                w_zy = wg.weight(z, y)
                if budget is not None and w_zy > budget:
                    continue
                for u, (d_ux, p_x) in vec_x.items():
                    pair = vec_y.get(u)
                    if pair is None:
                        continue
                    d_uy, p_y = pair
                    if p_x == z or p_y == z:
                        continue  # path already runs through z: degenerate
                    cand = d_ux + d_uy + w_zx + w_zy
                    if cand < best[z]:
                        best[z] = cand
                        arg[z] = (u, x, z, y)
    return best, arg


def _girth_candidates_on(
    net: CongestNetwork,
    sample_prob: float,
    sigma: int,
    bfs_budget: int,
    detection_budget: int,
    weight_graph: Optional[Graph] = None,
) -> Tuple[List[float], Dict[str, object]]:
    """Shared core: sampled BFS candidates + sigma-detection candidates."""
    g = net.graph
    n = g.n
    details: Dict[str, object] = {}

    # Sampled sources: full (budget-limited) waves, with parents.
    W = sample_vertices(net.rng, n, sample_prob)
    details["sample_size"] = len(W)
    known, parents = multi_source_wave(
        net, W, budget=bfs_budget, weight_graph=weight_graph, record_parents=True
    )
    vectors: List[Dict[int, Tuple[float, int]]] = [
        {w: (float(d), parents[v].get(w, -1)) for w, d in known[v].items()}
        for v in range(n)
    ]
    nbr = _exchange_vectors_degradable(net, vectors)
    best_sampled, arg_sampled = _edge_candidates(g, weight_graph, vectors, nbr,
                                                 budget=bfs_budget)
    best_sampled_vertex, arg_sampled_vertex = _vertex_candidates(
        g, weight_graph, nbr, budget=bfs_budget)

    # sigma-nearest detection: exact short cycles inside neighborhoods.
    lists = source_detection(
        net, sigma=sigma, budget=detection_budget,
        weight_graph=weight_graph, record_parents=True,
    )
    det_vectors: List[Dict[int, Tuple[float, int]]] = []
    for v in range(n):
        pmap = net.state[v].get("detection_parent", {})
        det_vectors.append(
            {s: (float(d), pmap.get(s, -1)) for d, s in lists[v]}
        )
    det_nbr = _exchange_vectors_degradable(net, det_vectors)
    best_detect, arg_detect = _edge_candidates(g, weight_graph, det_vectors,
                                               det_nbr,
                                               budget=detection_budget)
    best_detect_vertex, arg_detect_vertex = _vertex_candidates(
        g, weight_graph, det_nbr, budget=detection_budget)

    best: List[float] = []
    args: List[Optional[Tuple]] = []
    families = [
        (best_sampled, arg_sampled, "edge"),
        (best_detect, arg_detect, "edge"),
        (best_sampled_vertex, arg_sampled_vertex, "vertex"),
        (best_detect_vertex, arg_detect_vertex, "vertex"),
    ]
    for v in range(n):
        winner, win_arg = INF, None
        for values, arg_list, tag in families:
            if values[v] < winner:
                winner = values[v]
                win_arg = (tag,) + arg_list[v] if arg_list[v] else None
        best.append(winner)
        args.append(win_arg)
    return best, args, details


def girth_2approx_on(
    net: CongestNetwork,
    params: Optional[GirthParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """(2 - 1/g)-approximate girth on an existing network (Thm 1.3.B).

    With ``construct_witness``, ``details["witness"]`` carries a vertex list
    of a real cycle realizing at most the reported value (one extra wave
    from the winning candidate's source; see repro.core.witness).
    """
    g = net.graph
    if g.directed or g.weighted:
        raise GraphError("girth_2approx expects an undirected unweighted graph")
    if params is None:
        params = GirthParams()
    n = g.n
    sigma = params.sigma(n)
    best, args, details = _girth_candidates_on(
        net,
        sample_prob=params.sample_probability(n),
        sigma=sigma,
        bfs_budget=n,           # full-depth BFS from samples
        detection_budget=sigma,  # sigma-ball radius is at most sigma
    )
    value = _converge_min_degradable(net, best)
    exact = finalize_result_details(net, details)
    if construct_witness and value != INF and exact:
        winner = min(range(n), key=lambda v: best[v])
        details["witness"] = extract_undirected_witness(net, args[winner])
    details.update({"sigma": sigma, "rounds_total": net.rounds})
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)


def girth_2approx(
    g: Graph,
    seed: Optional[int] = None,
    params: Optional[GirthParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """(2 - 1/g)-approximation of girth in Õ(sqrt(n) + D) rounds."""
    net = CongestNetwork(g, seed=seed)
    return girth_2approx_on(net, params, construct_witness=construct_witness)


def extract_undirected_witness(net: CongestNetwork, arg) -> Optional[List[int]]:
    """Rebuild the cycle behind a tagged undirected candidate.

    ``arg`` is ``("edge", w, x, y)`` (cycle = path(w,x) + (x,y) + path(y,w))
    or ``("vertex", u, x, z, y)`` (the one-outside form with apex z). One
    exact wave from the source recovers true-shortest paths; the assembled
    closed walk realizes at most the candidate's weight and is simplified
    to a simple cycle. Returns None when the walk degenerates.
    """
    from repro.congest.primitives.waves import multi_source_wave
    from repro.core.witness import assemble_undirected_witness

    if arg is None:
        return None
    g = net.graph
    budget = max(1, g.n * max(1, g.max_weight()))
    if arg[0] == "edge":
        _tag, w, x, y = arg
        via = None
    else:
        _tag, w, x, via, y = arg
    _known, parents = multi_source_wave(net, [w], budget=budget,
                                        record_parents=True)
    return assemble_undirected_witness(g, parents, w, x, y, via=via)


def hop_limited_girth_on(
    net: CongestNetwork,
    budget: int,
    weight_graph: Optional[Graph] = None,
    params: Optional[GirthParams] = None,
) -> Tuple[float, List[float]]:
    """Corollary 4.1: (2 - 1/g)-approx of the budget-limited MWC of ``G^s``.

    ``weight_graph`` carries the (scaled) weights; the returned value is in
    those scaled units and only cycles whose wave distances fit within
    ``budget`` are found — exactly the h-hop-limited MWC of the stretched
    graph. Costs Õ(sqrt(n) + budget + D) rounds. Returns (value, per-vertex
    candidates) so §5 can combine scales before the final convergecast.
    """
    g = net.graph
    if g.directed:
        raise GraphError("hop_limited_girth_on expects an undirected network")
    if params is None:
        params = GirthParams()
    n = g.n
    sigma = params.sigma(n)
    best, args, _ = _girth_candidates_on(
        net,
        sample_prob=params.sample_probability(n),
        sigma=sigma,
        bfs_budget=budget,
        detection_budget=budget,
        weight_graph=weight_graph,
    )
    value = _converge_min_degradable(net, best)
    return value, best, args
