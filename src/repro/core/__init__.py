"""The paper's algorithms (upper bounds of Table 1 and Theorem 1.6).

===========================  ==========================================
Module                       Paper section / theorem
===========================  ==========================================
``ksource``                  §2, Theorem 1.6 (k-source BFS / approx SSSP)
``restricted_bfs``           §3.1, Algorithm 3 machinery
``directed_mwc``             §3, Algorithm 2 (Theorem 1.2.C)
``girth``                    §4 (Theorem 1.3.B, Corollary 4.1)
``weighted_mwc``             §5 (Theorems 1.4.C and 1.2.D)
``exact_mwc``                Õ(n) exact upper bounds via APSP ([8, 28])
``baselines``                prior-work baselines ([44], repetition)
===========================  ==========================================
"""

from repro.core.results import AlgorithmResult, KSourceResult

__all__ = ["AlgorithmResult", "KSourceResult"]
