"""Distributed APSP as a standalone public API.

Three modes, all executing on the simulator:

* :func:`apsp_unweighted` — exact, O(n + D) rounds (pipelined n-source BFS,
  as in Holzer–Wattenhofer [28]).
* :func:`apsp_weighted_exact` — exact, the improvement-driven pipelined
  Bellman–Ford skeleton of [8] (near-linear measured rounds; see
  ``core/exact_mwc.py`` for the bound discussion).
* :func:`apsp_approx` — (1+eps)-approximate weighted APSP with a
  *guaranteed* Õ(n / eps) round bound via Nanongkai's scaling [41]: n-source
  unit-speed waves on every scaled graph with hop parameter h = n.

``mwc_via_approx_apsp`` derives a (1+eps)-approximation of MWC from the
approximate distances in the same rounds — a guaranteed-bound companion to
the exact Table 1 rows.
"""

from __future__ import annotations

from typing import Optional

from repro.congest.network import CongestNetwork
from repro.core.approx_sssp import approx_hop_sssp_with_pred
from repro.core.exact_mwc import apsp_unweighted_on, apsp_weighted_on
from repro.core.girth import (
    _converge_min_degradable,
    _exchange_vectors_degradable,
)
from repro.core.results import AlgorithmResult, KSourceResult
from repro.graphs.graph import Graph, GraphError, INF
from repro.resilience.degrade import finalize_result_details


def apsp_unweighted(g: Graph, seed: Optional[int] = None) -> KSourceResult:
    """Exact unweighted APSP in O(n + D) rounds."""
    if g.weighted:
        raise GraphError("use apsp_weighted_exact or apsp_approx for weights")
    net = CongestNetwork(g, seed=seed)
    with net.phase("apsp"):
        known, _ = apsp_unweighted_on(net)
    dist = [{s: float(d) for s, d in known[v].items()} for v in range(g.n)]
    details = {"mode": "unweighted"}
    exact = finalize_result_details(net, details)
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return KSourceResult(dist, net.rounds, net.stats, details, exact=exact)


def apsp_weighted_exact(g: Graph, seed: Optional[int] = None) -> KSourceResult:
    """Exact weighted APSP (pipelined improvement-driven Bellman–Ford)."""
    if not g.weighted:
        return apsp_unweighted(g, seed=seed)
    net = CongestNetwork(g, seed=seed)
    with net.phase("apsp"):
        known, _ = apsp_weighted_on(net)
    dist = [dict(known[v]) for v in range(g.n)]
    details = {"mode": "exact"}
    exact = finalize_result_details(net, details)
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return KSourceResult(dist, net.rounds, net.stats, details, exact=exact)


def apsp_approx(g: Graph, eps: float = 0.5,
                seed: Optional[int] = None) -> KSourceResult:
    """(1+eps)-approximate weighted APSP, guaranteed Õ(n / eps) rounds.

    Estimates never undershoot true distances and are within (1+eps) of
    them; weights must be >= 1 (the stretched-wave model).
    """
    if not g.weighted:
        return apsp_unweighted(g, seed=seed)
    if any(w < 1 for _, _, w in g.edges()):
        raise GraphError("apsp_approx requires weights >= 1")
    net = CongestNetwork(g, seed=seed)
    with net.phase("scaled-waves"):
        est, _ = approx_hop_sssp_with_pred(net, list(range(g.n)), h=g.n,
                                           eps=eps)
    details = {"mode": "approx", "eps": eps}
    exact = finalize_result_details(net, details)
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return KSourceResult(est, net.rounds, net.stats, details, exact=exact)


def mwc_via_approx_apsp(g: Graph, eps: float = 0.5,
                        seed: Optional[int] = None) -> AlgorithmResult:
    """(1+eps)-approximate MWC from approximate APSP, Õ(n / eps) rounds.

    Directed: candidates w(v, u) + d~(u, v) close real walks, so the value
    is in [MWC, (1+eps) MWC]. Undirected: girth-style edge candidates with
    wave-predecessor exclusion of backtracking walks.
    """
    net = CongestNetwork(g, seed=seed)
    n = g.n
    if g.weighted and any(w < 1 for _, _, w in g.edges()):
        raise GraphError("mwc_via_approx_apsp requires weights >= 1")
    with net.phase("scaled-waves"):
        est, pred = approx_hop_sssp_with_pred(net, list(range(n)), h=n,
                                              eps=eps)
    mu = [INF] * n
    if g.directed:
        for v in range(n):
            d_to_v = est[v]
            for u, w_vu in g.out_items(v):
                if u in d_to_v:
                    mu[v] = min(mu[v], d_to_v[u] + w_vu)
    else:
        vectors = [
            {s: (d, pred[v].get(s, -1)) for s, d in est[v].items()}
            for v in range(n)
        ]
        nbr = _exchange_vectors_degradable(net, vectors)
        for x in range(n):
            for y, got in nbr[x].items():
                w_xy = g.weight(x, y)
                for s, (d_sx, p_x) in vectors[x].items():
                    pair = got.get(s)
                    if pair is None:
                        continue
                    d_sy, p_y = pair
                    if p_x == y or p_y == x:
                        continue
                    mu[x] = min(mu[x], d_sx + d_sy + w_xy)
    value = _converge_min_degradable(net, mu)
    details = {"eps": eps, "rounds_total": net.rounds}
    exact = finalize_result_details(net, details)
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)
