"""Witness cycle construction (paper §1.1: "Our algorithms also allow us to
construct the cycle by storing the next vertex on the cycle at each vertex").

The distributed algorithms leave per-source parent pointers at each node
(the BFS/wave predecessor); a witness cycle is assembled by following those
pointers — each vertex on the cycle knows its next hop, which is exactly
the paper's distributed representation. The helpers here reconstruct the
explicit vertex list for the caller and validate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graphs.graph import Graph, GraphError


def path_from_parents(
    parent: Sequence[Dict[int, int]],
    source: int,
    target: int,
    n_limit: Optional[int] = None,
) -> Optional[List[int]]:
    """Vertex list of the stored source -> target path, or None.

    ``parent[v][source]`` is the predecessor of v on the recorded path from
    ``source``. Follows pointers backwards from ``target``.
    """
    if source == target:
        return [source]
    limit = n_limit if n_limit is not None else len(parent) + 1
    path = [target]
    v = target
    for _ in range(limit):
        p = parent[v].get(source)
        if p is None:
            return None
        path.append(p)
        if p == source:
            path.reverse()
            return path
        v = p
    return None


def simplify_closed_walk(walk: Sequence[int]) -> List[int]:
    """Extract a simple cycle from a closed walk (first repeat wins).

    ``walk`` is a vertex sequence whose last edge returns to the first
    vertex implicitly (the closing edge is not repeated in the list). The
    returned list contains each vertex once.
    """
    if not walk:
        raise GraphError("cannot simplify an empty walk")
    seen: Dict[int, int] = {}
    for idx, v in enumerate(walk):
        if v in seen:
            return list(walk[seen[v]:idx])
        seen[v] = idx
    return list(walk)


def cycle_weight(g: Graph, cycle: Sequence[int]) -> float:
    """Total weight of the cycle given as a vertex list (closing edge
    implied); raises if an edge is missing."""
    if len(cycle) < (2 if g.directed else 3):
        raise GraphError(f"cycle too short: {cycle}")
    total = 0
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
        total += g.weight(a, b)
    return total


def validate_cycle(g: Graph, cycle: Sequence[int]) -> bool:
    """Whether ``cycle`` is a simple cycle of ``g``."""
    if len(set(cycle)) != len(cycle):
        return False
    try:
        cycle_weight(g, cycle)
    except GraphError:
        return False
    return True


def assemble_directed_witness(
    g: Graph,
    parent: Sequence[Dict[int, int]],
    u: int,
    v: int,
) -> Optional[List[int]]:
    """Cycle from the stored u -> v path plus the edge (v, u)."""
    path = path_from_parents(parent, u, v)
    if path is None:
        return None
    cycle = simplify_closed_walk(path)
    return cycle if validate_cycle(g, cycle) else None


def extract_anchored_cycle(net, v: int, anchor: Optional[int],
                           budget: Optional[int] = None) -> Optional[List[int]]:
    """Rebuild the cycle ``path(anchor ->* v) + edge (v, anchor)``.

    Every candidate recorded by the directed algorithms has this anchored
    form; one exact wave from the anchor (with parents — the paper's
    per-node next-hop storage) recovers the path in O(weighted ecc + D)
    extra rounds. Works for weighted and unweighted graphs alike.
    """
    from repro.congest.primitives.waves import multi_source_wave

    if anchor is None or v == anchor:
        return None
    g = net.graph
    if budget is None:
        budget = max(1, g.n * max(1, g.max_weight()))
    _known, parents = multi_source_wave(net, [anchor], budget=budget,
                                        record_parents=True)
    path = path_from_parents(parents, anchor, v, n_limit=g.n + 1)
    if path is None:
        return None
    cycle = simplify_closed_walk(path)
    return cycle if validate_cycle(g, cycle) else None


def assemble_undirected_witness(
    g: Graph,
    parent: Sequence[Dict[int, int]],
    s: int,
    x: int,
    y: int,
    via: Optional[int] = None,
) -> Optional[List[int]]:
    """Cycle from stored s -> x and s -> y paths plus the closing edge(s).

    Without ``via``: closes with the edge (x, y). With ``via`` (the
    one-vertex-outside apex of §4): closes with the two edges
    (x, via), (via, y). The concatenated closed walk may share a prefix;
    the shared part is trimmed so the result is the simple fundamental
    cycle. Returns None when the walk degenerates.
    """
    px = path_from_parents(parent, s, x)
    py = path_from_parents(parent, s, y)
    if px is None or py is None:
        return None
    # Drop the common prefix (keep the divergence vertex = LCA).
    lca_idx = 0
    for a, b in zip(px, py):
        if a != b:
            break
        lca_idx += 1
    lca_idx -= 1
    if lca_idx < 0 and via is None:
        return None
    lca_idx = max(lca_idx, 0)
    middle = [via] if via is not None else []
    walk = px[lca_idx:] + middle + list(reversed(py[lca_idx + 1:]))
    cycle = simplify_closed_walk(walk)
    return cycle if validate_cycle(g, cycle) else None
