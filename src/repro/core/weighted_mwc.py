"""(2+eps)-approximate weighted MWC (§5): Theorems 1.4.C and 1.2.D.

Both algorithms follow the paper's two-regime framework:

* **Long cycles** (>= h hops): sample ~n/h vertices so one lands on the
  cycle w.h.p., compute (1+eps)-approximate k-source SSSP from the sample
  (the §2 skeleton construction specialised to U = S), and close cycles
  through sampled vertices.
* **Short cycles** (< h hops): run a hop-limited *unweighted* MWC
  approximation on every scaled graph ``G^i`` ([41]-style scaling, §5.1) —
  the undirected case uses the §4 girth algorithm (Corollary 4.1), the
  directed case the §3 restricted-BFS machinery — and un-scale the per-scale
  results, keeping the minimum.

Splitting parameter: ``h = n^{2/3}`` (undirected, total Õ(n^{2/3} + D)) or
``h = n^{3/5}`` (directed, total Õ(n^{4/5} + D), dominated by the
restricted BFS).

Weights must be >= 1: weight-0 edges break the stretched/unit-speed wave
model (the paper's stretching maps an edge to ``w`` unit edges); exact
algorithms handle zero weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.congest.primitives.broadcast import broadcast
from repro.congest.primitives.waves import multi_source_wave
from repro.core.approx_sssp import approx_hop_sssp_with_pred
from repro.core.girth import (
    _converge_min_degradable,
    _edge_candidates,
    _exchange_vectors_degradable,
    hop_limited_girth_on,
)
from repro.core.ksource import default_h, skeleton_apsp
from repro.core.restricted_bfs import RestrictedBfsParams, restricted_bfs
from repro.core.results import AlgorithmResult
from repro.core.sampling import sample_vertices
from repro.graphs.graph import Graph, GraphError, INF
from repro.graphs.scaling import hop_budget, scale_ladder, unscale_value
from repro.resilience.degrade import finalize_result_details


@dataclass
class WeightedMwcParams:
    """Constants for the §5 algorithms (exponents per the paper)."""

    eps: float = 0.5
    sample_constant: float = 3.0
    undirected_h_exponent: float = 2.0 / 3.0
    directed_h_exponent: float = 0.6
    rho_exponent: float = 0.8
    cap_constant: float = 2.0

    def h_undirected(self, n: int) -> int:
        """Long/short split h = n^{2/3} (Thm 1.4.C)."""
        return max(2, math.ceil(n ** self.undirected_h_exponent))

    def h_directed(self, n: int) -> int:
        """Long/short split h = n^{3/5} (Thm 1.2.D)."""
        return max(2, math.ceil(n ** self.directed_h_exponent))


def _validate_weighted(g: Graph, directed: bool) -> None:
    if g.directed != directed:
        kind = "directed" if directed else "undirected"
        raise GraphError(f"expected a {kind} graph")
    if not g.weighted:
        raise GraphError("expected a weighted graph; use the unweighted "
                         "algorithms for unweighted inputs")
    if any(w < 1 for _, _, w in g.edges()):
        raise GraphError("weighted MWC approximation requires weights >= 1 "
                         "(stretching cannot represent zero-weight edges); "
                         "use exact_mwc_congest for zero weights")


def _sampled_sssp_with_skeleton(
    net: CongestNetwork,
    S: Sequence[int],
    eps_in: float,
) -> Tuple[List[Dict[int, float]], List[Dict[int, int]]]:
    """(1+eps)-approximate distances from every s in S to every vertex.

    Algorithm 1 specialised to U = S: the seed broadcast coincides with the
    skeleton broadcast, so one skeleton + one wave family suffice. Returns
    (est, pred) with ``est[v][s] ~= d(s, v)`` and ``pred[v][s]`` the final
    edge of the realizing walk (for degenerate-candidate exclusion).
    """
    g = net.graph
    n = g.n
    h_seg = default_h(n, len(S))
    fwd, pred = approx_hop_sssp_with_pred(net, S, h=h_seg, eps=eps_in)
    S_set = set(S)
    skeleton_msgs = {
        s: [(t, s, d) for t, d in fwd[s].items() if t in S_set and t != s]
        for s in S
    }
    skeleton_edges = broadcast(net, skeleton_msgs)[0]
    skel = skeleton_apsp(skeleton_edges, S)
    est: List[Dict[int, float]] = [dict() for _ in range(n)]
    for v in range(n):
        for s, d in fwd[v].items():
            est[v][s] = d
        # Compose: s -> ... -> t (skeleton), then t's wave segment to v.
        for t, d_tv in fwd[v].items():
            if t not in S_set:
                continue
            for s in S:
                d_st = skel.get(s, {}).get(t)
                if d_st is None:
                    continue
                cand = d_st + d_tv
                if cand < est[v].get(s, INF):
                    est[v][s] = cand
                    p = pred[v].get(t)
                    if p is not None:
                        pred[v][s] = p
    return est, pred


def undirected_weighted_mwc_approx(
    g: Graph,
    eps: Optional[float] = None,
    seed: Optional[int] = None,
    params: Optional[WeightedMwcParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """(2+eps)-approximate undirected weighted MWC, Õ(n^{2/3} + D) (Thm 1.4.C).

    With ``construct_witness``, ``details["witness"]`` carries a real cycle
    realizing at most (roughly) the reported value, rebuilt with one extra
    wave (may be None if the winning walk degenerates; see
    repro.core.girth.extract_undirected_witness).
    """
    if params is None:
        params = WeightedMwcParams()
    if eps is not None:
        params = WeightedMwcParams(**{**params.__dict__, "eps": eps})
    _validate_weighted(g, directed=False)
    net = CongestNetwork(g, seed=seed)
    n = g.n
    h = params.h_undirected(n)
    eps_in = params.eps / 3.0
    details: Dict[str, object] = {"h": h, "eps": params.eps}

    # ---- Long cycles (>= h hops): sampled approximate SSSP + candidates.
    rounds0 = net.rounds
    S = sample_vertices(net.rng, n, min(1.0, params.sample_constant / h))
    details["sample_size"] = len(S)
    with net.phase("long-cycles"):
        est, pred = _sampled_sssp_with_skeleton(net, S, eps_in)
        vectors = [
            {s: (d, pred[v].get(s, -1)) for s, d in est[v].items()}
            for v in range(n)
        ]
        nbr = _exchange_vectors_degradable(net, vectors)
    long_best, long_arg = _edge_candidates(g, None, vectors, nbr)
    details["rounds_long"] = net.rounds - rounds0

    # ---- Short cycles (< h hops): scaled hop-limited girth (Cor 4.1).
    rounds1 = net.rounds
    short_value = INF
    short_arg = None
    budget = hop_budget(h, eps_in)
    num_scales = 0
    with net.phase("short-cycles"):
        for i, gi in scale_ladder(g, h, eps_in):
            num_scales += 1
            value_i, best_i, args_i = hop_limited_girth_on(
                net, budget=budget, weight_graph=gi)
            if value_i != INF:
                est = unscale_value(value_i, i, h, eps_in)
                if est < short_value:
                    short_value = est
                    scale_winner = min(range(n), key=lambda v: best_i[v])
                    short_arg = args_i[scale_winner]
    details["rounds_short"] = net.rounds - rounds1
    details["num_scales"] = num_scales

    long_value = _converge_min_degradable(net, long_best)
    value = min(long_value, short_value)
    exact = finalize_result_details(net, details)
    if construct_witness and value != INF and exact:
        from repro.core.girth import extract_undirected_witness

        if long_value <= short_value:
            winner = min(range(n), key=lambda v: long_best[v])
            arg = long_arg[winner]
            witness_arg = ("edge",) + arg if arg else None
        else:
            witness_arg = short_arg
        details["witness"] = extract_undirected_witness(net, witness_arg)
    details["rounds_total"] = net.rounds
    details["long_value"] = long_value
    details["short_value"] = short_value
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)


def directed_weighted_mwc_approx(
    g: Graph,
    eps: Optional[float] = None,
    seed: Optional[int] = None,
    params: Optional[WeightedMwcParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """(2+eps)-approximate directed weighted MWC, Õ(n^{4/5} + D) (Thm 1.2.D).

    With ``construct_witness``, ``details["witness"]`` carries a vertex list
    of a real cycle realizing (at most) the reported value — rebuilt with
    one exact wave from the winning anchor (see repro.core.witness).
    """
    if params is None:
        params = WeightedMwcParams()
    if eps is not None:
        params = WeightedMwcParams(**{**params.__dict__, "eps": eps})
    _validate_weighted(g, directed=True)
    net = CongestNetwork(g, seed=seed)
    n = g.n
    h = params.h_directed(n)
    eps_in = params.eps / 3.0
    details: Dict[str, object] = {"h": h, "eps": params.eps}

    # ---- Long cycles: sampled approximate SSSP, close with one edge.
    rounds0 = net.rounds
    S = sample_vertices(net.rng, n, min(1.0, params.sample_constant / h))
    S_set = set(S)
    details["sample_size"] = len(S)
    with net.phase("long-cycles"):
        est, _ = _sampled_sssp_with_skeleton(net, S, eps_in)
    long_best = [INF] * n
    anchor: List[Optional[int]] = [None] * n
    for v in range(n):
        d_from = est[v]
        for s, w_vs in g.out_items(v):
            if s in S_set and s in d_from:
                cand = w_vs + d_from[s]
                if cand < long_best[v]:
                    long_best[v] = cand
                    anchor[v] = s
    details["rounds_long"] = net.rounds - rounds0

    # ---- Short cycles: per-scale budget-limited Algorithm 2 machinery.
    rounds1 = net.rounds
    short_best = [INF] * n  # per-vertex, already un-scaled
    short_anchor: List[Optional[int]] = [None] * n
    budget = hop_budget(h, eps_in)
    wave_budget = 3 * budget  # covers Fact-1 witness cycles (<= 2x) + slack
    rb_params_base = RestrictedBfsParams.for_n(
        n, rho_exponent=params.rho_exponent, cap_constant=params.cap_constant
    )
    num_scales = 0
    with net.phase("short-cycles"):
        for i, gi in scale_ladder(g, h, eps_in, clamp=wave_budget + 1):
            num_scales += 1
            fwd_i, _ = multi_source_wave(net, S, budget=wave_budget,
                                         weight_graph=gi)
            rev_i, _ = multi_source_wave(net, S, budget=wave_budget,
                                         weight_graph=gi, reverse=True)
            # Pair distances among samples (line 5 analogue), per scale.
            pair_msgs = {t: [(s, t, d) for s, d in fwd_i[t].items()
                             if s in S_set]
                         for t in S}
            pair_rows = broadcast(net, pair_msgs)[0]
            pair_dist = {(s, t): float(d) for (s, t, d) in pair_rows}
            rb_params = RestrictedBfsParams(
                h=budget, rho=rb_params_base.rho, cap=rb_params_base.cap,
                beta=rb_params_base.beta,
            )
            outcome = restricted_bfs(
                net, S,
                d_from_s=fwd_i, d_to_s=rev_i, pair_dist=pair_dist,
                params=rb_params, weight_graph=gi, trunc=wave_budget,
            )
            for v in range(n):
                # Sampled-vertex cycle candidate at this scale, local at v.
                scale_v = outcome.mu[v]
                scale_anchor = outcome.mu_anchor[v]
                for s, w_vs in gi.out_items(v):
                    # Clamped (over-budget) scaled edges are never candidates.
                    if s in S_set and s in fwd_i[v] and w_vs <= budget:
                        cand = w_vs + fwd_i[v][s]
                        if cand < scale_v:
                            scale_v = cand
                            scale_anchor = s
                if scale_v != INF:
                    est_v = unscale_value(scale_v, i, h, eps_in)
                    if est_v < short_best[v]:
                        short_best[v] = est_v
                        short_anchor[v] = scale_anchor
    details["rounds_short"] = net.rounds - rounds1
    details["num_scales"] = num_scales

    combined = [min(a, b) for a, b in zip(long_best, short_best)]
    value = _converge_min_degradable(net, combined)
    exact = finalize_result_details(net, details)
    if construct_witness and value != INF and exact:
        from repro.core.witness import extract_anchored_cycle

        winner = min(range(n), key=lambda v: combined[v])
        win_anchor = (anchor[winner]
                      if long_best[winner] <= short_best[winner]
                      else short_anchor[winner])
        details["witness"] = extract_anchored_cycle(net, winner, win_anchor)
    details["rounds_total"] = net.rounds
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)
