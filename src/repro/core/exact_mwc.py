"""Exact MWC in the CONGEST model via APSP — the Õ(n) upper bounds of Table 1.

The paper cites [8] (Bernstein–Nanongkai) for exact weighted APSP in Õ(n)
rounds and closes cycles locally (min over edges ``(v, u)`` of
``w(v, u) + d(u, v)``; undirected graphs use non-tree edge candidates).

What we implement, per graph class:

* **Unweighted** (directed or undirected): pipelined n-source BFS in
  O(n + D) rounds (as in [28]) — exact, matching the cited bound.
* **Weighted**: pipelined *improvement-driven* Bellman–Ford from all
  sources: each node forwards, smallest-first, its improved (distance,
  source) pairs; every (edge, source) pair carries one message per
  improvement. This is the skeleton of [8] without their finality
  machinery: its guaranteed bound is O(n * I) rounds where I is the max
  number of per-(edge, source) improvements, but I = O(polylog) on the
  benchmark workloads, so measured rounds are near-linear (see
  EXPERIMENTS.md for the substitution note and the measured exponent).

For undirected graphs the local cycle-closing candidate excludes shortest-
path-tree edges (degenerate backtracking walks — see
:mod:`repro.sequential.mwc` for why naive closed-walk formulas undercount
in undirected graphs).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.checkpoint import CheckpointError
from repro.congest.kernels import kernels_enabled, run_wave_kernel
from repro.congest.network import CongestNetwork, RoundBudgetExceeded
from repro.congest.primitives.convergecast import converge_min
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.core.girth import _exchange_vectors
from repro.core.results import AlgorithmResult
from repro.graphs.graph import Graph, INF
from repro.resilience.degrade import (
    degrade_enabled,
    finalize_result_details,
    record_degradation,
)


def apsp_unweighted_on(net: CongestNetwork, reverse: bool = False,
                       checkpoint=None,
                       ) -> Tuple[List[Dict[int, int]], List[Dict[int, int]]]:
    """Pipelined n-source BFS: exact unweighted APSP in O(n + D) rounds."""
    return multi_source_bfs(net, list(range(net.n)), h=None,
                            record_parents=True, reverse=reverse,
                            checkpoint=checkpoint)


def apsp_weighted_on(
    net: CongestNetwork,
    reverse: bool = False,
    max_steps: Optional[int] = None,
    checkpoint=None,
) -> Tuple[List[Dict[int, float]], List[Dict[int, int]]]:
    """Improvement-driven pipelined Bellman–Ford APSP (weighted graphs).

    Each node maintains (source -> best distance) and forwards, smallest
    first, one improved pair per round per out-edge. Terminates at
    quiescence with exact distances. Rounds are measured; see module
    docstring for the bound discussion.
    """
    g = net.graph
    n = g.n
    neigh_items = g.in_items if reverse else g.out_items
    known: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, int]] = [dict() for _ in range(n)]
    pq: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
    for s in range(n):
        known[s][s] = 0
        heapq.heappush(pq[s], (0, s))
    cap = max_steps if max_steps is not None else 40 * n + 200
    use_batch = fast_path(net)
    if use_batch and kernels_enabled():
        result = run_wave_kernel(
            net, list(range(n)), cap=cap, reverse=reverse,
            timeout=f"weighted APSP did not quiesce within {cap} steps",
            checkpoint=checkpoint,
        )
        if result is not None:
            return result
    steps = 0
    config = {"reverse": reverse, "cap": cap}
    resumed = (checkpoint.take_resume("apsp-weighted")
               if checkpoint is not None else None)
    if resumed is not None:
        if resumed["config"] != config:
            raise CheckpointError(
                f"checkpointed apsp-weighted run had config "
                f"{resumed['config']}, resume asked for {config}")
        steps = resumed["steps"]
        known = resumed["known"]
        parent = resumed["parent"]
        pq = resumed["pq"]
    heappop, heappush = heapq.heappop, heapq.heappush
    while steps < cap:
        # Batched fast path: identical messages in identical (sender-major)
        # order as the dict path — distances, parents, and rounds match bit
        # for bit (see repro.congest.batch).
        batch = BatchedOutbox()
        bsrc, bdst, bpay = batch.src, batch.dst, batch.payloads
        for u in range(n):
            entry = None
            q = pq[u]
            while q:
                d, s = heappop(q)
                if known[u].get(s) != d:
                    continue
                entry = (d, s)
                break
            if entry is None:
                continue
            d, s = entry
            for v, w in neigh_items(u):
                bsrc.append(u)
                bdst.append(v)
                bpay.append((s, d + w))
        if not batch:
            break
        try:
            if use_batch:
                inbox = net.exchange_batched(batch, grouped=False)
                msgs = zip(inbox.src, inbox.dst, inbox.payloads)
            else:
                msgs = (
                    (sender, v, payload)
                    for v, by_sender in net.exchange(batch.to_outboxes()).items()
                    for sender, payloads in by_sender.items()
                    for payload in payloads
                )
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "apsp-weighted", str(exc))
                break
            raise
        steps += 1
        for sender, v, (s, d) in msgs:
            known_v = known[v]
            if known_v.get(s, INF) > d:
                known_v[s] = d
                parent[v][s] = sender
                heappush(pq[v], (d, s))
        if checkpoint is not None:
            checkpoint.maybe(net, "apsp-weighted", lambda: {
                "steps": steps, "known": known, "parent": parent,
                "pq": pq, "config": config})
    else:
        raise RuntimeError(f"weighted APSP did not quiesce within {cap} steps")
    return known, parent


def exact_mwc_congest_on(
    net: CongestNetwork,
    construct_witness: bool = False,
    checkpoint=None,
) -> AlgorithmResult:
    """Exact MWC on an existing network (Õ(n)-row upper bound of Table 1).

    With ``construct_witness`` the result's ``details["witness"]`` carries a
    vertex list of an optimal cycle, assembled from the per-node parent
    pointers the APSP left behind (the paper's "next vertex on the cycle"
    representation, §1.1); announcing it costs one extra broadcast of the
    achieving (source, edge) triple, O(D) rounds.

    ``checkpoint`` (a :class:`repro.congest.checkpoint.CheckpointManager`)
    makes the run resumable: the latest snapshot is restored here — before
    any phase scope opens — and the APSP loops then continue from their
    saved state bit-identically. A ``"post-apsp"`` snapshot is also taken
    once the dominant phase completes, so a kill during the cheap tail
    skips the APSP entirely on resume. The checkpoint is deleted on
    successful completion.

    With degradation enabled (:mod:`repro.resilience.degrade`), exhausting
    the round budget anywhere yields a best-effort result instead of
    raising: the surviving candidates — each the weight of a real closed
    walk, hence an upper bound on the MWC — are completed *centrally*
    (minimum without further network traffic), the result is flagged
    ``exact=False``, and ``details["degraded"]`` / ``details["confidence"]``
    describe what was absorbed.
    """
    from repro.core.witness import (
        assemble_directed_witness,
        assemble_undirected_witness,
    )

    g = net.graph
    n = g.n
    resumed_stage = checkpoint.resume(net) if checkpoint is not None else None
    if resumed_stage == "post-apsp":
        known, parents = checkpoint.take_resume("post-apsp")
    else:
        with net.phase("apsp"):
            if g.weighted:
                known, parents = apsp_weighted_on(net, checkpoint=checkpoint)
            else:
                known, parents = apsp_unweighted_on(net, checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.save_now(net, "post-apsp", (known, parents))
    mu = [INF] * n
    arg: List[Optional[Tuple]] = [None] * n
    if g.directed:
        # Cycle through edge (v, u): d(u, v) + w(v, u), local at v.
        for v in range(n):
            d_to_v = known[v]
            for u, w_vu in g.out_items(v):
                if u in d_to_v and d_to_v[u] + w_vu < mu[v]:
                    mu[v] = d_to_v[u] + w_vu
                    arg[v] = (u, v)
    else:
        # Non-tree-edge candidates: d(s, x) + d(s, y) + w(x, y) over all
        # sources s, excluding SPT edges (one O(n)-word neighbor exchange).
        vectors = [
            {s: (float(d), parents[v].get(s, -1)) for s, d in known[v].items()}
            for v in range(n)
        ]
        try:
            nbr = _exchange_vectors(net, vectors)
        except RoundBudgetExceeded as exc:
            if not degrade_enabled():
                raise
            # Central completion: the vectors already exist at every node;
            # only the (charged, failed) exchange is replaced. Candidates
            # derived from them are real closed walks, so still upper bounds.
            record_degradation(net, "sketch-exchange", str(exc))
            nbr = [{u: vectors[u] for u in net.comm_neighbors_sorted(x)}
                   for x in range(n)]
        for x in range(n):
            for y, got in nbr[x].items():
                w_xy = g.weight(x, y)
                for s, (d_sx, p_x) in vectors[x].items():
                    pair = got.get(s)
                    if pair is None:
                        continue
                    d_sy, p_y = pair
                    if p_x == y or p_y == x:
                        continue
                    cand = d_sx + d_sy + w_xy
                    if cand < mu[x]:
                        mu[x] = cand
                        arg[x] = (s, x, y)
    try:
        value = converge_min(net, mu)
    except RoundBudgetExceeded as exc:
        if not degrade_enabled():
            raise
        record_degradation(net, "convergecast", str(exc))
        value = min(mu) if mu else INF  # central completion
    details = {"weighted": g.weighted, "directed": g.directed,
               "rounds_total": net.rounds}
    exact = finalize_result_details(net, details)
    if construct_witness and value != INF and exact:
        winner = min(range(n), key=lambda v: mu[v])
        if g.directed:
            u, v = arg[winner]
            details["witness"] = assemble_directed_witness(g, parents, u, v)
        else:
            s, x, y = arg[winner]
            details["witness"] = assemble_undirected_witness(g, parents, s, x, y)
        net.charge_rounds(net.diameter_upper_bound())  # announce the triple
        details["rounds_total"] = net.rounds
    if checkpoint is not None:
        checkpoint.complete()
        details["checkpoint"] = {"saved": checkpoint.saved,
                                 "resumed_stage": resumed_stage}
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)


def exact_mwc_congest(g: Graph, seed: Optional[int] = None,
                      construct_witness: bool = False,
                      checkpoint=None) -> AlgorithmResult:
    """Exact MWC for any graph class: Õ(n) rounds (Table 1 '1, Õ(n)' rows)."""
    net = CongestNetwork(g, seed=seed)
    return exact_mwc_congest_on(net, construct_witness=construct_witness,
                                checkpoint=checkpoint)
