"""Distance summaries: eccentricities, radius, diameter (related problems).

The paper situates MWC among the CONGEST distance problems with near-optimal
bounds — APSP [8], diameter/radius/eccentricities [1, 6] (§1.3, §1.5).
These utilities compute those quantities on the simulator from the same
APSP substrates, rounding out the library's distance toolbox:

* unweighted: exact in O(n + D) rounds (pipelined all-source BFS [28]);
* weighted: exact (improvement-driven pipelined APSP) or (1+eps)-approximate
  with the guaranteed Õ(n / eps) scaling bound.

Every vertex ends up knowing its own eccentricity; radius and diameter are
convergecast minima/maxima of those values (O(D) extra rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.congest.network import CongestNetwork, NetworkStats
from repro.congest.primitives.convergecast import converge_max, converge_min
from repro.core.approx_sssp import approx_hop_sssp_with_pred
from repro.core.exact_mwc import apsp_unweighted_on, apsp_weighted_on
from repro.graphs.graph import Graph, GraphError, INF


@dataclass
class DistanceSummary:
    """Eccentricities + radius + diameter of a (di)graph, with round cost.

    Directed graphs use *out*-eccentricities: ecc(v) = max_u d(v, u);
    unreachable pairs make the eccentricity (and hence diameter) infinite.
    """

    eccentricity: List[float]
    radius: float
    diameter: float
    rounds: int
    stats: NetworkStats
    details: Dict[str, object]


def distance_summary(
    g: Graph,
    seed: Optional[int] = None,
    approx_eps: Optional[float] = None,
) -> DistanceSummary:
    """Compute eccentricities, radius, and diameter on the simulator.

    ``approx_eps`` switches weighted graphs to the guaranteed-bound
    (1+eps)-approximate APSP; estimates never undershoot, so the reported
    radius/diameter are within (1+eps) above the truth.
    """
    net = CongestNetwork(g, seed=seed)
    n = g.n
    if not g.weighted:
        known, _ = apsp_unweighted_on(net)
        mode = "exact-unweighted"
    elif approx_eps is not None:
        if approx_eps <= 0:
            raise GraphError("approx_eps must be positive")
        if any(w < 1 for _, _, w in g.edges()):
            raise GraphError("approximate mode requires weights >= 1")
        known, _ = approx_hop_sssp_with_pred(net, list(range(n)), h=n,
                                             eps=approx_eps)
        mode = "approx"
    else:
        known, _ = apsp_weighted_on(net)
        mode = "exact-weighted"
    # known[v][u] = d(u, v): v knows its distance FROM every u. To know its
    # own out-eccentricity, each vertex needs d(v, u) for all u — flip roles
    # by aggregating per source: ecc(u) = max over v of d(u, v). Each vertex
    # v contributes its received distances via n convergecast-style maxima;
    # here we compute them with one O(n + D) pipelined max-aggregation
    # (values keyed by source), charged as a broadcast-sized exchange.
    ecc: List[float] = [0.0] * n
    reached: List[int] = [0] * n
    for v in range(n):
        for u, d in known[v].items():
            if d > ecc[u]:
                ecc[u] = float(d)
            reached[u] += 1
    for u in range(n):
        if reached[u] < n:
            ecc[u] = INF
    # The per-source maxima above aggregate values held at *other* vertices;
    # charge the pipelined aggregation explicitly: n values through a BFS
    # tree, O(n + D) rounds.
    with net.phase("ecc-aggregation"):
        net.charge_rounds(n + net.diameter_upper_bound())
    radius = converge_min(net, ecc)
    diameter = converge_max(net, ecc)
    return DistanceSummary(
        eccentricity=ecc,
        radius=radius,
        diameter=diameter,
        rounds=net.rounds,
        stats=net.stats,
        details={"mode": mode},
    )
