"""Algorithm 2 (§3): 2-approximate directed unweighted MWC, Õ(n^{4/5} + D).

Pipeline (paper line numbers in comments):

1. Sample S with probability Θ(polylog(n)/h), h = n^{3/5}.
2. Exact k-source BFS from S in both directions (Algorithm 1), so every
   vertex knows d(s, v) and d(v, s) for all s in S.
3. Locally record cycles through sampled vertices (exact for long cycles
   and for any cycle touching S).
4. Broadcast all-pairs sampled distances d(s, t).
5. Run the restricted-BFS short-cycle subroutine (Algorithm 3).
6. Convergecast the global minimum.

The returned value is exact when a minimum weight cycle passes through a
sampled vertex (in particular whenever the MWC has >= h hops, w.h.p.), and a
2-approximation otherwise (Lemma 3.4's case analysis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.congest.network import CongestNetwork
from repro.congest.primitives.broadcast import broadcast
from repro.core.ksource import k_source_bfs_on
from repro.core.restricted_bfs import RestrictedBfsParams, restricted_bfs
from repro.core.results import AlgorithmResult
from repro.core.girth import _converge_min_degradable
from repro.core.sampling import sample_vertices
from repro.graphs.graph import Graph, GraphError, INF
from repro.resilience.degrade import finalize_result_details


@dataclass
class DirectedMwcParams:
    """Constants of Algorithm 2 (paper values in parentheses).

    ``sample_constant`` scales the sampling probability ``c / h`` — the
    paper uses Θ(log^3 n / h); at simulable n the polylog is folded into
    the constant so that the measured rounds exhibit the n^{4/5} *shape*
    rather than being swamped by log factors (see DESIGN.md §1).
    """

    h_exponent: float = 0.6       # h = n^{3/5}
    rho_exponent: float = 0.8     # rho = n^{4/5}
    sample_constant: float = 3.0
    cap_constant: float = 2.0
    #: Absolute per-phase message cap; overrides cap_constant * log2(n).
    #: Benchmarks fix this across an n-sweep so the fitted exponent reflects
    #: the n^{4/5} phase count rather than the Θ(log^2 n) phase cost.
    cap: Optional[int] = None
    beta: Optional[int] = None
    enforce_caps: bool = True

    def h(self, n: int) -> int:
        """The long/short split parameter h = n^{3/5}."""
        return max(2, math.ceil(n ** self.h_exponent))

    def sample_probability(self, n: int) -> float:
        """Per-vertex sampling probability c / h (paper: Theta(polylog/h))."""
        return min(1.0, self.sample_constant / self.h(n))


def directed_mwc_2approx_on(
    net: CongestNetwork,
    params: Optional[DirectedMwcParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """Algorithm 2 on an existing network.

    With ``construct_witness`` the returned ``details["witness"]`` carries a
    vertex list of the reported cycle. Every candidate the algorithm
    records has the form "path anchor ->* v plus edge (v, anchor)", so one
    extra single-source BFS from the winning anchor (with parents — the
    paper's per-node next-hop storage) reconstructs the cycle; this costs
    O(ecc + D) extra rounds.
    """
    g = net.graph
    if not g.directed or g.weighted:
        raise GraphError("directed_mwc_2approx expects a directed unweighted graph")
    if params is None:
        params = DirectedMwcParams()
    n = g.n
    h = params.h(n)
    details: Dict[str, object] = {"h": h}

    # Line 1-2: mu_v = inf; sample S.
    mu = [INF] * n
    anchor: list = [None] * n
    S = sample_vertices(net.rng, n, params.sample_probability(n))
    details["sample_size"] = len(S)

    # Line 3: multiple-source exact BFS from S, both directions.
    rounds0 = net.rounds
    with net.phase("ksource"):
        fwd = k_source_bfs_on(net, S)           # fwd.dist[v][s] = d(s, v)
        rev = k_source_bfs_on(net, S, reverse=True)  # rev.dist[v][s] = d(v, s)
    details["rounds_ksource"] = net.rounds - rounds0

    # Line 4: cycles through sampled vertices, locally at each v:
    # for each out-edge (v, s) with s sampled, w(v, s) + d(s, v).
    S_set = set(S)
    for v in range(n):
        d_from = fwd.dist[v]
        for s in g.out_neighbors(v):
            if s in S_set and s in d_from:
                cand = g.weight(v, s) + d_from[s]
                if cand < mu[v]:
                    mu[v] = cand
                    anchor[v] = s

    # Line 5: broadcast all-pairs sampled distances d(s, t).
    rounds1 = net.rounds
    with net.phase("pair-broadcast"):
        pair_msgs = {t: [(s, t, d) for s, d in fwd.dist[t].items()] for t in S}
        pair_rows = broadcast(net, pair_msgs)[0]
        pair_dist = {(s, t): float(d) for (s, t, d) in pair_rows}
    details["rounds_pair_broadcast"] = net.rounds - rounds1

    # Line 6: short-cycle subroutine (Algorithm 3).
    rounds2 = net.rounds
    rb_params = RestrictedBfsParams.for_n(
        n,
        h_exponent=params.h_exponent,
        rho_exponent=params.rho_exponent,
        cap_constant=params.cap_constant,
        beta=params.beta,
    )
    if params.cap is not None:
        rb_params.cap = params.cap
    with net.phase("restricted-bfs"):
        outcome = restricted_bfs(
            net,
            S,
            d_from_s=fwd.dist,
            d_to_s=rev.dist,
            pair_dist=pair_dist,
            params=rb_params,
            enforce_caps=params.enforce_caps,
        )
    for v in range(n):
        if outcome.mu[v] < mu[v]:
            mu[v] = outcome.mu[v]
            anchor[v] = outcome.mu_anchor[v]
    details["rounds_short_cycles"] = net.rounds - rounds2
    details.update(outcome.details)

    # Line 7: convergecast the minimum.
    value = _converge_min_degradable(net, mu)
    exact = finalize_result_details(net, details)
    if construct_witness and value != INF and exact:
        winner = min(range(n), key=lambda v: mu[v])
        details["witness"] = _extract_witness(net, winner, anchor[winner])
    details["rounds_total"] = net.rounds
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)


def _extract_witness(net: CongestNetwork, v: int, anchor: Optional[int]):
    """Rebuild the cycle path(anchor ->* v) + (v, anchor) with one wave."""
    from repro.core.witness import extract_anchored_cycle

    return extract_anchored_cycle(net, v, anchor)


def directed_mwc_2approx(
    g: Graph,
    seed: Optional[int] = None,
    params: Optional[DirectedMwcParams] = None,
    construct_witness: bool = False,
) -> AlgorithmResult:
    """2-approximation of directed unweighted MWC (Theorem 1.2.C)."""
    net = CongestNetwork(g, seed=seed)
    return directed_mwc_2approx_on(net, params,
                                   construct_witness=construct_witness)
