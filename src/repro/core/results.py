"""Result records returned by the distributed algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.congest.network import NetworkStats


@dataclass
class AlgorithmResult:
    """Outcome of a distributed MWC-style computation.

    Attributes
    ----------
    value:
        The computed answer (e.g. approximate MWC weight); ``inf`` when the
        graph is acyclic.
    rounds:
        CONGEST rounds consumed, as measured by the simulator.
    stats:
        Aggregate traffic statistics of the run.
    details:
        Algorithm-specific extras (sample sizes, per-phase round breakdown,
        overflow counts, ...), keyed by short strings. Used by benchmarks
        and ablations; not part of the stability contract.
    """

    value: float
    rounds: int
    stats: NetworkStats
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class KSourceResult:
    """Outcome of a k-source BFS / SSSP computation.

    ``dist[v]`` maps each source ``u`` to the (approximate) distance
    ``d(u, v)``; sources that cannot reach ``v`` are absent.
    """

    dist: List[Dict[int, float]]
    rounds: int
    stats: NetworkStats
    details: Dict[str, Any] = field(default_factory=dict)

    def distance(self, u: int, v: int) -> float:
        """d(u, v), or ``inf`` if ``v`` was not reached from ``u``."""
        return self.dist[v].get(u, float("inf"))
