"""Result records returned by the distributed algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.congest.network import NetworkStats


@dataclass
class AlgorithmResult:
    """Outcome of a distributed MWC-style computation.

    Attributes
    ----------
    value:
        The computed answer (e.g. approximate MWC weight); ``inf`` when the
        graph is acyclic.
    rounds:
        CONGEST rounds consumed, as measured by the simulator.
    stats:
        Aggregate traffic statistics of the run.
    details:
        Algorithm-specific extras (sample sizes, per-phase round breakdown,
        overflow counts, ...), keyed by short strings. Used by benchmarks
        and ablations; not part of the stability contract.
    exact:
        False when the run degraded gracefully after exhausting a round or
        retry budget (``REPRO_DEGRADE`` /
        :func:`repro.resilience.degrading`): ``value`` is then a
        best-effort upper bound, ``details["degraded"]`` lists the
        absorbed failures, and ``details["confidence"]`` summarizes them.
        Degraded results never silently replace exact ones — consumers
        must check this flag.
    """

    value: float
    rounds: int
    stats: NetworkStats
    details: Dict[str, Any] = field(default_factory=dict)
    exact: bool = True


@dataclass
class KSourceResult:
    """Outcome of a k-source BFS / SSSP computation.

    ``dist[v]`` maps each source ``u`` to the (approximate) distance
    ``d(u, v)``; sources that cannot reach ``v`` are absent.
    """

    dist: List[Dict[int, float]]
    rounds: int
    stats: NetworkStats
    details: Dict[str, Any] = field(default_factory=dict)
    #: False when the run degraded after budget exhaustion: ``dist`` then
    #: holds the distances discovered before the cutoff (each one the
    #: length of a real path, so an upper bound on the true distance).
    exact: bool = True

    def distance(self, u: int, v: int) -> float:
        """d(u, v), or ``inf`` if ``v`` was not reached from ``u``."""
        return self.dist[v].get(u, float("inf"))
