"""Algorithm 3 (§3.1): restricted BFS with phase-overflow handling.

# congestlint: disable-file=CL005 — callers (directed_mwc, weighted_mwc)
# open the net.phase("restricted-bfs") scope around every entry point, so
# this module's traffic is always attributed; it must not nest scopes.

Components, mapped to the paper's pseudocode:

* ``build_rv`` — lines 2-8: the local, iterative construction of
  ``R(v) ⊆ S`` (one randomly chosen still-uncovered sampled vertex per
  partition ``S_i``), using only distances ``d(v, t)`` and ``d(s, t)`` that
  the vertex received earlier.
* ``membership_test`` — Definition 3.1: ``y ∈ P(v)`` iff for every
  ``t ∈ R(v)``: ``d(y, t) + 2 d(v, y) <= d(t, y) + 2 d(v, t)``.
* ``restricted_bfs`` — lines 9-26: the phase-scheduled BFS from *every*
  vertex, restricted to ``P(v)``, with random start delays ``δ_v ∈ [ρ]``,
  per-phase Θ(log n) message caps, phase-overflow flags ``Z(v)``, and the
  final h-hop BFS from the overflow set ``Z``.

Cycle candidates are recorded where the information lives: a vertex ``y``
holding a discovered distance ``d(v, y)`` and an out-edge ``(y, v)`` records
the closed walk ``v -> ... -> y -> v`` of weight ``d(v, y) + 1`` (the paper
phrases the same update at ``v``; the recorded global minimum is identical
and needs no extra communication).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.congest.primitives.waves import multi_source_wave
from repro.graphs.graph import INF


def _deliver(net: CongestNetwork, outboxes) -> Dict[int, Dict[int, list]]:
    """One exchange step, via the batched fast path when it is safe.

    Flattening the nested outboxes in their iteration order (sender-major,
    targets in insertion order) makes the grouped batched inboxes
    bit-for-bit equal to ``net.exchange``'s, so the phase loop's per-sender
    cap checks see identical payload lists either way.
    """
    if fast_path(net):
        batch = BatchedOutbox()
        send = batch.send
        for u, out in outboxes.items():
            for v, msgs in out.items():
                for payload, w in msgs:
                    send(u, v, payload, w)
        return net.exchange_batched(batch)
    return net.exchange(outboxes)


@dataclass
class RestrictedBfsParams:
    """Tunable constants of Algorithm 3.

    Paper defaults are ``h = n^{3/5}``, ``ρ = n^{4/5}``, per-phase caps of
    Θ(log n) messages and ``β = log n`` partitions. The Θ-constants are
    explicit here because at simulable n the polylog factors dominate.
    """

    h: int
    rho: int
    cap: int
    beta: int

    @classmethod
    def for_n(cls, n: int, h_exponent: float = 0.6, rho_exponent: float = 0.8,
              cap_constant: float = 2.0, beta: Optional[int] = None
              ) -> "RestrictedBfsParams":
        log_n = max(1.0, math.log2(max(2, n)))
        return cls(
            h=max(2, math.ceil(n ** h_exponent)),
            rho=max(2, math.ceil(n ** rho_exponent)),
            cap=max(2, math.ceil(cap_constant * log_n)),
            beta=beta if beta is not None else max(2, round(log_n / 2)),
        )


def partition_sample(S: Sequence[int], beta: int,
                     rng: np.random.Generator) -> List[List[int]]:
    """Randomly partition S into beta parts (line 2)."""
    order = list(S)
    rng.shuffle(order)
    parts: List[List[int]] = [[] for _ in range(beta)]
    for idx, s in enumerate(order):
        parts[idx % beta].append(s)
    return [p for p in parts if p]


def build_rv(
    v: int,
    partitions: Sequence[Sequence[int]],
    d_v_to: Mapping[int, float],
    d_to_v: Mapping[int, float],
    pair_dist: Mapping[Tuple[int, int], float],
    rng: np.random.Generator,
) -> List[int]:
    """Construct R(v) (lines 3-8), local computation at v.

    ``d_v_to[s] = d(v, s)``, ``d_to_v[s] = d(s, v)`` and
    ``pair_dist[(s, t)] = d(s, t)`` are the inputs Algorithm 2 provides. In
    iteration i we keep the sampled vertices of partition i not yet covered
    by R(v) (per Definition 3.1 applied to sampled vertices) and add one of
    them at random.
    """
    R: List[int] = []
    for part in partitions:
        T = [
            s for s in part
            if all(_covered_test(s, t, d_v_to, pair_dist) for t in R)
        ]
        if T:
            R.append(T[int(rng.integers(0, len(T)))])
    return R


def _covered_test(y: int, t: int, d_v_to: Mapping[int, float],
                  pair_dist: Mapping[Tuple[int, int], float]) -> bool:
    """Definition 3.1 condition for sampled y against t in R(v).

    True means y is still *uncovered* (remains a candidate for P(v)).
    """
    d_y_t = pair_dist.get((y, t), INF)
    d_t_y = pair_dist.get((t, y), INF)
    d_v_y = d_v_to.get(y, INF)
    d_v_t = d_v_to.get(t, INF)
    return d_y_t + 2 * d_v_y <= d_t_y + 2 * d_v_t


def membership_test(
    u: int,
    d_star: float,
    R_y: Sequence[int],
    d_y_to_R: Mapping[int, float],
    d_u_to: Mapping[int, float],
    d_to_u: Mapping[int, float],
    trunc: float = INF,
) -> bool:
    """Definition 3.1: does u (at BFS distance d*) belong to P(y)?

    Evaluated at the *sender* (line 22) using the neighbor's sampled
    distances exchanged in line 11 plus R(y), d(y, t) from the message.

    ``trunc`` handles budget-truncated distance inputs (§5.2's scaled
    waves): a missing ``d(u, t)`` then means "at least ``trunc``", and u is
    excluded only when the Fact-1 violation is *certain* — i.e. even the
    lower bound exceeds a fully known right-hand side. Exclusion must be
    certain because Case 2 of Lemma 3.4 converts each exclusion into a
    2-approximation witness via Fact 1; an uncertain exclusion would have
    no witness. Keeping u is always safe (it only grows P(y)/round cost).
    """
    for t in R_y:
        d_t_u = d_to_u.get(t, INF)
        d_y_t = d_y_to_R.get(t, INF)
        if d_t_u == INF or d_y_t == INF:
            continue  # RHS unknown: violation cannot be certified; keep u
        d_u_t = d_u_to.get(t, INF)
        lhs_lower = d_u_t if d_u_t != INF else trunc
        if lhs_lower == INF:
            return False  # LHS truly infinite, RHS finite: certain violation
        if not (lhs_lower + 2 * d_star <= d_t_u + 2 * d_y_t):
            return False
    return True


@dataclass
class RestrictedBfsOutcome:
    """What the restricted BFS discovered."""

    #: mu[v]: best (weight-of-closed-walk) cycle candidate recorded at v.
    mu: List[float]
    #: mu_anchor[v]: the source y achieving mu[v] (cycle = path y ->* v
    #: plus edge (v, y)); None when mu[v] is infinite.
    mu_anchor: List[Optional[int]]
    #: dist[u]: {source y -> d(y, u)} discovered by the restricted BFS.
    dist: List[Dict[int, int]]
    #: Phase-overflow vertex set Z.
    overflow: Set[int]
    #: R(v) per vertex (for tests / diagnostics).
    rv: List[List[int]]
    #: messages dropped due to caps, phases executed (diagnostics).
    details: Dict[str, int] = field(default_factory=dict)


def restricted_bfs(
    net: CongestNetwork,
    S: Sequence[int],
    d_from_s: Sequence[Mapping[int, float]],
    d_to_s: Sequence[Mapping[int, float]],
    pair_dist: Mapping[Tuple[int, int], float],
    params: RestrictedBfsParams,
    enforce_caps: bool = True,
    weight_graph=None,
    trunc: float = INF,
) -> RestrictedBfsOutcome:
    """Algorithm 3: approximate short-MWC subroutine.

    Parameters
    ----------
    d_from_s:
        ``d_from_s[v][s] = d(s, v)`` — each vertex's distances *from* the
        sampled vertices (Algorithm 2 line 3).
    d_to_s:
        ``d_to_s[v][s] = d(v, s)`` — distances *to* the sampled vertices.
    pair_dist:
        ``(s, t) -> d(s, t)`` for sampled pairs (broadcast in line 5).
    enforce_caps:
        Ablation hook: ``False`` disables overflow detection (lines 19/21),
        letting congestion grow unchecked — the simulator then charges the
        true (large) per-phase load.
    weight_graph:
        Optional re-weighted copy of the topology (the scaled graphs of
        §5.2). The restricted BFS then runs as a unit-speed wave: a message
        crossing a weight-``w`` edge is physically sent ``w - 1`` phases
        after it is scheduled (simulating the stretched graph's virtual
        path) and ``params.h`` is interpreted as a *weight* budget. The
        unweighted case is the special case ``w = 1`` everywhere.
    """
    g = net.graph
    wg = weight_graph if weight_graph is not None else g
    n = g.n
    h, rho, cap, beta = params.h, params.rho, params.cap, params.beta
    rng = net.rng
    partitions = partition_sample(S, beta, rng)

    # Lines 3-10: local setup at each vertex.
    rv: List[List[int]] = [
        build_rv(v, partitions, d_to_s[v], d_from_s[v], pair_dist, net.node_rng(v))
        for v in range(n)
    ]
    delta = [int(net.node_rng(v).integers(1, rho + 1)) for v in range(n)]
    Z: Set[int] = set()

    # Line 11: exchange sampled-distance vectors with neighbors, O(|S|).
    outboxes = {}
    for v in range(n):
        payload = (dict(d_to_s[v]), dict(d_from_s[v]))
        words = max(1, len(d_to_s[v]) + len(d_from_s[v]))
        msgs = {u: [(payload, words)] for u in net.comm_neighbors_sorted(v)}
        if msgs:
            outboxes[v] = msgs
    nbr_dist: List[Dict[int, Tuple[Dict[int, float], Dict[int, float]]]] = [
        dict() for _ in range(n)
    ]
    for v, by_sender in _deliver(net, outboxes).items():
        for u, payloads in by_sender.items():
            nbr_dist[v][u] = payloads[0]

    # Lines 13-22: the phase loop. ``sendq[v][r]`` holds messages vertex v
    # must emit at phase r — a message crossing a weight-w edge is emitted
    # w phases after it was scheduled (the stretched-graph crawl), so the
    # receiver always processes source y's wave at phase delta_y + d(y, .).
    mu: List[float] = [INF] * n
    mu_anchor: List[Optional[int]] = [None] * n
    dist: List[Dict[int, int]] = [dict() for _ in range(n)]
    sendq: List[Dict[int, List[Tuple[int, Tuple, int]]]] = [dict() for _ in range(n)]

    def schedule(v: int, at_phase: int, u: int, msg: Tuple, words: int) -> None:
        sendq[v].setdefault(at_phase, []).append((u, msg, words))

    dropped = 0
    last_phase = h + rho
    for r in range(1, last_phase + 1):
        outboxes = {}
        for v in range(n):
            if v in Z:
                continue
            out: Dict[int, list] = {}
            if r == delta[v]:
                # Lines 15-17: start own BFS; initial send is unconditional.
                R_t = tuple(rv[v])
                dR = tuple(d_to_s[v].get(t, INF) for t in R_t)
                words = 2 + 2 * len(R_t)
                for u, w_vu in wg.out_items(v):
                    if w_vu <= h:
                        schedule(v, r + w_vu - 1, u, (v, w_vu, R_t, dR), words)
            for u, msg, words in sendq[v].pop(r, ()):
                out.setdefault(u, []).append((msg, words))
            if out:
                outboxes[v] = out
        if not outboxes:
            if r > rho and all(not q for q in sendq):
                break  # all BFS started and drained
            net.charge_rounds(1)  # idle phase (delayed starts / crawling)
            continue
        inboxes = _deliver(net, outboxes)
        for v, by_sender in inboxes.items():
            if v in Z:
                continue
            # Line 19: per-edge receive cap.
            overflowed = False
            fresh: List[Tuple[int, int, Tuple[int, ...], Tuple[float, ...]]] = []
            seen_now: Set[int] = set()
            for u, payloads in by_sender.items():
                if enforce_caps and len(payloads) > cap:
                    overflowed = True
                    break
                for y, d_v, R_t, dR in payloads:
                    # Line 20: keep only first-time sources.
                    if y in dist[v] or y == v or y in seen_now:
                        continue
                    seen_now.add(y)
                    fresh.append((y, d_v, R_t, dR))
            if overflowed or (enforce_caps and len(fresh) > cap):
                Z.add(v)
                sendq[v].clear()
                dropped += len(fresh)
                continue
            for y, d_v, R_t, dR in fresh:
                dist[v][y] = d_v
                # Record the closed walk y -> ... -> v -> y if edge (v, y)
                # exists (line 26, evaluated where the distance lives).
                # Edges heavier than the budget may carry clamped scaled
                # weights (scale_ladder) and are never candidate material.
                if g.has_edge(v, y) and wg.weight(v, y) <= h:
                    cand = d_v + wg.weight(v, y)
                    if cand < mu[v]:
                        mu[v] = cand
                        mu_anchor[v] = y
                # Line 22: forward within the budget, membership-tested.
                d_y_to_R = dict(zip(R_t, dR))
                words = 2 + 2 * len(R_t)
                for u, w_vu in wg.out_items(v):
                    d_u = d_v + w_vu
                    if d_u > h:
                        continue
                    d_u_s, d_s_u = nbr_dist[v].get(u, ({}, {}))
                    if membership_test(u, d_u, R_t, d_y_to_R, d_u_s, d_s_u,
                                       trunc=trunc):
                        schedule(v, r + w_vu, u, (y, d_u, R_t, dR), words)

    # Lines 23-24: h-hop (h-budget) BFS from phase-overflow vertices.
    Z_list = sorted(Z)
    if Z_list:
        z_known, _ = multi_source_wave(net, Z_list, budget=h, weight_graph=wg)
        for x in range(n):
            for z, d_zx in z_known[x].items():
                if g.has_edge(x, z) and wg.weight(x, z) <= h:
                    cand = d_zx + wg.weight(x, z)
                    if cand < mu[x]:
                        mu[x] = cand
                        mu_anchor[x] = z
    return RestrictedBfsOutcome(
        mu=mu,
        mu_anchor=mu_anchor,
        dist=dist,
        overflow=Z,
        rv=rv,
        details={
            "overflow_count": len(Z),
            "dropped": dropped,
            "cap": cap,
            "h": h,
            "rho": rho,
        },
    )
