"""Prior-work baselines that Table 1 compares against.

* ``exact_girth_congest`` — Holzer–Wattenhofer [28]: exact girth via
  pipelined all-source BFS, O(n) rounds.
* ``girth_prt`` — Peleg–Roditty–Tal [44]: (2 - 1/g)-approximate girth in
  Õ(sqrt(n g) + D) rounds. Reconstructed from its stated complexity and the
  standard sample-or-neighborhood dichotomy (the mechanism our paper's §4
  refines): guess ĝ by doubling; per guess, use neighborhood size
  sigma = Θ(sqrt(n ĝ)) — if the ĝ-ball of a cycle vertex is smaller than
  sigma the sigma-nearest detection finds the cycle exactly, otherwise the
  ball is dense enough that a Θ((n/sigma) log n)-size sample hits it and a
  sampled BFS yields a (2 - 1/g) estimate. Accept when the estimate is
  <= 2ĝ - 1 (sound: every candidate is at least g). Total
  sum over guesses of O(ĝ + sqrt(n ĝ) + D) = Õ(sqrt(n g) + D).
* ``k_source_bfs_repeated_on`` (in :mod:`repro.core.ksource`) — the k·SSSP
  repetition baseline of Theorem 1.6.A.

The §4 algorithm (``girth_2approx``) replaces sigma = sqrt(n ĝ) with
sigma = sqrt(n), removing the dependence on g entirely — the improvement
benchmarked in ``benchmarks/bench_girth_2approx.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.congest.network import CongestNetwork
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.core.girth import _converge_min_degradable, _girth_candidates_on
from repro.core.results import AlgorithmResult
from repro.graphs.graph import Graph, GraphError, INF
from repro.resilience.degrade import finalize_result_details


def exact_girth_congest(g: Graph, seed: Optional[int] = None) -> AlgorithmResult:
    """Exact girth in O(n) rounds [28] (all-source pipelined BFS)."""
    if g.directed or g.weighted:
        raise GraphError("exact girth is for undirected unweighted graphs")
    net = CongestNetwork(g, seed=seed)
    return exact_mwc_congest_on(net)


@dataclass
class PrtParams:
    """Constants of the [44] reconstruction."""

    sigma_constant: float = 1.0
    sample_constant: float = 3.0


def girth_prt(
    g: Graph,
    seed: Optional[int] = None,
    params: Optional[PrtParams] = None,
) -> AlgorithmResult:
    """(2 - 1/g)-approximate girth in Õ(sqrt(n g) + D) rounds [44]."""
    if g.directed or g.weighted:
        raise GraphError("girth_prt expects an undirected unweighted graph")
    if params is None:
        params = PrtParams()
    net = CongestNetwork(g, seed=seed)
    n = g.n
    details: Dict[str, object] = {"guesses": []}
    guess = 4
    best = INF
    while guess < 4 * n:
        sigma = max(2, math.ceil(params.sigma_constant * math.sqrt(n * guess)))
        cand, _args, _ = _girth_candidates_on(
            net,
            sample_prob=min(1.0, params.sample_constant / sigma),
            sigma=sigma,
            bfs_budget=n,
            detection_budget=min(guess, n),
        )
        value = _converge_min_degradable(net, cand)
        details["guesses"].append({"g_hat": guess, "sigma": sigma,
                                   "value": value, "rounds": net.rounds})
        best = min(best, value)
        if best <= 2 * guess - 1:
            break
        guess *= 2
    details["rounds_total"] = net.rounds
    exact = finalize_result_details(net, details)
    return AlgorithmResult(value=best, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)
