"""Fixed-length directed cycle detection (paper §1.3's discussion).

The paper observes that its Ω̃(n) MWC lower bound implies an Ω̃(n) bound
for *detecting a directed cycle of length q for any q >= 4* — "surprising
given that triangle detection can be performed in Õ(n^{1/3}) rounds". This
module provides the matching upper-bound utilities:

* :func:`shortest_cycle_within` — the minimum length of a directed cycle of
  at most q hops (exact), via pipelined n-source q-hop BFS in O(n + q)
  rounds. Combined with the Theorem 1.2.A family this completes the
  detection story on the upper-bound side.
* :func:`detect_two_cycle` — the q = 2 special case in O(1) rounds (each
  edge endpoint checks for the reverse edge with one message exchange),
  showing where the hardness starts: q = 2 is local, q = 3 is Θ̃(n^{1/3})
  [12, 45], q >= 4 is Ω̃(n) (Theorem 1.2.A).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.congest.network import CongestNetwork
from repro.congest.primitives.convergecast import converge_min
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.core.girth import _converge_min_degradable
from repro.core.results import AlgorithmResult
from repro.graphs.graph import Graph, GraphError, INF
from repro.resilience.degrade import finalize_result_details


def shortest_cycle_within_on(net: CongestNetwork, q: int) -> AlgorithmResult:
    """Minimum hop length of a directed cycle with at most q hops.

    Exact: pipelined q-hop BFS from all n sources (O(n + q) rounds), then
    the usual local closing step d(u, v) + 1 over edges (v, u). Returns
    ``inf`` if no cycle of <= q hops exists.
    """
    g = net.graph
    if not g.directed:
        raise GraphError("directed cycle detection expects a directed graph")
    if g.weighted:
        raise GraphError("q-cycle detection is a hop-length problem; "
                         "use the MWC algorithms for weighted graphs")
    if q < 2:
        raise GraphError(f"the shortest possible directed cycle has 2 hops, got q={q}")
    known, _ = multi_source_bfs(net, list(range(g.n)), h=q - 1)
    mu = [INF] * g.n
    for v in range(g.n):
        d_to_v = known[v]
        for u in g.out_neighbors(v):
            if u in d_to_v:
                mu[v] = min(mu[v], d_to_v[u] + 1)
    value = _converge_min_degradable(net, mu)
    if value > q:
        value = INF
    details = {"q": q, "rounds_total": net.rounds}
    exact = finalize_result_details(net, details)
    return AlgorithmResult(value=value, rounds=net.rounds, stats=net.stats,
                           details=details, exact=exact)


def shortest_cycle_within(g: Graph, q: int,
                          seed: Optional[int] = None) -> AlgorithmResult:
    """Fresh-network wrapper for :func:`shortest_cycle_within_on`."""
    net = CongestNetwork(g, seed=seed)
    return shortest_cycle_within_on(net, q)


def has_cycle_of_length_at_most(g: Graph, q: int,
                                seed: Optional[int] = None) -> bool:
    """Whether a directed cycle of at most q hops exists."""
    return shortest_cycle_within(g, q, seed=seed).value != INF


def detect_two_cycle_on(net: CongestNetwork) -> Tuple[bool, int]:
    """Detect a 2-cycle in O(1) rounds: one exchange + one convergecast.

    Each vertex tells every out-neighbor about the edge; a receiver holding
    the reverse edge reports a hit.
    """
    g = net.graph
    if not g.directed:
        raise GraphError("two-cycle detection expects a directed graph")
    with net.phase("two-cycle-probe"):
        outboxes = {}
        for v in range(g.n):
            msgs = {u: [(("edge", v), 1)] for u in g.out_neighbors(v)}
            if msgs:
                outboxes[v] = msgs
        inboxes = net.exchange(outboxes)
    hit = [0] * g.n
    for v, by_sender in inboxes.items():
        for u in by_sender:
            if g.has_edge(v, u):
                hit[v] = 1
    found = converge_min(net, [-h for h in hit]) == -1
    return found, net.rounds
