"""k-source directed BFS and approximate SSSP (paper §2, Theorem 1.6).

Algorithm 1 of the paper: sample a skeleton set S of ~n/h vertices, compute
h-hop BFS from S in both directions, broadcast the skeleton graph (h-hop
distances between sampled vertices) so every node can locally solve APSP on
it, run h-hop BFS from the k sources, broadcast the source-to-sample seed
distances, and combine. With ``h = sqrt(n k)`` this takes Õ(sqrt(n k) + D)
rounds for ``k >= n^{1/3}`` and Õ(n/k + D) for smaller k; repeating
single-source BFS k times is the alternative small-k mode (Theorem 1.6.A).

The weighted variant replaces every h-hop BFS with the scaled-wave
(1+eps)-approximate h-hop SSSP of :mod:`repro.core.approx_sssp`, giving
(1+eps)-approximate k-source SSSP in Õ(sqrt(n k) + D) rounds
(Theorem 1.6.B).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.congest.primitives.bfs import bfs
from repro.congest.primitives.broadcast import broadcast
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.congest.primitives.trees import propagate_down_trees
from repro.core.approx_sssp import approx_hop_sssp
from repro.core.results import KSourceResult
from repro.core.sampling import hitting_set_probability, sample_vertices
from repro.graphs.graph import Graph, GraphError, INF


def default_h(n: int, k: int) -> int:
    """The paper's skeleton parameter ``h = sqrt(n k)``."""
    return max(1, math.ceil(math.sqrt(n * max(1, k))))


def skeleton_apsp(skeleton_edges: Sequence[Tuple[int, int, float]],
                  members: Sequence[int]) -> Dict[int, Dict[int, float]]:
    """All-pairs distances on the (broadcast) skeleton graph.

    This is the "internal computation" of Algorithm 1 line 6 — performed
    locally at each node on data it received via broadcast, so it costs no
    rounds. Implemented once here and shared.
    """
    adj: Dict[int, List[Tuple[int, float]]] = {s: [] for s in members}
    for s, t, d in skeleton_edges:
        adj.setdefault(s, []).append((t, d))
    dist: Dict[int, Dict[int, float]] = {}
    for s in members:
        d: Dict[int, float] = {s: 0.0}
        heap = [(0.0, s)]
        while heap:
            du, u = heapq.heappop(heap)
            if du > d.get(u, INF):
                continue
            for v, w in adj.get(u, ()):
                nd = du + w
                if nd < d.get(v, INF):
                    d[v] = nd
                    heapq.heappush(heap, (nd, v))
        dist[s] = d
    return dist


def _combine_seed_and_skeleton(
    seeds: Dict[Tuple[int, int], float],
    skel: Dict[int, Dict[int, float]],
    sources: Sequence[int],
    members: Sequence[int],
) -> Dict[Tuple[int, int], float]:
    """d(u, s) for all u in U, s in S: seed hop to some t, skeleton t -> s."""
    out: Dict[Tuple[int, int], float] = {}
    for (u, t), d_ut in seeds.items():
        for s, d_ts in skel[t].items():
            key = (u, s)
            cand = d_ut + d_ts
            if cand < out.get(key, INF):
                out[key] = cand
    return out


def k_source_bfs_on(
    net: CongestNetwork,
    sources: Sequence[int],
    h: Optional[int] = None,
    sample_constant: float = 1.0,
    use_tree_propagation: bool = True,
    reverse: bool = False,
) -> KSourceResult:
    """Algorithm 1 on an existing network (exact k-source directed BFS).

    With ``reverse=True`` every BFS direction is flipped, so the result is
    the k-source BFS of the *reversed* graph: ``dist[v][u] = d_G(v, u)`` —
    each vertex learns its distance *to* every source. Algorithm 2 uses
    both orientations (its line 3 note: "Repeat this computation in the
    reversed graph").
    """
    g = net.graph
    if g.weighted:
        raise GraphError("k_source_bfs_on requires an unweighted graph; "
                         "use k_source_sssp_on for weighted graphs")
    n = g.n
    sources = list(dict.fromkeys(sources))
    k = len(sources)
    if k == 0:
        return KSourceResult([dict() for _ in range(n)], net.rounds, net.stats)
    if h is None:
        h = default_h(n, k)
    start_rounds = net.rounds
    details: Dict[str, object] = {"h": h, "k": k}

    # Line 1: shared-randomness sample S, |S| ~ (n log n) / h.
    S = sample_vertices(net.rng, n, hitting_set_probability(h, n, sample_constant))
    details["sample_size"] = len(S)
    S_set = set(S)

    # Line 2: h-hop BFS from S, forward (with parents, for line 9's trees)
    # and in the reversed graph.
    with net.phase("skeleton-bfs"):
        fwd_known, fwd_parent = multi_source_bfs(net, S, h=h,
                                                 record_parents=True,
                                                 reverse=reverse)
        rev_known, _ = multi_source_bfs(net, S, h=h, reverse=not reverse)
    details["rounds_sample_bfs"] = net.rounds - start_rounds

    # Lines 4-5: skeleton edges (s -> t, d(s, t)) known at s from the
    # reverse BFS; broadcast them all (<= |S|^2 values).
    skeleton_msgs = {
        s: [(s, t, d) for t, d in rev_known[s].items() if t in S_set and t != s]
        for s in S
    }
    with net.phase("skeleton-broadcast"):
        received = broadcast(net, skeleton_msgs)
    skeleton_edges = received[0]  # identical at every node

    # Line 6: local APSP on the skeleton.
    skel = skeleton_apsp(skeleton_edges, S)

    # Line 7: h-hop BFS from the k sources; sampled vertices broadcast the
    # seed distances d(u, s) they observed (<= k |S| values).
    with net.phase("source-bfs"):
        src_known, _ = multi_source_bfs(net, sources, h=h, reverse=reverse)
    seed_msgs = {s: [(u, s, d) for u, d in src_known[s].items()] for s in S}
    with net.phase("seed-broadcast"):
        received = broadcast(net, seed_msgs)
    seeds = {(u, t): float(d) for (u, t, d) in received[0]}

    # Line 8: d(u, s) for every source u and sampled s — computable locally
    # at every node from the two broadcasts.
    dus = _combine_seed_and_skeleton(seeds, skel, sources, S)

    # Lines 9-10: each sampled vertex pushes its k values down its h-hop
    # BFS tree; v combines with its own d(s, v) from line 2. (Every node
    # could equally compute d(u, s) locally from the broadcasts — the paper
    # pipelines the values through the trees, and so do we, so that the
    # measured round cost matches the paper's accounting.)
    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    for v in range(n):
        for u, d in src_known[v].items():
            dist[v][u] = float(d)
    if use_tree_propagation:
        root_values = {
            s: [(u, dus[(u, s)]) for u in sources if (u, s) in dus] for s in S
        }
        with net.phase("tree-propagation"):
            delivered = propagate_down_trees(net, fwd_parent, root_values)
        for v in range(n):
            own = fwd_known[v]
            for s, (u, d_us) in delivered[v]:
                d_sv = own.get(s)
                if d_sv is None:
                    continue
                cand = d_us + d_sv
                if cand < dist[v].get(u, INF):
                    dist[v][u] = cand
    else:
        for v in range(n):
            for s, d_sv in fwd_known[v].items():
                for u in sources:
                    d_us = dus.get((u, s))
                    if d_us is None:
                        continue
                    cand = d_us + d_sv
                    if cand < dist[v].get(u, INF):
                        dist[v][u] = cand
    details["rounds_total"] = net.rounds - start_rounds
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    for v in range(n):
        net.state[v]["ksource_dist"] = dict(dist[v])
    return KSourceResult(dist, net.rounds, net.stats, details)


def k_source_bfs_repeated_on(
    net: CongestNetwork, sources: Sequence[int]
) -> KSourceResult:
    """Baseline: k sequential full-depth BFS runs (k * SSSP of Thm 1.6.A)."""
    g = net.graph
    dist: List[Dict[int, float]] = [dict() for _ in range(g.n)]
    for u in dict.fromkeys(sources):
        d, _ = bfs(net, u)
        for v in range(g.n):
            if d[v] != INF:
                dist[v][u] = float(d[v])
    return KSourceResult(dist, net.rounds, net.stats, {"method": "repeat"})


def k_source_bfs(
    g: Graph,
    sources: Sequence[int],
    seed: Optional[int] = None,
    h: Optional[int] = None,
    method: str = "auto",
    sample_constant: float = 1.0,
) -> KSourceResult:
    """Exact k-source BFS per Theorem 1.6.A.

    ``method``: ``"skeleton"`` forces Algorithm 1, ``"repeat"`` forces the
    k-fold single-source baseline, ``"auto"`` picks per the theorem — the
    skeleton algorithm for ``k >= n^{1/3}``, otherwise whichever of
    Õ(n/k + D) (skeleton with h = sqrt(nk)) and k*SSSP has the smaller
    estimate.
    """
    net = CongestNetwork(g, seed=seed)
    k = max(1, len(set(sources)))
    n = g.n
    if method == "auto":
        if k >= round(n ** (1 / 3)):
            method = "skeleton"
        else:
            d_bound = net.diameter_upper_bound()
            skeleton_est = math.sqrt(n * k) + n / k + d_bound
            repeat_est = k * (d_bound + 1)
            method = "skeleton" if skeleton_est < repeat_est else "repeat"
    if method == "skeleton":
        return k_source_bfs_on(net, sources, h=h, sample_constant=sample_constant)
    if method == "repeat":
        return k_source_bfs_repeated_on(net, sources)
    raise ValueError(f"unknown method {method!r}")


def k_source_sssp_on(
    net: CongestNetwork,
    sources: Sequence[int],
    eps: float = 0.5,
    h: Optional[int] = None,
    sample_constant: float = 1.0,
) -> KSourceResult:
    """(1+eps)-approximate k-source SSSP on an existing weighted network.

    Structure mirrors Algorithm 1 with every h-hop BFS replaced by the
    scaled-wave approximate h-hop SSSP; the skeleton edges carry
    (1+eps')-approximate h-hop distances (eps' = eps/2 absorbs the unit-
    weight lift of zero-free scaling), and segment-wise composition keeps
    the end-to-end factor at (1+eps) (Theorem 1.6.B).
    """
    g = net.graph
    if not g.weighted:
        return k_source_bfs_on(net, sources, h=h, sample_constant=sample_constant)
    if any(w < 1 for _, _, w in g.edges()):
        raise GraphError("weighted k-source SSSP requires weights >= 1 "
                         "(zero-weight edges break the stretching model)")
    n = g.n
    sources = list(dict.fromkeys(sources))
    k = len(sources)
    if k == 0:
        return KSourceResult([dict() for _ in range(n)], net.rounds, net.stats)
    if h is None:
        h = default_h(n, k)
    eps_in = eps / 2.0
    details: Dict[str, object] = {"h": h, "k": k, "eps": eps}

    S = sample_vertices(net.rng, n, hitting_set_probability(h, n, sample_constant))
    details["sample_size"] = len(S)
    S_set = set(S)

    with net.phase("skeleton-sssp"):
        fwd = approx_hop_sssp(net, S, h=h, eps=eps_in)
        rev = approx_hop_sssp(net, S, h=h, eps=eps_in, reverse=True)

    skeleton_msgs = {
        s: [(s, t, d) for t, d in rev[s].items() if t in S_set and t != s]
        for s in S
    }
    with net.phase("skeleton-broadcast"):
        skeleton_edges = broadcast(net, skeleton_msgs)[0]
    skel = skeleton_apsp(skeleton_edges, S)

    with net.phase("source-sssp"):
        src_dist = approx_hop_sssp(net, sources, h=h, eps=eps_in)
    seed_msgs = {s: [(u, s, d) for u, d in src_dist[s].items()] for s in S}
    with net.phase("seed-broadcast"):
        seeds = {(u, t): float(d)
                 for (u, t, d) in broadcast(net, seed_msgs)[0]}
    dus = _combine_seed_and_skeleton(seeds, skel, sources, S)

    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    for v in range(n):
        for u, d in src_dist[v].items():
            dist[v][u] = float(d)
        for s, d_sv in fwd[v].items():
            for u in sources:
                d_us = dus.get((u, s))
                if d_us is None:
                    continue
                cand = d_us + d_sv
                if cand < dist[v].get(u, INF):
                    dist[v][u] = cand
    details["rounds_total"] = net.rounds
    phases = net.phase_report()
    if phases:
        details["phases"] = phases
    for v in range(n):
        net.state[v]["ksource_dist"] = dict(dist[v])
    return KSourceResult(dist, net.rounds, net.stats, details)


def k_source_sssp(
    g: Graph,
    sources: Sequence[int],
    eps: float = 0.5,
    seed: Optional[int] = None,
    h: Optional[int] = None,
    sample_constant: float = 1.0,
) -> KSourceResult:
    """(1+eps)-approximate k-source SSSP (Theorem 1.6.B), fresh network."""
    net = CongestNetwork(g, seed=seed)
    return k_source_sssp_on(net, sources, eps=eps, h=h,
                            sample_constant=sample_constant)
