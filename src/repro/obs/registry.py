"""Lightweight metrics registry: counters, gauges, histograms, timers.

Design goals, in order:

1. **Near-zero overhead when disabled.** Observability defaults to off;
   every accessor (:func:`counter`, :func:`timer`, ...) then returns a
   shared null instrument whose methods are no-ops, so an instrumented hot
   loop pays one flag check and one attribute call — no allocation, no
   dict lookup, no branch in the caller.
2. **Exactness when enabled.** Instruments are plain Python attribute
   updates with no sampling; what you read in a snapshot is exactly what
   the code recorded.
3. **Determinism.** Nothing here draws randomness or perturbs the
   simulator: enabling metrics never changes rounds, messages, or results
   (asserted by ``tests/test_differential.py``).

The registry complements — not replaces — the *phase* layer in
:mod:`repro.obs.phases`: phases attribute the simulator's own counters
(rounds/messages/words) to algorithm stages, while the registry holds
free-form instrument values (invocation counts, level histograms, wall
timers) that have no simulator counterpart.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Any, Dict, Iterator, Optional

#: Environment variable enabling observability; unset or ``"0"`` means off.
METRICS_ENV = "REPRO_METRICS"

#: Programmatic override installed by :func:`observing`; ``None`` defers to
#: the environment.
_FORCED: Optional[bool] = None


def metrics_enabled() -> bool:
    """Whether observability is globally enabled (default: no)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(METRICS_ENV, "0") not in ("", "0")


@contextlib.contextmanager
def observing(enabled: bool = True) -> Iterator[None]:
    """Force observability on or off within a block (tests, CLI, benchmarks).

    Networks built inside the block pick up the setting as their default
    ``metrics`` flag, and registry accessors hand out live instruments.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


class Counter:
    """Monotonically increasing count (events, calls, items)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value (frontier size, queue depth)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Intentionally bucket-free: the simulator's own
    ``NetworkStats.link_load_histogram`` covers the one distribution the
    paper's analysis needs, and count/sum/min/max answer the benchmark
    questions (means, extremes) without tuning bucket edges.
    """

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class Timer:
    """Accumulating wall-clock timer; use as a context manager.

    Non-reentrant by design (one scope at a time), which keeps the hot
    path to two ``perf_counter`` calls and two attribute writes.
    """

    __slots__ = ("name", "count", "seconds", "_started")
    kind = "timer"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self.count += 1
            self._started = None

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "count": self.count, "seconds": self.seconds}


class NullInstrument:
    """Shared do-nothing stand-in handed out while metrics are disabled.

    Implements the union of the instrument interfaces so call sites never
    branch on the enabled flag themselves.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "NullInstrument":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


#: The singleton null instrument (allocation-free disabled path).
NULL = NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "timer": Timer}


class MetricsRegistry:
    """A named collection of instruments, created on first use."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = _KINDS[kind](name)
        elif instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def timer(self, name: str) -> Timer:
        return self._get(name, "timer")

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict view of every instrument, for JSONL persistence."""
        return {name: inst.as_dict()
                for name, inst in sorted(self._instruments.items())}

    def reset(self) -> None:
        """Forget every instrument (tests and fresh benchmark sweeps)."""
        self._instruments.clear()


#: Process-wide default registry used by the module-level accessors.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (live even while disabled)."""
    return _REGISTRY


def counter(name: str):
    """A live counter when metrics are on, the null instrument otherwise."""
    return _REGISTRY.counter(name) if metrics_enabled() else NULL


def gauge(name: str):
    """A live gauge when metrics are on, the null instrument otherwise."""
    return _REGISTRY.gauge(name) if metrics_enabled() else NULL


def histogram(name: str):
    """A live histogram when metrics are on, the null instrument otherwise."""
    return _REGISTRY.histogram(name) if metrics_enabled() else NULL


def timer(name: str):
    """A live timer when metrics are on, the null instrument otherwise."""
    return _REGISTRY.timer(name) if metrics_enabled() else NULL
