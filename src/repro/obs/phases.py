"""Phase-scoped attribution of simulator counters to algorithm stages.

The paper's congestion arguments are *per phase*: the k-source BFS, the
sketch exchange, and the witness convergecast each get their own round
budget, and the total is their sum. This module makes that decomposition
measurable: a :class:`PhaseAccumulator` attached to a network slices the
flat ``rounds`` / ``NetworkStats`` counters into named buckets by taking
snapshots at phase boundaries.

Exactness contract
------------------
Every counter increment is attributed to **exactly one** bucket — the
innermost phase active when it happened, or the ``(unscoped)`` bucket when
no phase was open. Hence, for any network at any time::

    sum(bucket.rounds for bucket in report) == net.rounds
    sum(bucket.words  for bucket in report) == net.stats.words

(and likewise for steps and messages). The conformance suite asserts this
under random workloads, nesting, faults, and the batched exchange.

Because attribution works purely by differencing counters the simulator
already maintains, the exchange hot path is untouched: cost is O(1) per
phase *boundary*, zero per message, and identically zero when metrics are
disabled (``net.phase(...)`` then returns the shared :data:`NULL_PHASE`).

Nested phases compose hierarchically: entering ``"wave"`` inside
``"sampled-bfs"`` produces the bucket ``"sampled-bfs/wave"``; the outer
bucket keeps only the traffic not claimed by any inner phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Bucket receiving all traffic that happens outside any phase scope.
UNSCOPED = "(unscoped)"

#: Separator joining nested phase names into one hierarchical bucket key.
SEP = "/"

#: A counter snapshot: (rounds, steps, messages, words, perf_counter()).
Snapshot = Tuple[int, int, int, int, float]


@dataclass
class PhaseStats:
    """Simulator counters attributed to one phase bucket."""

    rounds: int = 0
    steps: int = 0
    messages: int = 0
    words: int = 0
    seconds: float = 0.0
    #: How many times the phase scope was entered (0 for ``(unscoped)``).
    entries: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"rounds": self.rounds, "steps": self.steps,
                "messages": self.messages, "words": self.words,
                "seconds": round(self.seconds, 6), "entries": self.entries}


class NullPhase:
    """Do-nothing context manager returned while metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton null phase (allocation-free disabled path).
NULL_PHASE = NullPhase()


class PhaseAccumulator:
    """Bucketed counter attribution for one network.

    The accumulator never reads the network itself; the owner passes a
    :data:`Snapshot` of its counters at every boundary (enter, exit,
    report). This keeps the module free of simulator imports and makes the
    arithmetic trivially testable.
    """

    __slots__ = ("stack", "stats", "mark")

    def __init__(self, mark: Snapshot):
        #: Active phase buckets, outermost first (full hierarchical names).
        self.stack: List[str] = []
        self.stats: Dict[str, PhaseStats] = {}
        #: Counter values at the last boundary; deltas since then belong to
        #: the current top of stack (or UNSCOPED).
        self.mark: Snapshot = mark

    def _bucket(self, name: str) -> PhaseStats:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = PhaseStats()
        return stats

    def flush(self, now: Snapshot) -> None:
        """Attribute counter movement since the last boundary, re-mark."""
        mark = self.mark
        self.mark = now
        d_rounds = now[0] - mark[0]
        d_steps = now[1] - mark[1]
        d_messages = now[2] - mark[2]
        d_words = now[3] - mark[3]
        d_seconds = now[4] - mark[4]
        if not (d_rounds or d_steps or d_messages or d_words):
            # Pure wall time: attribute it only inside a phase (local
            # computation between exchanges is part of the phase's story);
            # idle time outside any phase is caller overhead, not workload.
            if self.stack and d_seconds > 0:
                self._bucket(self.stack[-1]).seconds += d_seconds
            return
        bucket = self._bucket(self.stack[-1] if self.stack else UNSCOPED)
        bucket.rounds += d_rounds
        bucket.steps += d_steps
        bucket.messages += d_messages
        bucket.words += d_words
        bucket.seconds += d_seconds

    def enter(self, name: str, now: Snapshot) -> str:
        """Open a (possibly nested) phase; returns the full bucket name."""
        self.flush(now)
        full = f"{self.stack[-1]}{SEP}{name}" if self.stack else name
        self.stack.append(full)
        self._bucket(full).entries += 1
        return full

    def exit(self, now: Snapshot) -> None:
        """Close the innermost phase, attributing its tail delta."""
        self.flush(now)
        if self.stack:
            self.stack.pop()

    def report(self, now: Snapshot) -> Dict[str, Dict[str, float]]:
        """Flush and return all buckets as plain dicts (stable order)."""
        self.flush(now)
        return {name: self.stats[name].as_dict()
                for name in sorted(self.stats)}
