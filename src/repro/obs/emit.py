"""JSONL emission and summarization of observability records.

One record per simulated run, one JSON object per line — the append-only
format every log shipper understands. A record is self-describing::

    {"label": "mwc/exact", "rounds": 412, "stats": {...},
     "phases": {"multi-bfs": {"rounds": 361, ...}, ...},
     "metrics": {"primitives.bfs.calls": {...}}, ...}

``repro metrics <file>`` (see :mod:`repro.cli`) renders the per-phase
breakdown of such a file; the benchmark harness embeds the same phase
dicts into sweep rows so persisted experiment JSONs carry them too.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import MetricsRegistry

#: Environment variable supplying the default JSONL sink path.
METRICS_PATH_ENV = "REPRO_METRICS_PATH"


def metrics_record(
    label: str,
    net: Any = None,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one observability record.

    ``net`` may be any object with ``rounds``, ``stats`` and
    ``phase_report()`` (a :class:`~repro.congest.network.CongestNetwork`
    or a delegating wrapper). ``registry`` adds an instrument snapshot;
    ``extra`` is merged in last, so callers can stamp workload parameters.
    """
    record: Dict[str, Any] = {"label": label}
    if net is not None:
        stats = net.stats
        record["rounds"] = net.rounds
        record["stats"] = {
            "steps": stats.steps,
            "messages": stats.messages,
            "words": stats.words,
            "local_messages": stats.local_messages,
            "max_link_load": stats.max_link_load,
        }
        record["phases"] = net.phase_report()
    if registry is not None:
        record["metrics"] = registry.snapshot()
    if extra:
        record.update(extra)
    return record


def emit_jsonl(record: Dict[str, Any], path: Optional[str] = None) -> str:
    """Append ``record`` as one JSON line to ``path`` (or the env default).

    Returns the path written to. Raises :class:`ValueError` when neither
    ``path`` nor :data:`METRICS_PATH_ENV` names a sink — emission is an
    explicit act, never a silent no-op.
    """
    target = path or os.environ.get(METRICS_PATH_ENV)
    if not target:
        raise ValueError(
            f"no JSONL sink: pass a path or set {METRICS_PATH_ENV}")
    parent = os.path.dirname(os.path.abspath(target))
    os.makedirs(parent, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str)
    # A single write of one newline-terminated line keeps concurrent
    # appenders (process-pool sweep workers) from interleaving records.
    with open(target, "a") as f:
        f.write(line + "\n")
    return target


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load every record of a JSONL file (blank lines ignored)."""
    records: List[Dict[str, Any]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSONL: {exc}") from exc
    return records


def aggregate_phases(records: Iterable[Dict[str, Any]]
                     ) -> Dict[str, Dict[str, float]]:
    """Sum per-phase counters across records (same-named buckets merge)."""
    totals: Dict[str, Dict[str, float]] = {}
    for record in records:
        for name, stats in (record.get("phases") or {}).items():
            bucket = totals.setdefault(
                name, {"rounds": 0, "steps": 0, "messages": 0, "words": 0,
                       "seconds": 0.0, "entries": 0})
            for key in bucket:
                bucket[key] += stats.get(key, 0)
    return totals


def summarize_phases(records: List[Dict[str, Any]]) -> str:
    """Human-readable per-phase table for a list of records."""
    totals = aggregate_phases(records)
    if not totals:
        return "(no phase data)"
    total_rounds = sum(b["rounds"] for b in totals.values()) or 1
    header = (f"{'phase':<36} {'rounds':>8} {'%':>6} {'steps':>7} "
              f"{'messages':>9} {'words':>9} {'seconds':>8}")
    lines = [header, "-" * len(header)]
    for name in sorted(totals, key=lambda k: -totals[k]["rounds"]):
        b = totals[name]
        lines.append(
            f"{name:<36} {int(b['rounds']):>8} "
            f"{100.0 * b['rounds'] / total_rounds:>5.1f}% "
            f"{int(b['steps']):>7} {int(b['messages']):>9} "
            f"{int(b['words']):>9} {b['seconds']:>8.3f}")
    lines.append(
        f"{'total':<36} {sum(int(b['rounds']) for b in totals.values()):>8} "
        f"{'':>6} {sum(int(b['steps']) for b in totals.values()):>7} "
        f"{sum(int(b['messages']) for b in totals.values()):>9} "
        f"{sum(int(b['words']) for b in totals.values()):>9} "
        f"{sum(b['seconds'] for b in totals.values()):>8.3f}")
    return "\n".join(lines)
