"""repro.obs — phase-scoped observability for the CONGEST simulator.

Three layers, documented in ``docs/observability.md``:

* :mod:`repro.obs.registry` — a lightweight metrics registry (counters,
  gauges, histograms, wall-clock timers) with near-zero overhead while
  disabled. Gate: ``REPRO_METRICS=1`` or the :func:`observing` context
  manager.
* :mod:`repro.obs.phases` — per-phase attribution of the simulator's own
  round/message/word counters via ``net.phase("restricted-bfs")`` scopes;
  attribution is *exact* (buckets sum to the flat ``NetworkStats`` totals).
* :mod:`repro.obs.emit` — JSONL emission plus the aggregation behind the
  ``repro metrics`` CLI subcommand and the benchmark harness's per-row
  phase breakdowns.

Enabling metrics never changes simulated results or round counts: phase
tracking reads counters the simulator already maintains and the registry
touches nothing the algorithms observe (asserted by the differential and
conformance test suites).
"""

from repro.obs.emit import (
    METRICS_PATH_ENV,
    aggregate_phases,
    emit_jsonl,
    metrics_record,
    read_jsonl,
    summarize_phases,
)
from repro.obs.phases import (
    NULL_PHASE,
    SEP,
    UNSCOPED,
    PhaseAccumulator,
    PhaseStats,
)
from repro.obs.registry import (
    METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    metrics_enabled,
    observing,
    timer,
)

__all__ = [
    "METRICS_ENV",
    "METRICS_PATH_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PHASE",
    "PhaseAccumulator",
    "PhaseStats",
    "SEP",
    "Timer",
    "UNSCOPED",
    "aggregate_phases",
    "counter",
    "emit_jsonl",
    "gauge",
    "get_registry",
    "histogram",
    "metrics_enabled",
    "metrics_record",
    "observing",
    "read_jsonl",
    "summarize_phases",
    "timer",
]
