"""congestlint rules: AST checks for the repository's CONGEST model contracts.

Every rule targets a contract the simulator, the parity suites, or the
paper's accounting depend on but that no runtime check can see statically:

========  ==============================================================
CL001     cross-node state access from node-program code
CL002     traffic or counter mutation bypassing ``exchange`` accounting
CL003     nondeterminism hazards (unseeded RNG, wall clock, iteration
          over unordered collections feeding message emission)
CL004     variable-size payloads charged as a single O(log n)-bit word
CL005     core algorithm traffic outside any ``net.phase(...)`` scope
CL006     bare ``except:`` / ``except Exception: pass`` swallowing
CL007     mutation of consumed exchange inboxes
CL008     ``exchange_batched`` without an engine gate or dict fallback
========  ==============================================================

Rules are deliberately heuristic (static analysis cannot prove dynamic
properties); false positives are handled by inline suppressions or the
committed baseline, never by weakening a rule to silence.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.lint.findings import Finding

#: Modules allowed to touch raw counters / build inboxes: they *are* the
#: accounting layer the other rules protect.
_SIMULATOR_CORE = (
    "congest/network.py",
    "congest/batch.py",
    "congest/kernels.py",
    "congest/faults.py",
    "congest/trace.py",
    "congest/sanitize.py",
    "congest/node.py",
    "congest/primitives/reliable.py",
    "obs/phases.py",
)

#: Modules whose business is wall-clock measurement (CL003 clock check).
_CLOCK_EXEMPT = (
    "obs/",
    "harness.py",
    "congest/network.py",
    "cache.py",
)

#: Names that look like a message-emission sink inside a loop body.
_EMISSION_ATTRS = {"send", "append", "appendleft", "exchange",
                   "exchange_batched", "extend"}

#: Root-name pattern identifying exchange inboxes (CL007).
_INBOX_NAME = re.compile(r"(^|_)(inbox|inboxes)$")


@dataclass
class LintContext:
    """Everything a rule needs about one file."""

    path: str          # normalized, forward-slash, repo-relative-ish
    source: str
    tree: ast.Module

    def in_simulator_core(self) -> bool:
        return any(self.path.endswith(suffix) for suffix in _SIMULATOR_CORE)

    def is_core_algorithm(self) -> bool:
        return "/core/" in f"/{self.path}"

    def clock_exempt(self) -> bool:
        return any(part in self.path for part in _CLOCK_EXEMPT)


Rule = Callable[[LintContext], List[Finding]]

#: rule id -> (one-line description, checker). Populated by ``_rule``.
RULES: Dict[str, "RuleSpec"] = {}


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule: id, human description, checker callable."""

    rule_id: str
    description: str
    check: Rule


def _rule(rule_id: str, description: str):
    def register(fn: Rule) -> Rule:
        RULES[rule_id] = RuleSpec(rule_id, description, fn)
        return fn
    return register


def _finding(ctx: LintContext, node: ast.AST, rule_id: str,
             message: str) -> Finding:
    return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0) + 1,
                   rule=rule_id, message=message)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-trivial expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_attr(node: ast.AST) -> Optional[str]:
    """Attribute name of ``x.attr(...)`` calls, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# CL001 — cross-node state access in node-program code
# ----------------------------------------------------------------------
def _node_program_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Classes that are (or behave like) ``NodeProgram`` subclasses."""
    classes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {(_dotted(b) or "").rsplit(".", 1)[-1]
                      for b in node.bases}
        defines_on_round = any(
            isinstance(item, ast.FunctionDef) and item.name == "on_round"
            for item in node.body)
        if "NodeProgram" in base_names or defines_on_round:
            classes.append(node)
    return classes


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers (shared state)."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_container(value):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
    return names


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "defaultdict",
                                "deque", "Counter"}
    return False


@_rule("CL001", "node-program code reaching across node boundaries")
def check_cross_node_state(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    mutable_globals = _module_mutable_globals(ctx.tree)
    for cls in _node_program_classes(ctx.tree):
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name == "setup":
                continue  # setup legitimately receives the local view
            for node in ast.walk(method):
                if isinstance(node, ast.Name) and node.id in {"net", "network"}:
                    findings.append(_finding(
                        ctx, node, "CL001",
                        f"node program {cls.name}.{method.name} touches the "
                        f"network object '{node.id}'; node code may only use "
                        "its own view, state, and inbox"))
                elif (isinstance(node, ast.Attribute)
                        and node.attr == "state"
                        and not (isinstance(node.value, ast.Name)
                                 and node.value.id == "self")):
                    findings.append(_finding(
                        ctx, node, "CL001",
                        f"node program {cls.name}.{method.name} reads "
                        f"'{_dotted(node) or 'state'}'; per-node state of "
                        "other vertices is not locally observable"))
                elif (isinstance(node, ast.Name)
                        and node.id in mutable_globals
                        and isinstance(node.ctx, (ast.Load, ast.Store))):
                    findings.append(_finding(
                        ctx, node, "CL001",
                        f"node program {cls.name}.{method.name} uses module-"
                        f"level mutable state '{node.id}'; shared globals "
                        "are invisible communication between nodes"))
    return findings


# ----------------------------------------------------------------------
# CL002 — accounting bypass
# ----------------------------------------------------------------------
_COUNTER_ATTRS = {"rounds", "messages", "words", "local_messages",
                  "max_link_load", "steps"}


@_rule("CL002", "traffic or counters bypassing exchange accounting")
def check_accounting_bypass(ctx: LintContext) -> List[Finding]:
    if ctx.in_simulator_core():
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
        if isinstance(target, ast.Attribute):
            dotted = _dotted(target) or target.attr
            if target.attr == "rounds" or (
                    target.attr in _COUNTER_ATTRS
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "stats"):
                findings.append(_finding(
                    ctx, node, "CL002",
                    f"direct write to '{dotted}'; round/traffic counters "
                    "may only move through exchange/charge_rounds"))
        if isinstance(node, ast.Call):
            if _call_attr(node) == "record_step":
                findings.append(_finding(
                    ctx, node, "CL002",
                    "direct NetworkStats.record_step call bypasses the "
                    "exchange step accounting"))
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "BatchedInbox"):
                findings.append(_finding(
                    ctx, node, "CL002",
                    "constructing BatchedInbox delivers payloads without "
                    "exchange word accounting"))
    return findings


# ----------------------------------------------------------------------
# CL003 — nondeterminism hazards
# ----------------------------------------------------------------------
def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _setish_names(func: ast.AST) -> Set[str]:
    """Names assigned from set-typed expressions within ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is not None and _is_setish(value, names):
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return names


def _is_setish(node: ast.expr, known: Set[str] = frozenset()) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {
                "set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "comm_neighbors", "intersection", "union", "difference",
                "symmetric_difference"}:
            return True
    if isinstance(node, ast.Name) and node.id in known:
        return True
    return False


def _emits_messages(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if _call_attr(node) in _EMISSION_ATTRS:
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "schedule"):
                return True
    return False


@_rule("CL003", "nondeterminism hazards in algorithm logic")
def check_nondeterminism(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    numpy_names = _numpy_aliases(ctx.tree)

    for node in ast.walk(ctx.tree):
        # (a) RNG draws not routed through seeded generators.
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            findings.append(_finding(
                ctx, node, "CL003",
                "stdlib 'random' is process-global and unseeded per vertex; "
                "use net.node_rng(v) / numpy Generators derived from the "
                "network seed"))
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted:
                root, _, rest = dotted.partition(".")
                if root == "random" and rest:
                    findings.append(_finding(
                        ctx, node, "CL003",
                        f"'{dotted}' draws from the process-global RNG; "
                        "route randomness through the per-vertex seeded "
                        "generators"))
                elif (root in numpy_names and rest.startswith("random.")):
                    tail = dotted.rsplit(".", 1)[-1]
                    if tail != "default_rng":
                        findings.append(_finding(
                            ctx, node, "CL003",
                            f"'{dotted}' uses numpy's global RNG state; "
                            "draw from an explicit seeded Generator"))
                    elif not node.args and not node.keywords:
                        findings.append(_finding(
                            ctx, node, "CL003",
                            "default_rng() without a seed gives a fresh "
                            "entropy-seeded generator; derive it from the "
                            "network seed instead"))
            # (b) wall clock inside algorithm logic.
            if dotted and not ctx.clock_exempt():
                root, _, tail = dotted.rpartition(".")
                if root in {"time", "datetime", "datetime.datetime"} and \
                        tail in {"time", "perf_counter", "monotonic",
                                 "process_time", "now", "utcnow", "today"}:
                    findings.append(_finding(
                        ctx, node, "CL003",
                        f"wall-clock call '{dotted}' in algorithm logic; "
                        "simulated executions must be time-independent"))

    # (c) iteration over unordered collections where order can reach the
    # message stream (the kernel/scalar bit-parity bug class).
    scopes = list(_functions(ctx.tree)) or [ctx.tree]
    for scope in scopes:
        known = _setish_names(scope)
        for node in ast.walk(scope):
            if isinstance(node, ast.For) and _is_setish(node.iter, known):
                if _emits_messages(node.body):
                    findings.append(_finding(
                        ctx, node, "CL003",
                        "iteration over an unordered set feeds message "
                        "emission; iterate sorted(...) so engine parity "
                        "and replay determinism hold"))
            elif isinstance(node, (ast.DictComp, ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_setish(gen.iter, known):
                        findings.append(_finding(
                            ctx, node, "CL003",
                            "comprehension over an unordered set; if the "
                            "result feeds messages the emission order is "
                            "not deterministic — iterate sorted(...)"))
    return findings


# ----------------------------------------------------------------------
# CL004 — unbounded payloads charged as one word
# ----------------------------------------------------------------------
def _container_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is not None and _is_container(value, names):
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return names


def _is_container(node: ast.expr, known: Set[str] = frozenset()) -> bool:
    """Variable-size container expressions (fixed-arity tuples excluded)."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "sorted"}
    if isinstance(node, ast.Name) and node.id in known:
        return True
    return False


@_rule("CL004", "variable-size payload charged as one word")
def check_unbounded_payload(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for scope in list(_functions(ctx.tree)) or [ctx.tree]:
        known = _container_names(scope)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            if _call_attr(node) == "send":
                has_words = (len(node.args) >= 4
                             or any(kw.arg == "words" for kw in node.keywords))
                if (not has_words and len(node.args) >= 3
                        and _is_container(node.args[2], known)):
                    findings.append(_finding(
                        ctx, node, "CL004",
                        "send() of a variable-size container defaults to "
                        "one word; pass an explicit words= bound so the "
                        "O(log n)-bit accounting stays truthful"))
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Tuple) and len(node.elts) == 2
                and isinstance(node.elts[1], ast.Constant)
                and node.elts[1].value == 1
                and _is_container(node.elts[0])):
            findings.append(_finding(
                ctx, node, "CL004",
                "message tuple charges 1 word for a variable-size "
                "container payload; compute the word count from the "
                "payload size"))
    return findings


# ----------------------------------------------------------------------
# CL005 — traffic outside any phase scope in core algorithms
# ----------------------------------------------------------------------
_TRAFFIC_ATTRS = {"exchange", "exchange_batched", "charge_rounds"}


@_rule("CL005", "core-algorithm traffic outside any net.phase(...) scope")
def check_phase_contract(ctx: LintContext) -> List[Finding]:
    if not ctx.is_core_algorithm():
        return []
    has_phase = any(_call_attr(node) == "phase"
                    for node in ast.walk(ctx.tree))
    if has_phase:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        attr = _call_attr(node)
        if attr in _TRAFFIC_ATTRS:
            findings.append(_finding(
                ctx, node, "CL005",
                f"'{attr}' in a core algorithm module that never opens a "
                "net.phase(...) scope; rounds land in the (unscoped) "
                "bucket and break per-phase attribution"))
    return findings


# ----------------------------------------------------------------------
# CL006 — exception swallowing
# ----------------------------------------------------------------------
@_rule("CL006", "bare or swallowing exception handlers")
def check_bare_except(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(_finding(
                ctx, node, "CL006",
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides simulator invariant violations; name the exception"))
        elif (isinstance(node.type, ast.Name)
                and node.type.id in {"Exception", "BaseException"}
                and all(isinstance(s, ast.Pass) for s in node.body)):
            findings.append(_finding(
                ctx, node, "CL006",
                f"'except {node.type.id}: pass' silently swallows "
                "failures, including accounting violations"))
    return findings


# ----------------------------------------------------------------------
# CL007 — mutation of consumed inboxes
# ----------------------------------------------------------------------
def _inbox_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name) and _INBOX_NAME.search(node.id):
        return node.id
    return None


@_rule("CL007", "mutation of a consumed exchange inbox")
def check_inbox_mutation(ctx: LintContext) -> List[Finding]:
    if ctx.in_simulator_core():
        return []  # the simulator legitimately *builds* inboxes
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                root = _inbox_root(target)
                if root:
                    findings.append(_finding(
                        ctx, node, "CL007",
                        f"del on inbox '{root}'; delivered inboxes are "
                        "read-only records of the step's traffic"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript):
                    root = _inbox_root(target)
                    if root:
                        findings.append(_finding(
                            ctx, node, "CL007",
                            f"assignment into inbox '{root}'; delivered "
                            "inboxes are read-only"))
        elif isinstance(node, ast.Call):
            attr = _call_attr(node)
            if attr in {"pop", "popitem", "clear", "setdefault", "update"}:
                root = _inbox_root(node.func.value)
                if root:
                    findings.append(_finding(
                        ctx, node, "CL007",
                        f"'{attr}' mutates inbox '{root}'; delivered "
                        "inboxes are read-only"))
    return findings


# ----------------------------------------------------------------------
# CL008 — engine-gate misuse
# ----------------------------------------------------------------------
_GATE_NAMES = {"fast_path", "kernel_path", "batching_supported",
               "kernels_enabled", "batching_enabled"}


@_rule("CL008", "exchange_batched without an engine gate or fallback")
def check_engine_gate(ctx: LintContext) -> List[Finding]:
    if ctx.in_simulator_core():
        return []
    findings: List[Finding] = []
    for func in _functions(ctx.tree):
        batched_calls = []
        gated = False
        has_dict_fallback = False
        for node in ast.walk(func):
            attr = _call_attr(node)
            if attr == "exchange_batched":
                batched_calls.append(node)
            elif attr == "exchange" or attr == "to_outboxes":
                has_dict_fallback = True
            elif attr in _GATE_NAMES:
                gated = True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _GATE_NAMES):
                gated = True
        if batched_calls and not gated and not has_dict_fallback:
            findings.append(_finding(
                ctx, batched_calls[0], "CL008",
                f"function '{func.name}' calls exchange_batched without "
                "consulting fast_path()/kernel_path() or keeping a dict-"
                "exchange fallback; faulty/traced/reliable networks would "
                "silently bypass their hooks"))
    return findings


def all_rules() -> List[RuleSpec]:
    """Registered rules in rule-id order."""
    return [RULES[rid] for rid in sorted(RULES)]
