"""Finding model and inline-suppression handling for congestlint.

A :class:`Finding` is one rule violation at a source location. Suppressions
are source comments understood by the runner:

* ``# congestlint: disable=CL003`` on the offending line silences the named
  rule(s) (comma-separated) for that line only;
* ``# congestlint: disable=all`` silences every rule on that line;
* ``# congestlint: disable-file=CL005`` anywhere in the first ten lines of
  a file silences the rule(s) for the whole file.

Suppression never deletes information silently: the runner counts
suppressed findings and reports the total, so a rule muffled everywhere
still shows up in ``repro lint``'s summary line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

#: Matches one inline suppression directive inside a comment.
_DIRECTIVE = re.compile(
    r"#\s*congestlint:\s*(disable|disable-file)\s*=\s*"
    r"(all|CL\d{3}(?:\s*,\s*CL\d{3})*)",
    re.IGNORECASE,
)

#: Sentinel rule set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"all"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line textual form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (stable key order for tooling)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching.

        Line numbers are deliberately excluded so unrelated edits above a
        legacy finding do not turn it into a "new" one.
        """
        return (self.path, self.rule, self.message)


class Suppressions:
    """Per-file suppression table parsed from the raw source lines."""

    def __init__(self, source: str):
        self.line_rules: Dict[int, FrozenSet[str]] = {}
        self.file_rules: FrozenSet[str] = frozenset()
        file_wide: set = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            kind = match.group(1).lower()
            spec = match.group(2)
            rules = (ALL_RULES if spec.lower() == "all" else frozenset(
                part.strip().upper() for part in spec.split(",")))
            if kind == "disable-file" and lineno <= 10:
                file_wide |= rules
            elif kind == "disable":
                self.line_rules[lineno] = self.line_rules.get(
                    lineno, frozenset()) | rules
        self.file_rules = frozenset(file_wide)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is muted by a directive."""
        for rules in (self.file_rules,
                      self.line_rules.get(finding.line, frozenset())):
            if "all" in rules or finding.rule in rules:
                return True
        return False


def split_suppressed(
    findings: Sequence[Finding], suppressions: Suppressions
) -> Tuple[List[Finding], List[Finding]]:
    """Partition ``findings`` into (active, suppressed)."""
    active: List[Finding] = []
    muted: List[Finding] = []
    for f in findings:
        (muted if suppressions.is_suppressed(f) else active).append(f)
    return active, muted
