"""File discovery, rule execution, and report formatting for congestlint.

The runner walks the requested paths, parses each Python file once, runs
every registered rule over the module AST, filters inline suppressions,
and (optionally) subtracts the committed baseline. Output is plain text
(``path:line:col: CLxxx message``) or JSON for tooling.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Suppressions, split_suppressed
from repro.lint.rules import LintContext, all_rules

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def _normalize(path: str, root: Optional[str]) -> str:
    """Repo-relative forward-slash path for stable reports/baselines."""
    if root:
        try:
            path = os.path.relpath(path, root)
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def discover(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files kept as-is), sorted."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"error: {e}" for e in self.errors)
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "errors": list(self.errors),
            "files_checked": self.files_checked,
        }, indent=2, sort_keys=True)


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[str]] = None
                ) -> Tuple[List[Finding], List[Finding]]:
    """Lint one source string; returns (active, suppressed) findings.

    ``rules`` optionally restricts the run to the given rule ids.
    """
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, source=source, tree=tree)
    wanted = set(rules) if rules is not None else None
    found: List[Finding] = []
    for spec in all_rules():
        if wanted is not None and spec.rule_id not in wanted:
            continue
        found.extend(spec.check(ctx))
    found.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return split_suppressed(found, Suppressions(source))


def run_lint(paths: Sequence[str], root: Optional[str] = None,
             rules: Optional[Iterable[str]] = None) -> LintReport:
    """Lint every Python file under ``paths``."""
    report = LintReport()
    for filename in discover(paths):
        rel = _normalize(filename, root)
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.errors.append(f"{rel}: unreadable ({exc})")
            continue
        try:
            active, muted = lint_source(source, path=rel, rules=rules)
        except SyntaxError as exc:
            report.errors.append(f"{rel}: syntax error ({exc.msg} at "
                                 f"line {exc.lineno})")
            continue
        report.files_checked += 1
        report.findings.extend(active)
        report.suppressed.extend(muted)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
