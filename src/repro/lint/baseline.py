"""Baseline handling: legacy findings that do not fail the CI gate.

The baseline file (``.congestlint.json`` at the repo root) records
accepted findings keyed by ``(path, rule, message)`` — line numbers are
excluded so edits elsewhere in a file don't resurrect old findings.
``repro lint --fail-on-new`` fails only on findings absent from the
baseline, and reports baseline entries that no longer occur so the file
can be shrunk over time rather than rot.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_FILENAME = ".congestlint.json"

_Key = Tuple[str, str, str]


def load_baseline(path: str) -> Dict[_Key, int]:
    """Baseline keys -> accepted count. Missing file = empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    counts: Dict[_Key, int] = {}
    for entry in data.get("findings", []):
        key = (entry["path"], entry["rule"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new accepted baseline."""
    counts: Dict[_Key, int] = {}
    for f in findings:
        counts[f.baseline_key()] = counts.get(f.baseline_key(), 0) + 1
    entries = [
        {"path": p, "rule": r, "message": m, "count": c}
        for (p, r, m), c in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "findings": entries}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def diff_baseline(
    findings: Sequence[Finding], baseline: Dict[_Key, int]
) -> Tuple[List[Finding], List[_Key]]:
    """Split findings into (new, stale-baseline-keys).

    A finding is *new* if its key occurs more times than the baseline
    accepts. A baseline key is *stale* if the current run produced fewer
    occurrences than recorded (the code improved; the entry can go).
    """
    seen: Dict[_Key, int] = {}
    new: List[Finding] = []
    for f in findings:
        key = f.baseline_key()
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > baseline.get(key, 0):
            new.append(f)
    stale = [key for key, count in sorted(baseline.items())
             if seen.get(key, 0) < count]
    return new, stale
