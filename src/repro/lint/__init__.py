"""congestlint — static conformance analysis for the CONGEST simulator.

Public surface:

* :func:`run_lint` / :func:`lint_source` — execute the rule set;
* :class:`Finding`, :class:`LintReport` — result model;
* :data:`RULES` / :func:`all_rules` — the registered rule specs;
* baseline helpers for the ``--fail-on-new`` CI gate.

See ``docs/static_analysis.md`` for the rule catalogue.
"""

from repro.lint.baseline import (
    BASELINE_FILENAME,
    diff_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.findings import Finding, Suppressions, split_suppressed
from repro.lint.rules import RULES, LintContext, RuleSpec, all_rules
from repro.lint.runner import LintReport, discover, lint_source, run_lint

__all__ = [
    "BASELINE_FILENAME",
    "Finding",
    "LintContext",
    "LintReport",
    "RULES",
    "RuleSpec",
    "Suppressions",
    "all_rules",
    "diff_baseline",
    "discover",
    "lint_source",
    "load_baseline",
    "run_lint",
    "save_baseline",
    "split_suppressed",
]
