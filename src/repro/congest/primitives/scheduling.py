"""Random-delay scheduling of many path transmissions ([24, 36]).

The classical packet-routing result: given jobs j, each a message to be
forwarded along a fixed path, starting every job at an independently random
delay in [1, rho] (rho ~ congestion) and then running synchronously
completes all jobs in O(congestion + dilation * log n) rounds w.h.p. —
where *congestion* is the maximum number of paths through one edge and
*dilation* the maximum path length. The paper uses this machinery for
Algorithm 1 line 9 and the phase argument of Algorithm 3; this module
provides it as a standalone, measurable primitive.

:func:`route_jobs` executes the schedule on the simulator (each edge
transmits at most ``bandwidth`` messages per round; excess is FIFO-queued,
which only helps); :func:`congestion_dilation` computes the two parameters
so tests can verify the bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class Job:
    """One message to deliver along a fixed path of adjacent vertices."""

    path: Tuple[int, ...]
    payload: object = None

    def __post_init__(self):
        if len(self.path) < 2:
            raise GraphError("a job path needs at least two vertices")


def congestion_dilation(jobs: Sequence[Job]) -> Tuple[int, int]:
    """(max paths per directed edge, max path length in edges)."""
    per_edge: Dict[Tuple[int, int], int] = {}
    dilation = 0
    for job in jobs:
        dilation = max(dilation, len(job.path) - 1)
        for a, b in zip(job.path, job.path[1:]):
            per_edge[(a, b)] = per_edge.get((a, b), 0) + 1
    return (max(per_edge.values(), default=0), dilation)


def route_jobs(
    net: CongestNetwork,
    jobs: Sequence[Job],
    rho: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> List[int]:
    """Deliver every job along its path with random start delays.

    Returns ``arrival[j]``, the round at which job j's message reached its
    final vertex. Paths must follow communication links. The per-edge FIFO
    discharge (``bandwidth`` messages per round) makes the execution valid
    even when the random delays collide — collisions only queue, never drop.
    """
    for job in jobs:
        for a, b in zip(job.path, job.path[1:]):
            if b not in net.comm_neighbors(a):
                raise GraphError(f"job path uses non-edge ({a}, {b})")
    congestion, dilation = congestion_dilation(jobs)
    if rho is None:
        rho = max(1, congestion)
    delays = [int(net.rng.integers(1, rho + 1)) for _ in jobs]
    # queues[v][u]: FIFO of (job index, hop index) waiting to cross v -> u.
    queues: Dict[int, Dict[int, deque]] = {}

    def enqueue(j: int, hop: int) -> None:
        a, b = jobs[j].path[hop], jobs[j].path[hop + 1]
        queues.setdefault(a, {}).setdefault(b, deque()).append((j, hop))

    arrival = [-1] * len(jobs)
    cap = max_rounds if max_rounds is not None else (
        4 * (congestion + dilation + rho) * max(1, net.bandwidth) + 64)
    started = [False] * len(jobs)
    for r in range(1, cap + 1):
        for j, d in enumerate(delays):
            if r == d and not started[j]:
                started[j] = True
                enqueue(j, 0)
        outboxes = {}
        for v, by_target in queues.items():
            out = {}
            for u, q in by_target.items():
                batch = [q.popleft() for _ in range(min(net.bandwidth, len(q)))]
                if batch:
                    out[u] = [((j, hop), 1) for j, hop in batch]
            if out:
                outboxes[v] = out
        if not outboxes:
            if all(started) and all(a >= 0 for a in arrival):
                break
            net.charge_rounds(1)
            continue
        inboxes = net.exchange(outboxes)
        for v, by_sender in inboxes.items():
            for _sender, payloads in by_sender.items():
                for j, hop in payloads:
                    if hop + 2 == len(jobs[j].path):
                        arrival[j] = net.rounds
                    else:
                        enqueue(j, hop + 1)
    else:
        raise RuntimeError(f"routing did not finish within {cap} rounds")
    return arrival
