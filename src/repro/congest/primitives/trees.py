"""Pipelined value propagation down many overlapping BFS trees.

Used by Algorithm 1, line 9: every sampled vertex ``s`` must push k values
down its h-hop BFS tree. Trees overlap, so edges carry traffic for several
trees; per-edge FIFO pipelining bounded by the link bandwidth yields the
O(depth + per-edge congestion) behaviour that the paper obtains with random
scheduling [24, 36] — here the cost is *measured* by the simulator rather
than bounded analytically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork


def propagate_down_trees(
    net: CongestNetwork,
    parent: Sequence[Dict[int, int]],
    root_values: Dict[int, Sequence[Any]],
    max_steps: Optional[int] = None,
) -> List[List[Tuple[int, Any]]]:
    """Deliver ``root_values[s]`` to every vertex in the tree rooted at ``s``.

    ``parent[v][s]`` is v's predecessor in s's tree (absent if v is not in
    the tree). Returns ``delivered[v]`` = list of ``(s, payload)`` received
    by v (its own root values included). Each payload counts one word.
    """
    n = net.n
    # Round 1..c: child registration, so nodes learn per-tree children.
    # Per edge the load is the number of trees routing through it; the
    # exchange call charges ceil(load / bandwidth) rounds.
    use_batch = fast_path(net)
    children: List[Dict[int, List[int]]] = [dict() for _ in range(n)]
    # Registration and the pipelined loop below both emit sender-major
    # (outer loop over v), so the ungrouped columnar inbox lists messages in
    # exactly the order the dict path's grouped inboxes flatten to —
    # delivered lists and FIFO queue contents stay bit-identical.
    reg = BatchedOutbox()
    for v in range(n):
        for s, p in parent[v].items():
            reg.send(v, p, (s, v))
    if reg:
        if use_batch:
            reg_in = net.exchange_batched(reg, grouped=False)
            reg_msgs = zip(reg_in.dst, reg_in.payloads)
        else:
            reg_msgs = (
                (p, payload)
                for p, by_child in net.exchange(reg.to_outboxes()).items()
                for payloads in by_child.values()
                for payload in payloads
            )
        for p, (s, child) in reg_msgs:
            children[p].setdefault(s, []).append(child)

    delivered: List[List[Tuple[int, Any]]] = [[] for _ in range(n)]
    # queues[v][u]: FIFO of (s, payload) waiting to cross edge v -> u.
    queues: List[Dict[int, deque]] = [dict() for _ in range(n)]

    # Vertices with at least one non-empty queue; emission iterates it in
    # ascending order, matching the full range(n) scan message-for-message.
    active: set = set()

    # Seeding and the delivery loop below share one inlined enqueue: the
    # received (s, payload) pair is appended as-is to every child queue
    # (per-tree fan-out), creating no new tuples on the hot path.
    total = 0
    for s, payloads in root_values.items():
        cs = children[s].get(s)
        qs = queues[s]
        for payload in payloads:
            pair = (s, payload)
            delivered[s].append(pair)
            if cs:
                for c in cs:
                    q = qs.get(c)
                    if q is None:
                        q = qs[c] = deque()
                    q.append(pair)
                active.add(s)
            total += 1
    bandwidth = net.bandwidth
    cap = max_steps if max_steps is not None else 4 * (total * max(1, len(root_values)) + n) + 16
    steps = 0
    while steps < cap:
        wave = BatchedOutbox()
        wsrc, wdst, wpay = wave.src, wave.dst, wave.payloads
        if bandwidth == 1:
            # Unit bandwidth (the common case) moves exactly one item per
            # queue: straight-line code instead of the len()/range() dance.
            for v in sorted(active):
                pending = False
                for u, q in queues[v].items():
                    if q:
                        wsrc.append(v)
                        wdst.append(u)
                        wpay.append(q.popleft())
                        if q:
                            pending = True
                if not pending:
                    active.discard(v)
        else:
            for v in sorted(active):
                pending = False
                for u, q in queues[v].items():
                    lq = len(q)
                    if not lq:
                        continue
                    for _ in range(bandwidth if bandwidth < lq else lq):
                        wsrc.append(v)
                        wdst.append(u)
                        wpay.append(q.popleft())
                    if lq > bandwidth:
                        pending = True
                if not pending:
                    active.discard(v)
        if not wave:
            break
        if use_batch:
            inbox = net.exchange_batched(wave, grouped=False)
            msgs = zip(inbox.dst, inbox.payloads)
        else:
            msgs = (
                (v, payload)
                for v, by_sender in net.exchange(wave.to_outboxes()).items()
                for payloads in by_sender.values()
                for payload in payloads
            )
        steps += 1
        for v, pair in msgs:
            delivered[v].append(pair)
            cs = children[v].get(pair[0])
            if cs:
                qs = queues[v]
                for c in cs:
                    q = qs.get(c)
                    if q is None:
                        q = qs[c] = deque()
                    q.append(pair)
                active.add(v)
    else:
        raise RuntimeError(f"tree propagation did not finish within {cap} steps")
    for v in range(n):
        net.state[v]["tree_values"] = list(delivered[v])
    return delivered
