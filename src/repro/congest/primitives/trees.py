"""Pipelined value propagation down many overlapping BFS trees.

Used by Algorithm 1, line 9: every sampled vertex ``s`` must push k values
down its h-hop BFS tree. Trees overlap, so edges carry traffic for several
trees; per-edge FIFO pipelining bounded by the link bandwidth yields the
O(depth + per-edge congestion) behaviour that the paper obtains with random
scheduling [24, 36] — here the cost is *measured* by the simulator rather
than bounded analytically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork


def propagate_down_trees(
    net: CongestNetwork,
    parent: Sequence[Dict[int, int]],
    root_values: Dict[int, Sequence[Any]],
    max_steps: Optional[int] = None,
) -> List[List[Tuple[int, Any]]]:
    """Deliver ``root_values[s]`` to every vertex in the tree rooted at ``s``.

    ``parent[v][s]`` is v's predecessor in s's tree (absent if v is not in
    the tree). Returns ``delivered[v]`` = list of ``(s, payload)`` received
    by v (its own root values included). Each payload counts one word.
    """
    n = net.n
    # Round 1..c: child registration, so nodes learn per-tree children.
    # Per edge the load is the number of trees routing through it; the
    # exchange call charges ceil(load / bandwidth) rounds.
    children: List[Dict[int, List[int]]] = [dict() for _ in range(n)]
    reg_outboxes: Dict[int, Dict[int, list]] = {}
    for v in range(n):
        per_parent: Dict[int, list] = {}
        for s, p in parent[v].items():
            per_parent.setdefault(p, []).append(((s, v), 1))
        if per_parent:
            reg_outboxes[v] = per_parent
    if reg_outboxes:
        reg_in = net.exchange(reg_outboxes)
        for p, by_child in reg_in.items():
            for c, payloads in by_child.items():
                for s, child in payloads:
                    children[p].setdefault(s, []).append(child)

    delivered: List[List[Tuple[int, Any]]] = [[] for _ in range(n)]
    # queues[v][u]: FIFO of (s, payload) waiting to cross edge v -> u.
    queues: List[Dict[int, deque]] = [dict() for _ in range(n)]

    def enqueue(v: int, s: int, payload: Any) -> None:
        for c in children[v].get(s, ()):
            queues[v].setdefault(c, deque()).append((s, payload))

    total = 0
    for s, payloads in root_values.items():
        for payload in payloads:
            delivered[s].append((s, payload))
            enqueue(s, s, payload)
            total += 1
    bandwidth = net.bandwidth
    cap = max_steps if max_steps is not None else 4 * (total * max(1, len(root_values)) + n) + 16
    steps = 0
    while steps < cap:
        outboxes = {}
        for v in range(n):
            out = {}
            for u, q in queues[v].items():
                if not q:
                    continue
                batch = [q.popleft() for _ in range(min(bandwidth, len(q)))]
                out[u] = [(item, 1) for item in batch]
            if out:
                outboxes[v] = out
        if not outboxes:
            break
        inboxes = net.exchange(outboxes)
        steps += 1
        for v, by_sender in inboxes.items():
            for _sender, payloads in by_sender.items():
                for s, payload in payloads:
                    delivered[v].append((s, payload))
                    enqueue(v, s, payload)
    else:
        raise RuntimeError(f"tree propagation did not finish within {cap} steps")
    for v in range(n):
        net.state[v]["tree_values"] = list(delivered[v])
    return delivered
