"""Pipelined k-source BFS in O(h + k) rounds (source detection style [37]).

Each node maintains its currently known (distance, source) pairs and, in
every round, forwards the lexicographically smallest pair it has not yet
sent. The Lenzen–Patt-Shamir–Peleg pipelining argument gives exact h-hop
distances from all k sources after h + k rounds with one O(log n)-bit
message per edge per round. If a node later improves a pair it already
forwarded, the pair is re-queued (this preserves correctness; the classical
analysis shows it does not occur for unweighted BFS with smallest-first
forwarding, and tests assert the h + k + O(1) round bound).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.checkpoint import CheckpointError
from repro.congest.kernels import kernels_enabled, run_wave_kernel
from repro.congest.network import CongestNetwork, RoundBudgetExceeded
from repro.graphs.graph import INF
from repro.obs import registry as obs
from repro.resilience.degrade import degrade_enabled, record_degradation


def multi_source_bfs(
    net: CongestNetwork,
    sources: Sequence[int],
    h: Optional[int] = None,
    reverse: bool = False,
    record_parents: bool = False,
    max_steps: Optional[int] = None,
    checkpoint=None,
) -> Tuple[List[Dict[int, int]], Optional[List[Dict[int, int]]]]:
    """Exact h-hop BFS from every source in ``sources`` simultaneously.

    Returns ``(dist, parent)`` where ``dist[v]`` maps source -> hop distance
    (only sources within ``h`` hops appear) and, when ``record_parents``,
    ``parent[v]`` maps source -> BFS-tree predecessor of ``v``.

    ``reverse=True`` runs the wave along in-edges, computing ``d(v, s)``.
    Attributed to the ``"multi-bfs"`` phase bucket under metrics.

    ``checkpoint`` (a :class:`repro.congest.checkpoint.CheckpointManager`)
    snapshots the pipelining loop at the manager's round cadence — on
    whichever engine is active (stage ``"mbfs/batch"``, ``"mbfs/dict"``, or
    the kernel's ``"wave-kernel"``) — and resumes it bit-identically. With
    degradation enabled (:mod:`repro.resilience.degrade`), exhausting the
    round budget mid-sweep returns the distances discovered so far instead
    of raising.
    """
    obs.counter("primitives.multi_bfs.calls").inc()
    obs.histogram("primitives.multi_bfs.sources").observe(len(sources))
    with net.phase("multi-bfs"):
        return _multi_source_bfs_impl(
            net, sources, h, reverse, record_parents, max_steps, checkpoint)


def _multi_source_bfs_impl(
    net: CongestNetwork,
    sources: Sequence[int],
    h: Optional[int],
    reverse: bool,
    record_parents: bool,
    max_steps: Optional[int],
    checkpoint=None,
) -> Tuple[List[Dict[int, int]], Optional[List[Dict[int, int]]]]:
    g = net.graph
    n = g.n
    k = len(sources)
    if k == 0:
        return [dict() for _ in range(n)], ([dict() for _ in range(n)] if record_parents else None)
    limit = h if h is not None else n
    neigh = g.in_neighbors if reverse else g.out_neighbors
    known: List[Dict[int, int]] = [dict() for _ in range(n)]
    parent: List[Dict[int, int]] = [dict() for _ in range(n)]
    # Per-node send queue of (dist, source); smallest-first.
    pq: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for s in sources:
        known[s][s] = 0
        heapq.heappush(pq[s], (0, s))
    budget = max_steps if max_steps is not None else limit + k + 8
    use_batch = fast_path(net)
    if use_batch and kernels_enabled():
        result = run_wave_kernel(
            net, sources, cap=budget, unit_weight=True, hop_limit=limit,
            reverse=reverse,
            timeout=(f"multi_source_bfs did not quiesce within {budget} "
                     f"steps (k={k}, h={limit})"),
            checkpoint=checkpoint,
        )
        if result is not None:
            known, parent = result
            key = "mbfs_rev" if reverse else "mbfs"
            for v in range(n):
                net.state[v][key] = dict(known[v])
            return known, (parent if record_parents else None)
    steps = 0
    stage = "mbfs/batch" if use_batch else "mbfs/dict"
    config = {"sources": [int(s) for s in sources], "limit": limit,
              "reverse": reverse}
    resumed = checkpoint.take_resume(stage) if checkpoint is not None else None
    if resumed is not None:
        if resumed["config"] != config:
            raise CheckpointError(
                f"checkpointed {stage} run had config {resumed['config']}, "
                f"resume asked for {config}")
        steps = resumed["steps"]
        known = resumed["known"]
        parent = resumed["parent"]
        pq = resumed["pq"]
    # One payload tuple per (source, level) instead of one per selected
    # node: every node forwarding the pair appends the same interned tuple.
    interned: Dict[Tuple[int, int], Tuple[int, int]] = {}
    heappop, heappush = heapq.heappop, heapq.heappush
    while steps < budget:
        if use_batch:
            # Fast path: same pipelining, columnar emission + consumption
            # (see repro.congest.batch; per-vertex message order matches
            # the dict path, so distances and parents are bit-identical).
            batch = BatchedOutbox()
            src, dst, payloads = batch.src, batch.dst, batch.payloads
            for u in range(n):
                entry = None
                q = pq[u]
                while q:
                    d, s = heappop(q)
                    if known[u].get(s) != d:
                        continue  # superseded by a better distance
                    if d >= limit:
                        continue  # hop budget exhausted; do not extend
                    entry = (d, s)
                    break
                if entry is None:
                    continue
                d, s = entry
                pair = (s, d + 1)
                pair = interned.setdefault(pair, pair)
                for v in neigh(u):
                    src.append(u)
                    dst.append(v)
                    payloads.append(pair)
            if not batch:
                break
            try:
                inbox = net.exchange_batched(batch, grouped=False)
            except RoundBudgetExceeded as exc:
                if degrade_enabled():
                    record_degradation(net, "multi-bfs", str(exc))
                    break
                raise
            steps += 1
            for sender, v, (s, d) in zip(inbox.src, inbox.dst, inbox.payloads):
                known_v = known[v]
                if known_v.get(s, INF) > d:
                    known_v[s] = d
                    parent[v][s] = sender
                    heappush(pq[v], (d, s))
            if checkpoint is not None:
                checkpoint.maybe(net, stage, lambda: {
                    "steps": steps, "known": known, "parent": parent,
                    "pq": pq, "config": config})
            continue
        outboxes = {}
        for u in range(n):
            # Discard stale or non-forwardable entries locally (free), then
            # forward the smallest fresh pair, if any, this round.
            entry = None
            while pq[u]:
                d, s = heapq.heappop(pq[u])
                if known[u].get(s) != d:
                    continue  # superseded by a better distance
                if d >= limit:
                    continue  # hop budget exhausted; do not extend
                entry = (d, s)
                break
            if entry is None:
                continue
            d, s = entry
            pair = (s, d + 1)
            pair = interned.setdefault(pair, pair)
            # A node cannot know its neighbors' knowledge; it broadcasts the
            # pair on every (out-)edge, one O(log n)-bit message per edge.
            targets = {v: [(pair, 1)] for v in neigh(u)}
            if targets:
                outboxes[u] = targets
        if not outboxes:
            break
        try:
            inboxes = net.exchange(outboxes)
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "multi-bfs", str(exc))
                break
            raise
        steps += 1
        for v, by_sender in inboxes.items():
            for sender, payloads in by_sender.items():
                for s, d in payloads:
                    if known[v].get(s, INF) > d:
                        known[v][s] = d
                        parent[v][s] = sender
                        heapq.heappush(pq[v], (d, s))
        if checkpoint is not None:
            checkpoint.maybe(net, stage, lambda: {
                "steps": steps, "known": known, "parent": parent,
                "pq": pq, "config": config})
    else:
        raise RuntimeError(
            f"multi_source_bfs did not quiesce within {budget} steps "
            f"(k={k}, h={limit})"
        )
    key = "mbfs_rev" if reverse else "mbfs"
    for v in range(n):
        net.state[v][key] = dict(known[v])
    return known, (parent if record_parents else None)
