"""Verified CONGEST primitives.

Every primitive executes real synchronous message rounds on a
:class:`~repro.congest.network.CongestNetwork`; round costs are *measured*
by the simulator, not formula-charged. The classical bounds they are tested
against (paper §1.1 and [37, 43]):

==============================  =======================================
Primitive                       Rounds
==============================  =======================================
``build_bfs_tree``              O(D)
``convergecast``                O(D)
``broadcast``                   O(M + D) for M values
``bfs`` (single source)         O(min(h, ecc))
``multi_source_bfs``            O(h + k) for k sources, h hops
``multi_source_wave``           O(budget + k)  (stretched-graph BFS)
``source_detection``            O(budget + sigma)
``propagate_down_trees``        O(depth + per-edge congestion)
``elect_leader``                O(D)
``aggregate_top_k``             O(k + D)
``route_jobs``                  O(congestion + dilation log n) [24, 36]
==============================  =======================================

The ``reliable_*`` variants (and the :class:`ReliableNetwork` adapter) run
the same primitives over faulty links via ack-and-retransmit rounds; under
message-loss probability p their expected cost is the fault-free cost
times O(1 / (1 - p)^2). See :mod:`repro.congest.primitives.reliable`.
"""

from repro.congest.primitives.flood import BfsTree, build_bfs_tree
from repro.congest.primitives.convergecast import (
    converge_max,
    converge_min,
    converge_sum,
    convergecast,
)
from repro.congest.primitives.broadcast import broadcast
from repro.congest.primitives.bfs import bfs
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.congest.primitives.waves import multi_source_wave, source_detection
from repro.congest.primitives.trees import propagate_down_trees
from repro.congest.primitives.aggregation import aggregate_top_k, elect_leader
from repro.congest.primitives.scheduling import Job, congestion_dilation, route_jobs
from repro.congest.primitives.reliable import (
    DEFAULT_RETRY_BUDGET,
    ReliableNetwork,
    RetryBudgetExceeded,
    reliable_bfs,
    reliable_bfs_tree,
    reliable_broadcast,
    reliable_convergecast,
    reliable_exchange,
)

__all__ = [
    "BfsTree",
    "build_bfs_tree",
    "convergecast",
    "converge_min",
    "converge_max",
    "converge_sum",
    "broadcast",
    "bfs",
    "multi_source_bfs",
    "multi_source_wave",
    "source_detection",
    "propagate_down_trees",
    "elect_leader",
    "aggregate_top_k",
    "Job",
    "congestion_dilation",
    "route_jobs",
    "DEFAULT_RETRY_BUDGET",
    "ReliableNetwork",
    "RetryBudgetExceeded",
    "reliable_bfs",
    "reliable_bfs_tree",
    "reliable_broadcast",
    "reliable_convergecast",
    "reliable_exchange",
]
