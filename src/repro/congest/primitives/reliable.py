"""Ack-and-retransmit machinery: reliable rounds over faulty links.

:func:`reliable_exchange` turns one logical synchronous step into a
stop-and-wait protocol: data messages carry sequence ids, receivers ack
what they can verify, and senders retransmit unacked messages until
everything is through or the retry budget is exhausted (then
:class:`RetryBudgetExceeded` — loud failure, never silent loss). Receivers
deduplicate by id, so duplicated deliveries and retransmissions after a
lost ack are harmless; :class:`~repro.congest.faults.Corrupted` payloads
model failed checksums and are treated as undelivered.

:class:`ReliableNetwork` packages the protocol as a network adapter: it
quacks like a :class:`~repro.congest.network.CongestNetwork` but its
``exchange`` is reliable, so *any* orchestrated algorithm in the
repository — the primitives, the exact MWC pipeline, the approximation
algorithms — runs unchanged over faulty links at the cost of extra
measured rounds. The ``reliable_*`` functions below are the pre-wrapped
primitives named in the classical toolbox.

Cost model: on fault-free links a reliable step costs exactly 2 exchange
steps (data + ack). Under message-loss probability ``p`` the expected
number of attempts per message is ``1 / (1 - p)^2`` (data *and* ack must
survive), so the expected round-overhead factor of a whole algorithm is
``O(1 / (1 - p)^2)`` — measured empirically by
``benchmarks/bench_fault_overhead.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.congest.faults import Corrupted
from repro.congest.network import (
    CongestNetwork,
    Inbox,
    Outbox,
    RoundBudgetExceeded,
)
from repro.congest.primitives.bfs import bfs
from repro.congest.primitives.broadcast import broadcast
from repro.congest.primitives.convergecast import convergecast
from repro.congest.primitives.flood import BfsTree, build_bfs_tree

#: Default maximum data+ack attempts per logical step. At the chaos-suite
#: ceiling p = 0.3 a single attempt succeeds w.p. (0.7)^2 = 0.49, so 50
#: attempts leave a per-message failure probability below 2^-48.
DEFAULT_RETRY_BUDGET = 50

_DATA = "rel/data"
_ACK = "rel/ack"


class RetryBudgetExceeded(RoundBudgetExceeded):
    """A reliable step could not deliver everything within its retry budget.

    Raised instead of hanging (or silently losing traffic) when links are
    worse than the budget assumes — e.g. a permanently crashed receiver or
    a permanent link outage that retransmission cannot mask.
    """


def reliable_exchange(
    net: CongestNetwork,
    outboxes: Dict[int, Outbox],
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> Dict[int, Inbox]:
    """One *reliable* logical step: deliver every message of ``outboxes``.

    Runs the stop-and-wait protocol over ``net.exchange`` (typically a
    :class:`~repro.congest.faults.FaultyNetwork`). Returns inboxes exactly
    as a fault-free ``exchange`` would: per (sender, receiver), payloads in
    original send order, duplicates removed, corruption filtered out.

    Raises :class:`RetryBudgetExceeded` after ``retry_budget`` failed
    attempts — per logical step, an attempt being one data step plus one
    ack step.
    """
    if retry_budget < 1:
        raise ValueError(f"retry budget must be >= 1, got {retry_budget}")
    net.validate_outboxes(outboxes)
    # (sender, receiver, index) ids make retransmissions and duplicates
    # idempotent at the receiver.
    pending: Dict[Tuple[int, int, int], Tuple[Any, int]] = {}
    for u, outbox in outboxes.items():
        for v, msgs in outbox.items():
            for i, (payload, w) in enumerate(msgs):
                pending[(u, v, i)] = (payload, w)
    delivered: Dict[Tuple[int, int, int], Any] = {}
    for _attempt in range(retry_budget):
        if not pending:
            break
        # Data step: retransmit everything not yet acked.
        data_out: Dict[int, Outbox] = {}
        for (u, v, i), (payload, w) in pending.items():
            data_out.setdefault(u, {}).setdefault(v, []).append(
                ((_DATA, (u, v, i), payload), w)
            )
        data_in = net.exchange(data_out)
        # Ack step: receivers confirm every intact message (including ones
        # they already had — the previous ack may have been the loss).
        ack_out: Dict[int, Outbox] = {}
        for v, by_sender in data_in.items():
            for u, payloads in by_sender.items():
                for wire in payloads:
                    if isinstance(wire, Corrupted):
                        continue  # failed checksum: pretend it never arrived
                    _tag, msg_id, payload = wire
                    if msg_id not in delivered:
                        delivered[msg_id] = payload
                    ack_out.setdefault(v, {}).setdefault(u, []).append(
                        ((_ACK, msg_id), 1)
                    )
        ack_in = net.exchange(ack_out) if ack_out else {}
        for _u, by_acker in ack_in.items():
            for _v, payloads in by_acker.items():
                for wire in payloads:
                    if isinstance(wire, Corrupted):
                        continue
                    _tag, msg_id = wire
                    pending.pop(msg_id, None)
    if pending:
        raise RetryBudgetExceeded(
            f"{len(pending)} message(s) still undelivered after "
            f"{retry_budget} attempts (first: {sorted(pending)[0]})"
        )
    inboxes: Dict[int, Inbox] = {}
    for (u, v, _i) in sorted(delivered):
        inboxes.setdefault(v, {}).setdefault(u, []).append(delivered[(u, v, _i)])
    return inboxes


class ReliableNetwork:
    """Adapter giving any network a reliable ``exchange``.

    Wrap a (typically faulty) network and hand the wrapper to any
    orchestrated algorithm::

        faulty = FaultyNetwork(g, FaultPlan(drop_rate=0.2), seed=7)
        net = ReliableNetwork(faulty)
        res = exact_mwc_congest_on(net)   # correct despite the drops

    Everything except ``exchange``/``run`` (state, rounds, stats, topology
    helpers) delegates to the wrapped network, so round accounting includes
    the full retransmission cost.
    """

    def __init__(self, net: CongestNetwork,
                 retry_budget: int = DEFAULT_RETRY_BUDGET):
        if retry_budget < 1:
            raise ValueError(f"retry budget must be >= 1, got {retry_budget}")
        self._net = net
        self.retry_budget = retry_budget

    def exchange(self, outboxes: Dict[int, Outbox]) -> Dict[int, Inbox]:
        """Reliable logical step (see :func:`reliable_exchange`)."""
        return reliable_exchange(self._net, outboxes, self.retry_budget)

    def batching_supported(self) -> bool:
        """Never: every message must travel the ack-and-retransmit protocol.

        Defined explicitly (rather than relying on ``__getattr__``
        delegation) so the batched fast path can never leak the wrapped
        network's capability through the adapter.
        """
        return False

    def run(
        self,
        step: Callable[[int, Dict[int, Inbox]], Dict[int, Outbox]],
        max_steps: int,
        quiescence: bool = True,
    ) -> int:
        """Drive ``step`` with reliable exchanges (mirrors the base ``run``)."""
        inboxes: Dict[int, Inbox] = {}
        executed = 0
        for t in range(max_steps):
            outboxes = step(t, inboxes)
            executed += 1
            if quiescence and not any(
                msgs
                for u, ob in outboxes.items()
                if not self._net.is_crashed(u)
                for msgs in ob.values()
            ):
                break
            inboxes = self.exchange(outboxes)
        else:
            if quiescence:
                raise RoundBudgetExceeded(
                    f"step function did not quiesce within {max_steps} steps"
                )
        return executed

    def __getattr__(self, name: str) -> Any:
        return getattr(self._net, name)

    def __repr__(self) -> str:
        return f"ReliableNetwork({self._net!r}, retry_budget={self.retry_budget})"


# ----------------------------------------------------------------------
# Pre-wrapped resilient primitives
# ----------------------------------------------------------------------
def reliable_bfs_tree(
    net: CongestNetwork,
    root: int = 0,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> BfsTree:
    """Fault-tolerant BFS spanning tree (flood with retransmission)."""
    return build_bfs_tree(ReliableNetwork(net, retry_budget), root=root)


def reliable_bfs(
    net: CongestNetwork,
    source: int,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    **kwargs: Any,
):
    """Fault-tolerant single-source BFS wave; same contract as ``bfs``."""
    return bfs(ReliableNetwork(net, retry_budget), source, **kwargs)


def reliable_convergecast(
    net: CongestNetwork,
    values,
    op: Callable[[Any, Any], Any],
    tree: Optional[BfsTree] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> Any:
    """Fault-tolerant convergecast; builds a resilient tree if none given."""
    rnet = ReliableNetwork(net, retry_budget)
    if tree is None:
        tree = build_bfs_tree(rnet)
    return convergecast(rnet, values, op, tree)


def reliable_broadcast(
    net: CongestNetwork,
    messages: Dict[int, Any],
    tree: Optional[BfsTree] = None,
    words_per_message: int = 1,
    max_steps: Optional[int] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> List[List[Any]]:
    """Fault-tolerant pipelined broadcast; same contract as ``broadcast``."""
    rnet = ReliableNetwork(net, retry_budget)
    if tree is None:
        tree = build_bfs_tree(rnet)
    return broadcast(rnet, messages, tree=tree,
                     words_per_message=words_per_message, max_steps=max_steps)
