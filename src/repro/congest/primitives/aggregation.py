"""Extra global primitives: leader election and top-k aggregation.

Not used by the MWC algorithms directly, but standard CONGEST toolbox
members that make the simulator a usable library substrate:

* :func:`elect_leader` — O(D) rounds (convergecast of the min id).
* :func:`aggregate_top_k` — every node learns the k smallest (value, id)
  pairs network-wide in O(k + D) rounds: a pipelined convergecast where
  each tree edge carries at most k pairs in increasing order, followed by a
  broadcast of the winners.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.congest.primitives.broadcast import broadcast
from repro.congest.primitives.convergecast import converge_min
from repro.congest.primitives.flood import BfsTree, build_bfs_tree

NEG_INF = float("-inf")
POS_INF = float("inf")


def elect_leader(net: CongestNetwork, tree: Optional[BfsTree] = None) -> int:
    """All nodes agree on the minimum vertex id; O(D) rounds."""
    return int(converge_min(net, list(range(net.n)), tree))


def aggregate_top_k(
    net: CongestNetwork,
    values: Sequence[float],
    k: int,
    tree: Optional[BfsTree] = None,
) -> List[Tuple[float, int]]:
    """The k smallest (value, vertex) pairs, known to every node.

    Upward phase invariant: every node emits pairs to its parent in
    *increasing* order, so a node may safely emit its i-th smallest known
    pair as soon as that pair is no larger than the last pair received from
    every still-active child (anything a child sends later is at least its
    last emission). Each tree edge carries at most k pairs plus one "done"
    marker: O(k + height) rounds, then an O(k + D) broadcast.
    """
    if len(values) != net.n:
        raise ValueError("need exactly one value per vertex")
    if k < 1:
        raise ValueError("k must be >= 1")
    if tree is None:
        tree = build_bfs_tree(net)
    n = net.n
    known: List[List[Tuple[float, int]]] = [[(float(values[v]), v)] for v in range(n)]
    sent = [0] * n
    done_sent = [False] * n
    # Per node: last value received from each child, and which are done.
    last_from_child: List[dict] = [
        {c: NEG_INF for c in tree.children[v]} for v in range(n)
    ]
    child_done: List[dict] = [
        {c: False for c in tree.children[v]} for v in range(n)
    ]

    def frontier(v: int) -> float:
        """Largest value v may currently emit without risking disorder."""
        bound = POS_INF
        for c in tree.children[v]:
            if not child_done[v][c]:
                bound = min(bound, last_from_child[v][c])
        return bound

    max_steps = 2 * (k + tree.height) + n + 16
    use_batch = fast_path(net)
    for _ in range(max_steps):
        up = BatchedOutbox()
        for v in range(n):
            if v == tree.root:
                continue
            p = tree.parent[v]
            ordered = sorted(known[v])
            limit = min(k, len(ordered))
            bound = frontier(v)
            # One pair per round per edge (pipelining).
            if sent[v] < limit and ordered[sent[v]] <= (bound, n):
                up.send(v, p, ("pair", ordered[sent[v]]))
                sent[v] += 1
            if (not done_sent[v] and sent[v] >= limit
                    and all(child_done[v].values())):
                up.send(v, p, ("done", v))
                done_sent[v] = True
        if not up:
            break
        inboxes = (net.exchange_batched(up) if use_batch
                   else net.exchange(up.to_outboxes()))
        for v, by_sender in inboxes.items():
            for c, payloads in by_sender.items():
                for kind, payload in payloads:
                    if kind == "pair":
                        known[v].append(tuple(payload))
                        last_from_child[v][c] = payload[0]
                    else:
                        child_done[v][c] = True
    winners = sorted(set(known[tree.root]))[:k]
    received = broadcast(net, {tree.root: winners}, tree=tree)
    return sorted(tuple(p) for p in received[0])
