"""Convergecast: associative aggregation over all nodes in O(D) rounds.

Leaves push their values up the BFS tree; internal nodes combine children's
partial aggregates with their own and push up; the root's result is then
flooded back down so *all* nodes know it (paper §1.1's convergecast
convention: "after which all nodes know the result").
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.congest.primitives.flood import BfsTree, build_bfs_tree
from repro.obs import registry as obs


def convergecast(
    net: CongestNetwork,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
    tree: Optional[BfsTree] = None,
) -> Any:
    """Aggregate ``values[v]`` over all v with associative ``op``; O(D).

    Returns the aggregate; also stores it at every node under state key
    ``"convergecast_result"``. Attributed to the ``"convergecast"`` phase
    bucket under metrics.
    """
    obs.counter("primitives.convergecast.calls").inc()
    with net.phase("convergecast"):
        return _convergecast_impl(net, values, op, tree)


def _convergecast_impl(
    net: CongestNetwork,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
    tree: Optional[BfsTree],
) -> Any:
    if len(values) != net.n:
        raise ValueError("need exactly one value per vertex")
    if tree is None:
        tree = build_bfs_tree(net)
    n = net.n
    pending = {v: len(tree.children[v]) for v in range(n)}
    partial: List[Any] = list(values)
    # Upward phase: a node fires once all children have reported.
    ready = [v for v in range(n) if pending[v] == 0 and v != tree.root]
    reported = [False] * n
    use_batch = fast_path(net)
    while True:
        up = BatchedOutbox()
        fired = []
        for v in ready:
            up.send(v, tree.parent[v], (v, partial[v]))
            fired.append(v)
        if not up:
            break
        ready = []
        inboxes = (net.exchange_batched(up) if use_batch
                   else net.exchange(up.to_outboxes()))
        for v in fired:
            reported[v] = True
        for p, by_child in inboxes.items():
            for c, payloads in by_child.items():
                for (_c, val) in payloads:
                    partial[p] = op(partial[p], val)
                    pending[p] -= 1
            if pending[p] == 0 and p != tree.root and not reported[p]:
                ready.append(p)
    result = partial[tree.root]
    # Downward phase: flood the result level by level.
    frontier = [tree.root]
    while frontier:
        down = BatchedOutbox()
        for u in frontier:
            for c in tree.children[u]:
                down.send(u, c, result)
        if not down:
            break
        if use_batch:
            net.exchange_batched(down)
        else:
            net.exchange(down.to_outboxes())
        frontier = [c for u in frontier for c in tree.children[u]]
    for v in range(n):
        net.state[v]["convergecast_result"] = result
    return result


def converge_min(net: CongestNetwork, values: Sequence[Any],
                 tree: Optional[BfsTree] = None) -> Any:
    """Global minimum of per-node values; O(D) rounds."""
    return convergecast(net, values, min, tree)


def converge_max(net: CongestNetwork, values: Sequence[Any],
                 tree: Optional[BfsTree] = None) -> Any:
    """Global maximum of per-node values; O(D) rounds."""
    return convergecast(net, values, max, tree)


def converge_sum(net: CongestNetwork, values: Sequence[Any],
                 tree: Optional[BfsTree] = None) -> Any:
    """Global sum of per-node values; O(D) rounds."""
    return convergecast(net, values, lambda a, b: a + b, tree)
