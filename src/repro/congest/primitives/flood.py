"""BFS spanning tree of the communication graph (flooding), O(D) rounds.

The tree is the backbone for convergecast and broadcast. Communication links
are bidirectional regardless of input-graph direction, so the tree always
spans the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.obs import registry as obs


@dataclass
class BfsTree:
    """Spanning BFS tree of the communication graph rooted at ``root``."""

    root: int
    parent: List[int]
    depth: List[int]
    children: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def height(self) -> int:
        return max(self.depth)


def build_bfs_tree(net: CongestNetwork, root: int = 0) -> BfsTree:
    """Build a BFS spanning tree by flooding; O(ecc(root)) <= O(D) rounds.

    Each vertex adopts as parent the smallest-id neighbor from which it first
    receives the wave, then acknowledges so parents learn their children
    (one extra round per level, interleaved with the wave). Attributed to
    the ``"bfs-tree"`` phase bucket under metrics.
    """
    obs.counter("primitives.bfs_tree.calls").inc()
    with net.phase("bfs-tree"):
        return _build_bfs_tree_impl(net, root)


def _build_bfs_tree_impl(net: CongestNetwork, root: int) -> BfsTree:
    n = net.n
    parent = [-1] * n
    depth = [-1] * n
    children: Dict[int, List[int]] = {v: [] for v in range(n)}
    depth[root] = 0
    frontier = [root]
    use_batch = fast_path(net)
    while frontier:
        # Wave step: frontier announces (depth) to all communication
        # neighbors. The batched fast path emits the same messages in the
        # same order, so grouped inboxes (and hence parent choices) match
        # the dict path bit for bit.
        wave = BatchedOutbox()
        for u in frontier:
            pair = (u, depth[u])
            for v in net.comm_neighbors_sorted(u):
                if depth[v] == -1:
                    wave.send(u, v, pair)
        if not wave:
            break
        inboxes = (net.exchange_batched(wave) if use_batch
                   else net.exchange(wave.to_outboxes()))
        new_frontier = []
        acks = BatchedOutbox()
        for v, by_sender in inboxes.items():
            if depth[v] != -1:
                continue
            senders = sorted(by_sender)
            p = senders[0]
            parent[v] = p
            depth[v] = depth[p] + 1
            new_frontier.append(v)
            acks.send(v, p, ("child", v))
        if acks:
            ack_in = (net.exchange_batched(acks) if use_batch
                      else net.exchange(acks.to_outboxes()))
            for p, by_child in ack_in.items():
                for c in by_child:
                    children[p].append(c)
        frontier = new_frontier
    if any(d == -1 for d in depth):
        raise RuntimeError("flood did not reach every vertex; graph disconnected?")
    tree = BfsTree(root=root, parent=parent, depth=depth, children=children)
    for v in range(n):
        net.state[v]["tree_parent"] = parent[v]
        net.state[v]["tree_depth"] = depth[v]
        net.state[v]["tree_children"] = tuple(children[v])
    return tree
