"""Single-source (directed) BFS wave: O(min(h, ecc)) rounds.

BFS messages travel along the input graph's (out-)edges, which are always a
subset of the communication links; ``reverse=True`` follows in-edges, i.e.
computes hop distances *to* the source.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.graphs.graph import INF
from repro.obs import registry as obs


def bfs(
    net: CongestNetwork,
    source: int,
    h: Optional[int] = None,
    reverse: bool = False,
    record_parents: bool = False,
):
    """Run a BFS wave from ``source``; returns (dist, parent) lists.

    ``dist[v]`` is the hop distance (``INF`` beyond ``h`` or unreachable).
    ``parent[v]`` is the tree predecessor if ``record_parents`` else ``None``.
    One exchange step per BFS level; one word per edge per step.
    Rounds/messages are attributed to the ``"bfs"`` phase bucket when the
    network has metrics enabled.
    """
    obs.counter("primitives.bfs.calls").inc()
    with net.phase("bfs"):
        return _bfs_impl(net, source, h, reverse, record_parents)


def _bfs_impl(
    net: CongestNetwork,
    source: int,
    h: Optional[int],
    reverse: bool,
    record_parents: bool,
):
    g = net.graph
    dist: List[float] = [INF] * g.n
    parent: List[int] = [-1] * g.n
    dist[source] = 0
    frontier = [source]
    limit = h if h is not None else g.n
    neigh = g.in_neighbors if reverse else g.out_neighbors
    level = 0
    use_batch = fast_path(net)
    while frontier and level < limit:
        # Every frontier vertex sits at dist == level, so the whole level
        # shares one interned (source, level + 1) payload tuple.
        pair = (source, level + 1)
        if use_batch:
            # Fast path: one columnar batch per BFS level, consumed as the
            # flat delivered stream (grouped=False). Stream order is
            # sender-major and ascending per receiver, so taking the
            # minimum sender per newly reached vertex and discovering
            # vertices in first-message order reproduces the dict path's
            # inbox iteration bit for bit.
            batch = BatchedOutbox()
            bsrc, bdst, bpay = batch.src, batch.dst, batch.payloads
            for u in frontier:
                for v in neigh(u):
                    if dist[v] == INF:
                        bsrc.append(u)
                        bdst.append(v)
                        bpay.append(pair)
            if not batch:
                break
            inbox = net.exchange_batched(batch, grouped=False)
            best: Dict[int, int] = {}
            for i, v in enumerate(inbox.dst):
                u = inbox.src[i]
                b = best.get(v)
                if b is None or u < b:
                    best[v] = u
            frontier = []
            for v, best_sender in best.items():
                dist[v] = level + 1
                if record_parents:
                    parent[v] = best_sender
                frontier.append(v)
            level += 1
            continue
        outboxes = {}
        for u in frontier:
            targets = [v for v in neigh(u) if dist[v] == INF]
            if targets:
                outboxes[u] = {v: [(pair, 1)] for v in targets}
        if not outboxes:
            break
        inboxes = net.exchange(outboxes)
        frontier = []
        for v, by_sender in inboxes.items():
            if dist[v] != INF:
                continue
            best_sender = min(by_sender)
            dist[v] = level + 1
            if record_parents:
                parent[v] = best_sender
            frontier.append(v)
        level += 1
    key = ("bfs_rev" if reverse else "bfs", source)
    for v in range(g.n):
        if dist[v] != INF:
            net.state[v][key] = dist[v]
    return dist, (parent if record_parents else None)
