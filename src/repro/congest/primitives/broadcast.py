"""Pipelined broadcast of M messages to all nodes in O(M + D) rounds.

Items flow up a BFS spanning tree toward the root while simultaneously being
flooded down into every other subtree, pipelined so that each tree edge
carries at most ``bandwidth`` words per direction per round. An item crosses
each tree edge at most twice (once up, once down), giving the classical
O(M + D) bound (paper §1.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.network import CongestNetwork
from repro.congest.primitives.flood import BfsTree, build_bfs_tree
from repro.congest.primitives.convergecast import converge_sum
from repro.obs import registry as obs


def broadcast(
    net: CongestNetwork,
    messages: Dict[int, Sequence[Any]],
    tree: Optional[BfsTree] = None,
    words_per_message: int = 1,
    max_steps: Optional[int] = None,
) -> List[List[Any]]:
    """Broadcast all ``messages[v]`` so every node receives every payload.

    Returns ``received`` where ``received[v]`` lists all payloads in a
    deterministic (origin, sequence) order; also stored under state key
    ``"broadcast"``. Termination is locally decidable because the total
    message count is convergecast first (O(D) rounds). Attributed to the
    ``"broadcast"`` phase bucket (with a nested ``"broadcast/convergecast"``
    bucket for the count aggregation) under metrics.
    """
    obs.counter("primitives.broadcast.calls").inc()
    with net.phase("broadcast"):
        return _broadcast_impl(net, messages, tree, words_per_message,
                               max_steps)


def _broadcast_impl(
    net: CongestNetwork,
    messages: Dict[int, Sequence[Any]],
    tree: Optional[BfsTree],
    words_per_message: int,
    max_steps: Optional[int],
) -> List[List[Any]]:
    if tree is None:
        tree = build_bfs_tree(net)
    n = net.n
    counts = [len(messages.get(v, ())) for v in range(n)]
    total = converge_sum(net, counts, tree)
    # Item identity: (origin, seq). known[v] maps item id -> payload.
    known: List[Dict[Tuple[int, int], Any]] = [dict() for _ in range(n)]
    up_q: List[deque] = [deque() for _ in range(n)]
    # down_q entries are (item, skip_child): flood to children except skip
    # (the child the item arrived from, which already has it). Items with no
    # eligible child are never enqueued, so a non-empty queue always has
    # real work — the quiescence check relies on this.
    down_q: List[deque] = [deque() for _ in range(n)]
    # Vertices with queued work. Emission iterates this set in ascending
    # order, which matches the full range(n) scan exactly — most vertices
    # are idle most rounds, so skipping them is pure win, not a reordering.
    active: set = set()

    root = tree.root
    parent_of = tree.parent
    children_of = tree.children

    def enqueue_down(v: int, item, skip: Optional[int]) -> None:
        # Children are distinct, so >1 of them guarantees one differs from
        # skip; this avoids a generator expression on the hottest call site.
        cs = children_of[v]
        if cs and (skip is None or len(cs) > 1 or cs[0] != skip):
            down_q[v].append((item, skip))
            active.add(v)

    for v in range(n):
        for seq, payload in enumerate(messages.get(v, ())):
            item = ((v, seq), payload)
            known[v][item[0]] = payload
            if v != tree.root:
                up_q[v].append(item)
                active.add(v)
            enqueue_down(v, item, None)
    per_step = max(1, net.bandwidth // max(1, words_per_message))
    budget = max_steps if max_steps is not None else 6 * (total + tree.height + 2) + 8
    use_batch = fast_path(net)
    for _ in range(budget):
        # Emission is sender-major (outer loop over v), so the columnar
        # batch lists messages in exactly the order the dict path's grouped
        # inboxes would flatten to — per-receiver processing order, and
        # hence queue contents and round counts, are bit-identical.
        batch = BatchedOutbox()
        # Direct column appends: send()'s per-call overhead is measurable at
        # this loop's message rates. The uniform word size is attached as a
        # column afterwards, exactly as send() would have built it.
        bsrc, bdst, bpay = batch.src, batch.dst, batch.payloads
        if per_step == 1:
            # Unit-bandwidth rounds (the overwhelmingly common case) move at
            # most one item per queue: the min()/range() machinery of the
            # general loop collapses to straight-line code.
            for v in sorted(active):
                uq = up_q[v]
                if uq and v != root:
                    bsrc.append(v)
                    bdst.append(parent_of[v])
                    bpay.append(("up", uq.popleft()))
                dq = down_q[v]
                if dq:
                    item, skip = dq.popleft()
                    msg = ("down", item)
                    for c in children_of[v]:
                        if c != skip:
                            bsrc.append(v)
                            bdst.append(c)
                            bpay.append(msg)
                if not uq and not dq:
                    active.discard(v)
        else:
            for v in sorted(active):
                uq = up_q[v]
                if uq and v != root:
                    parent_v = parent_of[v]
                    for _ in range(min(per_step, len(uq))):
                        bsrc.append(v)
                        bdst.append(parent_v)
                        bpay.append(("up", uq.popleft()))
                dq = down_q[v]
                if dq:
                    children_v = children_of[v]
                    for _ in range(min(per_step, len(dq))):
                        item, skip = dq.popleft()
                        msg = ("down", item)
                        for c in children_v:
                            if c != skip:
                                bsrc.append(v)
                                bdst.append(c)
                                bpay.append(msg)
                if not uq and not dq:
                    active.discard(v)
        if not batch:
            break
        if words_per_message != 1:
            batch.words = [words_per_message] * len(bsrc)
        if use_batch:
            inbox = net.exchange_batched(batch, grouped=False)
            deliveries = zip(inbox.src, inbox.dst, inbox.payloads)
        else:
            inboxes = net.exchange(batch.to_outboxes())
            deliveries = (
                (sender, v, payload)
                for v, by_sender in inboxes.items()
                for sender, payloads in by_sender.items()
                for payload in payloads
            )
        # enqueue_down is inlined below (cs truthiness / skip checks): the
        # delivery loop runs once per message and the call overhead shows.
        for sender, v, (direction, item) in deliveries:
            known_v = known[v]
            item_id = item[0]
            if item_id in known_v:
                continue
            known_v[item_id] = item[1]
            cs = children_of[v]
            if direction == "up":
                if v != root:
                    up_q[v].append(item)
                    active.add(v)
                if cs and (len(cs) > 1 or cs[0] != sender):
                    down_q[v].append((item, sender))
                    active.add(v)
            elif cs:
                down_q[v].append((item, None))
                active.add(v)
    if any(len(known[v]) != total for v in range(n)):
        raise RuntimeError("broadcast did not complete within the step budget")
    received = [[known[v][k] for k in sorted(known[v])] for v in range(n)]
    for v in range(n):
        net.state[v]["broadcast"] = received[v]
    return received
