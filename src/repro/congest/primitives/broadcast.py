"""Pipelined broadcast of M messages to all nodes in O(M + D) rounds.

Items flow up a BFS spanning tree toward the root while simultaneously being
flooded down into every other subtree, pipelined so that each tree edge
carries at most ``bandwidth`` words per direction per round. An item crosses
each tree edge at most twice (once up, once down), giving the classical
O(M + D) bound (paper §1.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.congest.primitives.flood import BfsTree, build_bfs_tree
from repro.congest.primitives.convergecast import converge_sum


def broadcast(
    net: CongestNetwork,
    messages: Dict[int, Sequence[Any]],
    tree: Optional[BfsTree] = None,
    words_per_message: int = 1,
    max_steps: Optional[int] = None,
) -> List[List[Any]]:
    """Broadcast all ``messages[v]`` so every node receives every payload.

    Returns ``received`` where ``received[v]`` lists all payloads in a
    deterministic (origin, sequence) order; also stored under state key
    ``"broadcast"``. Termination is locally decidable because the total
    message count is convergecast first (O(D) rounds).
    """
    if tree is None:
        tree = build_bfs_tree(net)
    n = net.n
    counts = [len(messages.get(v, ())) for v in range(n)]
    total = converge_sum(net, counts, tree)
    # Item identity: (origin, seq). known[v] maps item id -> payload.
    known: List[Dict[Tuple[int, int], Any]] = [dict() for _ in range(n)]
    up_q: List[deque] = [deque() for _ in range(n)]
    # down_q entries are (item, skip_child): flood to children except skip
    # (the child the item arrived from, which already has it). Items with no
    # eligible child are never enqueued, so a non-empty queue always has
    # real work — the quiescence check relies on this.
    down_q: List[deque] = [deque() for _ in range(n)]

    def enqueue_down(v: int, item, skip: Optional[int]) -> None:
        if any(c != skip for c in tree.children[v]):
            down_q[v].append((item, skip))

    for v in range(n):
        for seq, payload in enumerate(messages.get(v, ())):
            item = ((v, seq), payload)
            known[v][item[0]] = payload
            if v != tree.root:
                up_q[v].append(item)
            enqueue_down(v, item, None)
    per_step = max(1, net.bandwidth // max(1, words_per_message))

    def take(queue: deque) -> list:
        batch = []
        for _ in range(per_step):
            if not queue:
                break
            batch.append(queue.popleft())
        return batch

    budget = max_steps if max_steps is not None else 6 * (total + tree.height + 2) + 8
    for _ in range(budget):
        outboxes: Dict[int, Dict[int, list]] = {}
        for v in range(n):
            out: Dict[int, list] = {}
            if v != tree.root and up_q[v]:
                out[tree.parent[v]] = [
                    (("up", item), words_per_message) for item in take(up_q[v])
                ]
            for item, skip in take(down_q[v]):
                for c in tree.children[v]:
                    if c == skip:
                        continue
                    out.setdefault(c, []).append(
                        (("down", item), words_per_message)
                    )
            if out:
                outboxes[v] = out
        if not outboxes:
            break
        inboxes = net.exchange(outboxes)
        for v, by_sender in inboxes.items():
            for sender, payloads in by_sender.items():
                for direction, item in payloads:
                    item_id, payload = item
                    if item_id in known[v]:
                        continue
                    known[v][item_id] = payload
                    if direction == "up":
                        if v != tree.root:
                            up_q[v].append(item)
                        enqueue_down(v, item, sender)
                    else:
                        enqueue_down(v, item, None)
    if any(len(known[v]) != total for v in range(n)):
        raise RuntimeError("broadcast did not complete within the step budget")
    received = [[known[v][k] for k in sorted(known[v])] for v in range(n)]
    for v in range(n):
        net.state[v]["broadcast"] = received[v]
    return received
