"""Weighted wave primitives: stretched-graph BFS without materialization.

``multi_source_wave`` computes *weight-limited* distances: exactly what an
``h``-hop-limited BFS on the paper's stretched graph ``G^s`` (§4) computes,
because hop length in ``G^s`` equals path weight in ``G``. A wave takes
``w`` rounds to cross a weight-``w`` edge and transmits one physical message
for it — matching the paper's "simulate all but the last edge of the path at
one of the endpoints" convention — so rounds and bandwidth agree with the
materialized simulation (tested against :class:`repro.graphs.stretch.StretchedGraph`).

``source_detection`` is the (S, h, sigma)-detection of Lenzen–Patt-Shamir–
Peleg [37]: every vertex learns its sigma closest sources within the weight
budget, in O(budget + sigma) rounds, forwarding only pairs ranked within its
current top-sigma.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.batch import BatchedOutbox, fast_path
from repro.congest.kernels import kernels_enabled, run_wave_kernel
from repro.congest.network import CongestNetwork, RoundBudgetExceeded
from repro.graphs.graph import Graph, GraphError, INF
from repro.obs import registry as obs
from repro.resilience.degrade import degrade_enabled, record_degradation


def _edge_weight(weight_graph: Optional[Graph], net: CongestNetwork,
                 u: int, v: int) -> int:
    g = weight_graph if weight_graph is not None else net.graph
    return g.weight(u, v)


def _check_weight_graph(net: CongestNetwork, weight_graph: Optional[Graph]) -> Graph:
    g = weight_graph if weight_graph is not None else net.graph
    if weight_graph is not None:
        if weight_graph.n != net.n or weight_graph.directed != net.graph.directed:
            raise GraphError("weight graph must share the network's topology")
    return g


def multi_source_wave(
    net: CongestNetwork,
    sources: Sequence[int],
    budget: int,
    reverse: bool = False,
    weight_graph: Optional[Graph] = None,
    record_parents: bool = False,
    max_steps: Optional[int] = None,
) -> Tuple[List[Dict[int, int]], Optional[List[Dict[int, int]]]]:
    """Weight-limited distances from ``sources``: d(s, v) when <= ``budget``.

    ``weight_graph`` supplies alternative edge weights on the *same*
    topology (the scaled graphs ``G^i`` of §5); weights must be >= 1 so the
    unit-speed wave model applies. Returns ``(dist, parent)`` shaped like
    :func:`~repro.congest.primitives.multi_bfs.multi_source_bfs`.
    Attributed to the ``"wave"`` phase bucket under metrics.
    """
    obs.counter("primitives.wave.calls").inc()
    obs.histogram("primitives.wave.budget").observe(budget)
    with net.phase("wave"):
        return _multi_source_wave_impl(
            net, sources, budget, reverse, weight_graph, record_parents,
            max_steps)


def _multi_source_wave_impl(
    net: CongestNetwork,
    sources: Sequence[int],
    budget: int,
    reverse: bool,
    weight_graph: Optional[Graph],
    record_parents: bool,
    max_steps: Optional[int],
) -> Tuple[List[Dict[int, int]], Optional[List[Dict[int, int]]]]:
    g = _check_weight_graph(net, weight_graph)
    n = net.n
    k = len(sources)
    if k == 0:
        empty: List[Dict[int, int]] = [dict() for _ in range(n)]
        return empty, ([dict() for _ in range(n)] if record_parents else None)
    neigh_items = g.in_items if reverse else g.out_items
    known: List[Dict[int, int]] = [dict() for _ in range(n)]
    parent: List[Dict[int, int]] = [dict() for _ in range(n)]
    pq: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for s in sources:
        known[s][s] = 0
        heapq.heappush(pq[s], (0, s))
    cap = max_steps if max_steps is not None else 2 * (budget + k) + 16
    use_batch = fast_path(net)
    if use_batch and kernels_enabled():
        result = run_wave_kernel(
            net, sources, cap=cap, budget=budget, reverse=reverse,
            weight_graph=g, check_weights=True,
            timeout=(f"multi_source_wave did not quiesce within {cap} "
                     f"steps (k={k}, budget={budget})"),
        )
        if result is not None:
            known, parent = result
            key = "wave_rev" if reverse else "wave"
            for v in range(n):
                net.state[v][key] = dict(known[v])
            return known, (parent if record_parents else None)
    steps = 0
    heappop, heappush = heapq.heappop, heapq.heappush
    while steps < cap:
        # Fast path and dict path emit identical messages in identical
        # (sender-major) order; see repro.congest.batch for the parity
        # argument. Distances, parents, and round counts are bit-identical.
        batch = BatchedOutbox()
        bsrc, bdst, bpay = batch.src, batch.dst, batch.payloads
        for u in range(n):
            entry = None
            q = pq[u]
            while q:
                d, s = heappop(q)
                if known[u].get(s) != d:
                    continue
                entry = (d, s)
                break
            if entry is None:
                continue
            d, s = entry
            for v, w in neigh_items(u):
                if w < 1:
                    raise GraphError("wave primitives require weights >= 1")
                if d + w <= budget:
                    bsrc.append(u)
                    bdst.append(v)
                    bpay.append((s, d + w))
        if not batch:
            break
        try:
            if use_batch:
                inbox = net.exchange_batched(batch, grouped=False)
                msgs = zip(inbox.src, inbox.dst, inbox.payloads)
            else:
                msgs = (
                    (sender, v, payload)
                    for v, by_sender in net.exchange(batch.to_outboxes()).items()
                    for sender, payloads in by_sender.items()
                    for payload in payloads
                )
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "wave", str(exc))
                break  # partial distances: every entry is a real path weight
            raise
        steps += 1
        for sender, v, (s, d) in msgs:
            known_v = known[v]
            if known_v.get(s, INF) > d:
                known_v[s] = d
                parent[v][s] = sender
                heappush(pq[v], (d, s))
    else:
        raise RuntimeError(
            f"multi_source_wave did not quiesce within {cap} steps "
            f"(k={k}, budget={budget})"
        )
    key = "wave_rev" if reverse else "wave"
    for v in range(n):
        net.state[v][key] = dict(known[v])
    return known, (parent if record_parents else None)


def source_detection(
    net: CongestNetwork,
    sigma: int,
    budget: int,
    sources: Optional[Sequence[int]] = None,
    reverse: bool = False,
    weight_graph: Optional[Graph] = None,
    max_steps: Optional[int] = None,
    record_parents: bool = False,
) -> List[List[Tuple[int, int]]]:
    """(S, budget, sigma)-detection [37]: sigma closest sources per vertex.

    Returns ``lists[v]`` = the up-to-sigma lexicographically smallest
    ``(distance, source)`` pairs with distance <= ``budget``. Runs in
    O(budget + sigma) rounds: nodes forward, smallest first, only pairs
    currently ranked within their top sigma.

    With ``record_parents`` each node also stores, per detected source, the
    neighbor its best pair arrived from, under state key
    ``"detection_parent"`` (used by the girth algorithm to exclude
    degenerate backtracking cycle candidates). Attributed to the
    ``"detect"`` phase bucket under metrics.
    """
    obs.counter("primitives.detect.calls").inc()
    obs.histogram("primitives.detect.sigma").observe(sigma)
    with net.phase("detect"):
        return _source_detection_impl(
            net, sigma, budget, sources, reverse, weight_graph, max_steps,
            record_parents)


def _source_detection_impl(
    net: CongestNetwork,
    sigma: int,
    budget: int,
    sources: Optional[Sequence[int]],
    reverse: bool,
    weight_graph: Optional[Graph],
    max_steps: Optional[int],
    record_parents: bool,
) -> List[List[Tuple[int, int]]]:
    g = _check_weight_graph(net, weight_graph)
    n = net.n
    srcs = list(range(n)) if sources is None else list(sources)
    neigh_items = g.in_items if reverse else g.out_items
    known: List[Dict[int, int]] = [dict() for _ in range(n)]
    parent: List[Dict[int, int]] = [dict() for _ in range(n)]
    pq: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for s in srcs:
        known[s][s] = 0
        heapq.heappush(pq[s], (0, s))

    def rank_within_sigma(v: int, d: int, s: int) -> bool:
        if len(known[v]) <= sigma:
            return True
        best = heapq.nsmallest(sigma, ((dd, ss) for ss, dd in known[v].items()))
        return (d, s) <= best[-1]

    cap = max_steps if max_steps is not None else 2 * (budget + sigma) + 16
    steps = 0
    use_batch = fast_path(net)
    heappop, heappush = heapq.heappop, heapq.heappush
    while steps < cap:
        batch = BatchedOutbox()
        bsrc, bdst, bpay = batch.src, batch.dst, batch.payloads
        for u in range(n):
            entry = None
            q = pq[u]
            while q:
                d, s = heappop(q)
                if known[u].get(s) != d:
                    continue
                if not rank_within_sigma(u, d, s):
                    continue  # outside top-sigma: never forwarded
                entry = (d, s)
                break
            if entry is None:
                continue
            d, s = entry
            for v, w in neigh_items(u):
                if w < 1:
                    raise GraphError("wave primitives require weights >= 1")
                if d + w <= budget:
                    bsrc.append(u)
                    bdst.append(v)
                    bpay.append((s, d + w))
        if not batch:
            break
        try:
            if use_batch:
                inbox = net.exchange_batched(batch, grouped=False)
                msgs = zip(inbox.src, inbox.dst, inbox.payloads)
            else:
                msgs = (
                    (sender, v, payload)
                    for v, by_sender in net.exchange(batch.to_outboxes()).items()
                    for sender, payloads in by_sender.items()
                    for payload in payloads
                )
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "detect", str(exc))
                break  # partial detection lists remain valid prefixes
            raise
        steps += 1
        for sender, v, (s, d) in msgs:
            known_v = known[v]
            if known_v.get(s, INF) > d:
                known_v[s] = d
                parent[v][s] = sender
                heappush(pq[v], (d, s))
    else:
        raise RuntimeError(
            f"source_detection did not quiesce within {cap} steps "
            f"(sigma={sigma}, budget={budget})"
        )
    result: List[List[Tuple[int, int]]] = []
    for v in range(n):
        pairs = sorted((d, s) for s, d in known[v].items())
        result.append(pairs[:sigma])
    for v in range(n):
        net.state[v]["detection"] = result[v]
        if record_parents:
            keep = {s for _, s in result[v]}
            net.state[v]["detection_parent"] = {
                s: p for s, p in parent[v].items() if s in keep
            }
    return result
