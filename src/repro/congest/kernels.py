"""Vectorized multi-wave kernel engine for the CONGEST simulator.

Every headline algorithm of the paper runs *many* simultaneous BFS/SSSP
waves — n-source APSP, k-source skeleton BFS, weight-limited waves on the
scaled graphs of §5 — and the scalar implementations of those primitives
spend their time in Python loops over (source, frontier-vertex, neighbor)
triples. This module advances *all* waves of a sweep per round with numpy
array operations over a cached CSR adjacency
(:meth:`repro.graphs.graph.Graph.csr`), computing the full columnar outbox
directly from dense frontier arrays and feeding it to
:meth:`~repro.congest.network.CongestNetwork.exchange_batched`.

Parity contract
---------------
The kernel changes how outboxes are *constructed*, never how they are
*accounted*: per round it emits the exact message multiset of the scalar
path in the exact sender-major order, so rounds, messages, words,
``NetworkStats``, and phase buckets are bit-identical, and the returned
``known``/``parent`` dicts match the scalar path's bit for bit *including
key insertion order* (downstream code iterates these dicts, so even
iteration order must agree). The correspondence:

* the per-node heap pop of the smallest fresh ``(d, s)`` pair equals a
  masked row-argmin over a dense pending matrix keyed ``d * K + col`` with
  columns sorted by ascending source id;
* the sequential strict-improvement relaxation of the delivered stream
  equals a stable lexsort by ``(cell, d)``: the winner per cell is the
  first stream message attaining the overall minimum (the scalar path's
  final value and parent), while the *first improving* message's stream
  position fixes the dict insertion order;
* termination, step caps, and error messages mirror each caller exactly.

``tests/test_kernels.py`` enforces all of this property-based.

Gating mirrors :mod:`repro.congest.batch`: the engine engages only when
:func:`kernel_path` answers True — ``REPRO_KERNELS`` not disabled (or a
:func:`kernels` override installed) *and* the batched exchange is safe on
the network. Fault plans, trace recorders, reliable-delivery wrappers, and
``REPRO_BATCH=0`` therefore all silently force the scalar path. A workload
that does not fit the dense representation (too many sources, distances
that could overflow the selection key, duplicate sources) makes
:func:`run_wave_kernel` return ``None`` and the caller falls back.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.congest.batch import fast_path
from repro.congest.network import RoundBudgetExceeded
from repro.graphs.graph import Graph, GraphError
from repro.obs import registry as obs
from repro.resilience.degrade import degrade_enabled, record_degradation

#: Environment variable gating the kernel engine; set to ``"0"`` to force
#: every ported primitive back onto the scalar (heap-based) path.
KERNELS_ENV = "REPRO_KERNELS"

#: Programmatic override installed by :func:`kernels`; ``None`` defers to
#: the environment.
_FORCED: Optional[bool] = None

#: Distance sentinel for "unknown"; any representable distance must stay
#: strictly below it so that ``key = d * K + col`` never wraps int64
#: (``INF_SENT * K <= 2**60`` under the source-count guard below).
INF_SENT = 1 << 40

#: Fit guards: workloads past these fall back to the scalar path.
_MAX_SOURCES = 1 << 20
_MAX_CELLS = 1 << 23

#: Rounds selecting at most this many rows run the sequential (Python int)
#: emission/relaxation instead of the dense array one: numpy's fixed
#: per-call dispatch cost dominates when the frontier is a handful of nodes,
#: which is the common regime late in a sweep on high-diameter graphs. Both
#: round flavours produce identical message streams and state updates. On
#: low-degree graphs (few emissions per selected row) the crossover sits
#: higher, so the limit doubles there.
_SPARSE_ROWS = 32
_SPARSE_ROWS_LOW_DEG = 64

#: Number of kernel runs that actually engaged (post-guard), for benches
#: and the fallback tests.
_ENGAGED = 0


def kernels_enabled() -> bool:
    """Whether the kernel engine is globally enabled (default: yes)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(KERNELS_ENV, "1") != "0"


@contextlib.contextmanager
def kernels(enabled: bool) -> Iterator[None]:
    """Force the kernel engine on or off within a block (tests, A/B timing)."""
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


def kernel_path(net) -> bool:
    """Whether ``net`` should take the vectorized kernel path right now.

    The kernel rides on ``exchange_batched``, so every batched-exchange
    gate (fault plans, trace recorders, monkey-patched ``exchange``,
    ``REPRO_BATCH=0``) automatically disables it too.
    """
    return kernels_enabled() and fast_path(net)


def engaged_runs() -> int:
    """How many kernel runs engaged (passed all guards) so far."""
    return _ENGAGED


class _LazyPayloads:
    """Columnar ``(source, dist)`` payload view, materialized on demand.

    The kernel consumes its own columns directly and never reads the
    payload objects back out of the inbox, but ``exchange_batched``'s
    contract hands payload sequences to grouped consumers — so honour it
    lazily instead of allocating one tuple per message up front.
    """

    __slots__ = ("_col", "_d", "_src_of_col")

    def __init__(self, col: np.ndarray, d: np.ndarray, src_of_col: List[int]):
        self._col = col
        self._d = d
        self._src_of_col = src_of_col

    def __len__(self) -> int:
        return len(self._col)

    def __getitem__(self, i: int) -> Tuple[int, int]:
        return (self._src_of_col[self._col[i]], int(self._d[i]))

    def __iter__(self):
        src_of_col = self._src_of_col
        for c, d in zip(self._col, self._d):
            yield (src_of_col[c], int(d))


class _ColumnBatch:
    """Duck-typed :class:`~repro.congest.batch.BatchedOutbox` over arrays."""

    __slots__ = ("src", "dst", "payloads", "words")

    def __init__(self, src: np.ndarray, dst: np.ndarray,
                 payloads: _LazyPayloads):
        self.src = src
        self.dst = dst
        self.payloads = payloads
        self.words = None  # every wave message is one O(log n)-bit word

    def __len__(self) -> int:
        return len(self.src)


def run_wave_kernel(
    net,
    sources: Sequence[int],
    *,
    cap: int,
    timeout: str,
    unit_weight: bool = False,
    hop_limit: Optional[int] = None,
    budget: Optional[int] = None,
    reverse: bool = False,
    weight_graph: Optional[Graph] = None,
    check_weights: bool = False,
    checkpoint=None,
) -> Optional[Tuple[List[Dict[int, int]], List[Dict[int, int]]]]:
    """Run a full pipelined multi-wave sweep with dense array rounds.

    Parameters mirror the scalar primitives: ``unit_weight`` advances
    distances by one hop per edge (BFS) regardless of weights;
    ``hop_limit`` masks entries at or past the limit from selection
    (``multi_source_bfs``'s discard rule); ``budget`` filters emissions to
    ``d + w <= budget`` (``multi_source_wave``); ``check_weights`` raises
    the wave primitives' ``GraphError`` on a scanned edge of weight < 1.
    ``cap``/``timeout`` reproduce the caller's step budget and its exact
    ``RuntimeError`` message.

    Returns ``(known, parent)`` exactly as the scalar path would build
    them, or ``None`` when the workload does not fit the dense
    representation (caller falls back to the scalar loop).

    ``checkpoint`` (a :class:`repro.congest.checkpoint.CheckpointManager`)
    snapshots the dense loop state — step counter, distance and selection
    matrices, result dicts — under stage ``"wave-kernel"`` at the manager's
    cadence, resuming bit-identically. The fit guards run *before* the
    resume handshake, so a workload that deterministically falls back never
    claims (or clashes with) a checkpoint. With degradation enabled
    (:mod:`repro.resilience.degrade`), round-budget exhaustion returns the
    partial ``(known, parent)`` instead of raising.
    """
    global _ENGAGED
    g = weight_graph if weight_graph is not None else net.graph
    n = net.n
    src_of_col: List[int] = sorted({int(s) for s in sources})
    K = len(src_of_col)
    if K != len(sources):
        # Duplicate sources re-emit in the scalar path (duplicate heap
        # entries); the dense representation cannot reproduce that.
        return None
    if K > _MAX_SOURCES or n * K > _MAX_CELLS:
        return None
    indptr, indices, weights, wmax = g.csr(reverse)
    if unit_weight:
        ceiling = n + 1
    elif budget is not None:
        ceiling = budget
    else:
        ceiling = n * max(1, wmax)
    if ceiling >= INF_SENT:
        return None

    _ENGAGED += 1
    obs.counter("kernels.engaged").inc()

    col_of = {s: c for c, s in enumerate(src_of_col)}
    col_ids = np.arange(K, dtype=np.int64)
    inf_key = INF_SENT * K
    D = np.full((n, K), INF_SENT, dtype=np.int64)
    # Selection keys, maintained incrementally: ``d * K + col`` while the
    # cell is pending and selectable (below the hop limit), ``inf_key + col``
    # otherwise. The per-row argmin over this matrix is the heap pop; keys
    # are updated in place at improvement/selection time, so no masked key
    # matrix is rebuilt per round.
    keyed = np.empty((n, K), dtype=np.int64)
    keyed[:] = inf_key + col_ids
    d_flat = D.reshape(-1)
    keyed_flat = keyed.reshape(-1)
    known: List[Dict[int, int]] = [dict() for _ in range(n)]
    parent: List[Dict[int, int]] = [dict() for _ in range(n)]
    # Sources at hop_limit == 0 are popped-and-discarded by the scalar path;
    # seeding them masked reproduces the immediate quiescence.
    selectable0 = hop_limit is None or hop_limit > 0
    for s in sources:
        known[s][s] = 0
        c = col_of[s]
        D[s, c] = 0
        if selectable0:
            keyed[s, c] = c

    row_ids = np.arange(n)
    # Python-list twins of the CSR for sparse rounds: when only a handful of
    # rows are selected (the common late-sweep regime on high-diameter
    # graphs), plain int loops beat the fixed dispatch cost of the ~30 numpy
    # calls a dense round issues. Both round flavours emit the identical
    # message stream and perform the identical state updates, so they can be
    # mixed freely round by round.
    indptr_l = indptr.tolist()
    indices_l = indices.tolist()
    weights_l = None if (unit_weight or weights is None) else weights.tolist()
    sparse_limit = (_SPARSE_ROWS_LOW_DEG if len(indices_l) <= 2 * n
                    else _SPARSE_ROWS)
    steps = 0
    config = {"sources": src_of_col, "ceiling": ceiling,
              "unit_weight": unit_weight, "hop_limit": hop_limit,
              "budget": budget, "reverse": reverse, "cap": cap}
    resumed = (checkpoint.take_resume("wave-kernel")
               if checkpoint is not None else None)
    if resumed is not None:
        from repro.congest.checkpoint import CheckpointError

        if resumed["config"] != config:
            raise CheckpointError(
                f"checkpointed wave-kernel run had config "
                f"{resumed['config']}, resume asked for {config}")
        steps = resumed["steps"]
        D = resumed["D"]
        keyed = resumed["keyed"]
        known = resumed["known"]
        parent = resumed["parent"]
        d_flat = D.reshape(-1)
        keyed_flat = keyed.reshape(-1)

    def _payload():
        return {"steps": steps, "D": D, "keyed": keyed, "known": known,
                "parent": parent, "config": config}

    while True:
        if steps >= cap:
            raise RuntimeError(timeout)
        # Selection: per node, the smallest fresh (d, source) pair — the
        # heap pop. Masked cells key to inf_key + col, above every
        # selectable key, so argmin lands on a real entry iff one exists.
        sel_col_all = np.argmin(keyed, axis=1)
        sel_key = keyed[row_ids, sel_col_all]
        sel_rows = np.flatnonzero(sel_key < inf_key)
        if sel_rows.size == 0:
            break
        if sel_rows.size <= sparse_limit:
            # Sparse round: sequential emission and relaxation over Python
            # ints — literally the scalar algorithm on the selected cells,
            # so parity is by construction.
            rows = sel_rows.tolist()
            keys = sel_key[sel_rows].tolist()
            bsrc: List[int] = []
            bdst: List[int] = []
            bcol: List[int] = []
            bd: List[int] = []
            for i in range(len(rows)):
                r = rows[i]
                c = keys[i] % K
                d0 = keys[i] // K
                keyed_flat[r * K + c] = inf_key + c
                for e in range(indptr_l[r], indptr_l[r + 1]):
                    if weights_l is None:
                        nd = d0 + 1
                    else:
                        w = weights_l[e]
                        if check_weights and w < 1:
                            raise GraphError(
                                "wave primitives require weights >= 1")
                        nd = d0 + w
                    if budget is not None and nd > budget:
                        continue
                    bsrc.append(r)
                    bdst.append(indices_l[e])
                    bcol.append(c)
                    bd.append(nd)
            if not bsrc:
                # No out-edges / everything over budget: the heap entries
                # were consumed and the loop breaks before any exchange.
                break
            try:
                net.exchange_batched(
                    _ColumnBatch(bsrc, bdst,
                                 _LazyPayloads(bcol, bd, src_of_col)),
                    grouped=False,
                )
            except RoundBudgetExceeded as exc:
                if degrade_enabled():
                    record_degradation(net, "wave-kernel", str(exc))
                    break
                raise
            steps += 1
            for i in range(len(bdst)):
                nd = bd[i]
                c = bcol[i]
                v = bdst[i]
                cell = v * K + c
                if nd < d_flat[cell]:
                    d_flat[cell] = nd
                    if hop_limit is None or nd < hop_limit:
                        keyed_flat[cell] = nd * K + c
                    else:
                        # Popped-and-discarded at the limit: pending but
                        # masked, exactly the scalar discard rule.
                        keyed_flat[cell] = inf_key + c
                    s = src_of_col[c]
                    known[v][s] = nd
                    parent[v][s] = bsrc[i]
            if checkpoint is not None:
                checkpoint.maybe(net, "wave-kernel", _payload)
            continue
        sel_cols = sel_col_all[sel_rows]
        sel_d = sel_key[sel_rows] // K
        keyed[sel_rows, sel_cols] = inf_key + sel_cols
        # Emission: every selected node broadcasts its pair on its
        # (out-)edges, in CSR order == adjacency iteration order, rows
        # ascending == the scalar path's sender-major order.
        counts = indptr[sel_rows + 1] - indptr[sel_rows]
        total = int(counts.sum())
        if total == 0:
            break
        seg_end = np.cumsum(counts)
        edge_idx = (np.arange(total, dtype=np.int64)
                    + np.repeat(indptr[sel_rows] - (seg_end - counts), counts))
        msg_src = np.repeat(sel_rows, counts)
        msg_dst = indices[edge_idx]
        msg_col = np.repeat(sel_cols, counts)
        base_d = np.repeat(sel_d, counts)
        if unit_weight or weights is None:
            msg_d = base_d + 1
        else:
            msg_w = weights[edge_idx]
            if check_weights and int(msg_w.min()) < 1:
                raise GraphError("wave primitives require weights >= 1")
            msg_d = base_d + msg_w
        if budget is not None:
            keep = msg_d <= budget
            if not keep.all():
                msg_src = msg_src[keep]
                msg_dst = msg_dst[keep]
                msg_col = msg_col[keep]
                msg_d = msg_d[keep]
                if msg_src.size == 0:
                    # Scalar parity: the heap entries were consumed, the
                    # batch came out empty, and the loop breaks before any
                    # exchange.
                    break
        try:
            net.exchange_batched(
                _ColumnBatch(msg_src, msg_dst,
                             _LazyPayloads(msg_col, msg_d, src_of_col)),
                grouped=False,
            )
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "wave-kernel", str(exc))
                break
            raise
        steps += 1
        # Relaxation. flat cell id = dst * K + col; stable lexsort by
        # (cell, d) makes the first row of each cell group the scalar
        # path's final (value, parent); np.unique's first-occurrence index
        # recovers the first *improving* message, whose stream position is
        # the scalar path's dict-insertion point.
        flat = msg_dst * K + msg_col
        improving = msg_d < d_flat[flat]
        if not improving.any():
            if checkpoint is not None:
                checkpoint.maybe(net, "wave-kernel", _payload)
            continue
        ff = flat[improving]
        dd = msg_d[improving]
        su = msg_src[improving]
        order = np.lexsort((dd, ff))
        off = ff[order]
        first = np.empty(off.size, dtype=bool)
        first[0] = True
        np.not_equal(off[1:], off[:-1], out=first[1:])
        winners = order[first]
        win_flat = ff[winners]  # unique cells, ascending (== np.unique(ff))
        win_d = dd[winners]
        win_src = su[winners]
        _uf, first_pos = np.unique(ff, return_index=True)
        for j in np.argsort(first_pos, kind="stable"):
            cell = int(win_flat[j])
            s = src_of_col[cell % K]
            v = cell // K
            known[v][s] = int(win_d[j])
            parent[v][s] = int(win_src[j])
        d_flat[win_flat] = win_d
        win_col = win_flat % K
        new_key = win_d * K + win_col
        if hop_limit is not None:
            limited = win_d >= hop_limit
            if limited.any():
                new_key[limited] = inf_key + win_col[limited]
        keyed_flat[win_flat] = new_key
        if checkpoint is not None:
            checkpoint.maybe(net, "wave-kernel", _payload)
    return known, parent
