"""Batched message fast path for the CONGEST simulator.

The dict-based :meth:`~repro.congest.network.CongestNetwork.exchange` walks
nested per-message dictionaries to validate locality, compute per-link
loads, and build inboxes; for the k-source BFS/SSSP workloads (Theorem 1.6)
that loop dominates benchmark wall-clock. This module provides a flat,
columnar representation of one synchronous step's traffic:

* :class:`BatchedOutbox` — parallel ``src``/``dst``/``payloads`` columns
  (plus an optional ``words`` column; ``None`` means every message is one
  word, the common case for the paper's O(log n)-bit messages).
* :class:`BatchedInbox` — the delivered view of the same columns, returned
  by ``exchange_batched(batch, grouped=False)`` so hot consumers can iterate
  the message stream directly instead of re-walking nested inbox dicts.
* :func:`fast_path` — the feature-flag / capability gate. Primitives ask it
  once per invocation; it answers ``False`` whenever the batched path could
  change observable behaviour (batching disabled via ``REPRO_BATCH=0``,
  fault injection active, a reliable-exchange wrapper, or a monkey-patched
  ``exchange`` such as :class:`~repro.congest.trace.TraceRecorder`).

Parity contract
---------------
``exchange_batched`` charges rounds and :class:`NetworkStats` *identically*
to ``exchange`` for the same message multiset, and grouped inboxes are
bit-for-bit equal (same nesting, same per-(sender, receiver) payload order)
when the batch is appended in the dict path's emission order. The
property-based suite in ``tests/test_batch.py`` enforces this.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, List, Optional

# Structurally identical to repro.congest.network.Outbox; redeclared here so
# this module stays import-free of network (which imports BatchedInbox).
Outbox = Dict[int, Dict[int, list]]

#: Environment variable gating the fast path; set to ``"0"`` to force every
#: ported primitive back onto the dict-based exchange.
BATCH_ENV = "REPRO_BATCH"

#: Programmatic override installed by :func:`batching`; ``None`` defers to
#: the environment.
_FORCED: Optional[bool] = None


def batching_enabled() -> bool:
    """Whether the batched fast path is globally enabled (default: yes)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(BATCH_ENV, "1") != "0"


@contextlib.contextmanager
def batching(enabled: bool) -> Iterator[None]:
    """Force the fast path on or off within a block (tests, A/B timing)."""
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


def fast_path(net) -> bool:
    """Whether ``net`` should take the batched fast path right now.

    Looked up on ``type(net)`` so duck-typed wrappers without a
    ``batching_supported`` method (e.g. ``ReliableNetwork``'s delegating
    ``__getattr__``) answer ``False`` instead of leaking the capability of
    the network they wrap.
    """
    if not batching_enabled():
        return False
    supported = getattr(type(net), "batching_supported", None)
    return supported is not None and supported(net)


class BatchedOutbox:
    """One synchronous step's outgoing traffic as parallel columns.

    ``src[i]``/``dst[i]``/``payloads[i]`` describe message ``i``; messages
    are delivered (and grouped) in append order, which must equal the order
    the dict path would emit them in for bit-for-bit inbox parity. Hot
    loops may append to the column lists directly — ``send`` exists for
    convenience and for the rare non-unit word size.
    """

    __slots__ = ("src", "dst", "payloads", "words")

    def __init__(self) -> None:
        self.src: List[int] = []
        self.dst: List[int] = []
        self.payloads: List[Any] = []
        #: ``None`` means every message is exactly one word.
        self.words: Optional[List[int]] = None

    def send(self, u: int, v: int, payload: Any, words: int = 1) -> None:
        """Append one message ``u -> v`` of ``words`` words."""
        if words != 1 and self.words is None:
            self.words = [1] * len(self.src)
        self.src.append(u)
        self.dst.append(v)
        self.payloads.append(payload)
        if self.words is not None:
            self.words.append(words)

    def __len__(self) -> int:
        return len(self.src)

    def __bool__(self) -> bool:
        return bool(self.src)

    def clear(self) -> None:
        """Drop all queued messages (reuse across steps)."""
        del self.src[:]
        del self.dst[:]
        del self.payloads[:]
        self.words = None

    def to_outboxes(self) -> Dict[int, Outbox]:
        """The equivalent nested dict outboxes, preserving append order.

        This is the graceful-degrade bridge: a primitive that emits batches
        can still run on a fault-injected or reliable network by handing
        ``net.exchange(batch.to_outboxes())`` the exact same traffic.
        """
        outboxes: Dict[int, Outbox] = {}
        words = self.words
        for i, u in enumerate(self.src):
            v = self.dst[i]
            w = 1 if words is None else words[i]
            by_dst = outboxes.get(u)
            if by_dst is None:
                by_dst = outboxes[u] = {}
            msgs = by_dst.get(v)
            if msgs is None:
                by_dst[v] = [(self.payloads[i], w)]
            else:
                msgs.append((self.payloads[i], w))
        return outboxes


class BatchedInbox:
    """Delivered messages of one step, in columnar form.

    ``src``/``dst``/``payloads`` alias the outbox columns (delivery on a
    fault-free network is total, so the delivered stream *is* the sent
    stream). Iterate with ``zip(inbox.src, inbox.dst, inbox.payloads)``.
    """

    __slots__ = ("src", "dst", "payloads")

    def __init__(self, src: List[int], dst: List[int], payloads: List[Any]):
        self.src = src
        self.dst = dst
        self.payloads = payloads

    def __len__(self) -> int:
        return len(self.src)
