"""Execution tracing: replayable per-step message logs.

Wraps a :class:`~repro.congest.network.CongestNetwork` to record, per
exchange step, who sent how many words to whom. Useful for debugging
algorithm schedules, auditing congestion hot spots, and teaching — the
ASCII timeline shows where an algorithm's rounds actually go.

The recorder is intentionally bounded (``max_events``): algorithms exchange
millions of messages and the trace is a diagnostic tool, not a log of
record. When the budget is exhausted, recording stops and the trace is
marked truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.congest.network import CongestNetwork


@dataclass(frozen=True)
class TraceEvent:
    """One sender -> receiver transmission within a step."""

    step: int
    rounds_before: int
    sender: int
    receiver: int
    messages: int
    words: int


@dataclass
class Trace:
    """Recorded execution trace."""

    events: List[TraceEvent] = field(default_factory=list)
    steps: int = 0
    truncated: bool = False

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """The ``top`` (sender, receiver) pairs by total words."""
        totals: Dict[Tuple[int, int], int] = {}
        for ev in self.events:
            key = (ev.sender, ev.receiver)
            totals[key] = totals.get(key, 0) + ev.words
        return sorted(totals.items(), key=lambda kv: -kv[1])[:top]

    def words_per_step(self) -> List[int]:
        """Total words transmitted in each recorded step."""
        out = [0] * self.steps
        for ev in self.events:
            out[ev.step] += ev.words
        return out

    def timeline_ascii(self, width: int = 50) -> str:
        """Render the per-step traffic volume as an ASCII timeline."""
        volumes = self.words_per_step()
        if not volumes:
            return "(empty trace)"
        peak = max(volumes) or 1
        lines = []
        for step, words in enumerate(volumes):
            bar = "#" * max(1 if words else 0, round(width * words / peak))
            lines.append(f"step {step:>4} | {bar} {words}")
        if self.truncated:
            lines.append("(trace truncated)")
        return "\n".join(lines)


class TraceRecorder:
    """Attach to a network to record its exchange steps.

    Usage::

        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net, max_events=10_000) as trace:
            bfs(net, 0)
        print(trace.timeline_ascii())
    """

    def __init__(self, net: CongestNetwork, max_events: int = 100_000):
        self.net = net
        self.trace = Trace()
        self.max_events = max_events
        # On a fault-injected network, hook the post-fault delivery method
        # so the trace shows what actually went out on the wire (dropped
        # and crash-suppressed messages never appear).
        self._attr = "deliver" if hasattr(net, "deliver") else "exchange"
        # Remember whether the method was already instance-patched so detach
        # can restore that exact state: re-setattr-ing a bound method would
        # otherwise pin it in __dict__ forever, which (besides being untidy)
        # reads as "still hooked" to the batched-exchange fast-path gate.
        self._was_instance_patched = self._attr in net.__dict__
        self._original_exchange = getattr(net, self._attr)

    def __enter__(self) -> Trace:
        setattr(self.net, self._attr, self._recording_exchange)
        return self.trace

    def __exit__(self, *exc) -> None:
        self.detach()

    def _recording_exchange(self, outboxes):
        step = self.trace.steps
        rounds_before = self.net.rounds
        self.trace.steps += 1
        for u, outbox in outboxes.items():
            for v, msgs in outbox.items():
                if not msgs:
                    continue
                if len(self.trace.events) >= self.max_events:
                    self.trace.truncated = True
                    break
                self.trace.events.append(TraceEvent(
                    step=step,
                    rounds_before=rounds_before,
                    sender=u,
                    receiver=v,
                    messages=len(msgs),
                    words=sum(w for _, w in msgs),
                ))
        return self._original_exchange(outboxes)

    def detach(self) -> None:
        """Restore the network's original exchange/deliver method."""
        if self._was_instance_patched:
            setattr(self.net, self._attr, self._original_exchange)
        else:
            self.net.__dict__.pop(self._attr, None)
