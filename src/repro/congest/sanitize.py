"""Opt-in runtime sanitizer for the CONGEST model contracts.

``REPRO_SANITIZE=1`` (or the :func:`sanitizing` scope) arms cheap
cross-checks inside ``CongestNetwork.exchange`` / ``exchange_batched``
that re-derive, with independent scalar code, what the engines computed
vectorized — the dynamic counterpart of congestlint's static rules:

* **bandwidth**: per-physical-link word loads are recomputed from
  ``_host``/``_comm`` with a plain dict walk and compared against the
  engine's ``max_load``; in strict mode no load may exceed the bandwidth.
* **word width**: every payload's information content must fit the words
  declared for it, with a word worth ``8 * max(8, ceil(log2 n))`` bits —
  a generous Θ(log n) so only genuine unbounded-payload bugs trip it.
  Protocol tag strings count O(1) bits (finite alphabet); see
  :func:`payload_bits`.
* **traffic totals**: message and word counts recomputed scalar-side must
  match what the engine charged to :class:`NetworkStats`.
* **phase partition**: with metrics on, bucket sums must equal the flat
  counters exactly (the repro.obs exactness contract).

The sanitizer never changes accounting: it runs after the engine has
charged the step and raises :class:`SanitizeViolation` on mismatch, so a
sanitized run is bit-identical to an unsanitized one whenever it passes.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

#: Environment switch, mirroring REPRO_BATCH / REPRO_KERNELS / REPRO_METRICS.
SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}

#: Programmatic override installed by :func:`sanitizing` (None = env decides).
_FORCED: Optional[bool] = None


class SanitizeViolation(RuntimeError):
    """A runtime CONGEST-model contract check failed."""


def sanitize_enabled() -> bool:
    """Whether the runtime sanitizer is armed."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


@contextmanager
def sanitizing(enabled: bool = True) -> Iterator[None]:
    """Scope forcing the sanitizer on (or off) regardless of environment."""
    global _FORCED
    prev = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = prev


def word_bits(n: int) -> int:
    """Bits one O(log n)-bit word may carry on an n-vertex network.

    The constant (8×, floor 64) is deliberately loose: the check exists to
    catch payloads whose size *grows* with the data (a dict of k entries
    squeezed into one word), not to police constant factors.
    """
    return 8 * max(8, max(1, n).bit_length())


def payload_bits(payload: object) -> int:
    """Lower-bound information content of ``payload`` in bits.

    Modeling choices (all lower bounds, to avoid false positives):
    integers cost their bit length + sign; integer-valued floats cost the
    integer's bits; non-integer floats cost 32 (truncatable mantissa);
    ``inf``/``nan`` are O(1) sentinels; strings cost O(1) because message
    tags come from a fixed protocol alphabet; containers add 2 bits of
    structure per element.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, np.integer)):
        return max(1, int(payload).bit_length()) + 1
    if isinstance(payload, (float, np.floating)):
        value = float(payload)
        if math.isinf(value) or math.isnan(value):
            return 2
        if value == int(value) and abs(value) < 2 ** 53:
            return max(1, int(value).bit_length()) + 1
        return 32
    if isinstance(payload, str):
        return 8
    if isinstance(payload, (tuple, list, set, frozenset)):
        return max(2, sum(1 + payload_bits(item) for item in payload))
    if isinstance(payload, dict):
        return max(2, sum(2 + payload_bits(k) + payload_bits(v)
                          for k, v in payload.items()))
    if isinstance(payload, np.ndarray):
        return max(2, 32 * int(payload.size))
    return 64  # opaque object: charge one generous word


def check_payload_width(payload: object, words: int, n: int) -> None:
    """Raise if ``payload`` cannot fit in ``words`` O(log n)-bit words."""
    budget = max(1, words) * word_bits(n)
    need = payload_bits(payload)
    if need > budget:
        raise SanitizeViolation(
            f"payload needs >= {need} bits but is charged {words} word(s) "
            f"= {budget} bits on an n={n} network; congestlint CL004 class "
            f"violation (payload: {type(payload).__name__})")


def verify_step(
    net,
    messages: Iterable[Tuple[int, int, object, int]],
    reported_max_load: int,
    reported_messages: int,
    reported_words: int,
    engine: str,
) -> None:
    """Re-derive one exchange step scalar-side and compare to the engine.

    ``messages`` yields ``(u, v, payload, words)`` in emission order. The
    recompute uses only ``_host``/``_comm`` — none of the link-index
    machinery the batched engines rely on — so an indexing bug cannot hide
    from its own checker.
    """
    n = net.n
    host = net._host
    comm = net._comm
    loads: Dict[Tuple[int, int], int] = {}
    n_msgs = 0
    n_words = 0
    for u, v, payload, words in messages:
        if v not in comm[u]:
            raise SanitizeViolation(
                f"[{engine}] message {u}->{v} crosses a non-edge yet was "
                f"delivered; locality validation is broken")
        check_payload_width(payload, words, n)
        n_msgs += 1
        n_words += words
        hu, hv = host[u], host[v]
        if hu != hv:
            loads[(hu, hv)] = loads.get((hu, hv), 0) + words
    max_load = max(loads.values(), default=0)
    if max_load != reported_max_load:
        raise SanitizeViolation(
            f"[{engine}] engine charged max link load {reported_max_load} "
            f"but scalar recompute finds {max_load}")
    if n_msgs != reported_messages or n_words != reported_words:
        raise SanitizeViolation(
            f"[{engine}] engine recorded {reported_messages} messages / "
            f"{reported_words} words; scalar recompute finds {n_msgs} / "
            f"{n_words}")
    if net.strict and max_load > net.bandwidth:
        raise SanitizeViolation(
            f"[{engine}] link load {max_load} exceeds bandwidth "
            f"{net.bandwidth} but the engine did not reject the step")


def verify_phase_partition(net) -> None:
    """Assert phase buckets exactly partition the flat counters.

    Flushing mid-phase is attribution-neutral: the pending delta belongs
    to the currently open bucket either way (only wall-seconds attribution
    shifts, which nothing asserts on).
    """
    acc = net._phases
    if acc is None:
        return
    acc.flush(net._phase_snapshot())
    totals = [0, 0, 0, 0]
    for stats in acc.stats.values():
        totals[0] += stats.rounds
        totals[1] += stats.steps
        totals[2] += stats.messages
        totals[3] += stats.words
    flat = (net.rounds, net.stats.steps, net.stats.messages, net.stats.words)
    if tuple(totals) != flat:
        raise SanitizeViolation(
            "phase buckets do not partition the flat counters: buckets sum "
            f"to (rounds={totals[0]}, steps={totals[1]}, "
            f"messages={totals[2]}, words={totals[3]}) but the network "
            f"holds (rounds={flat[0]}, steps={flat[1]}, messages={flat[2]}, "
            f"words={flat[3]})")
