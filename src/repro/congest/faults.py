"""Deterministic fault injection for the CONGEST simulator.

The paper's CONGEST model assumes perfectly reliable synchronous links;
this module relaxes that assumption in a controlled, *replayable* way so
algorithms can be hardened (and chaos-tested) against:

* **message drops** — each attempted transmission is lost independently
  with probability ``drop_rate``;
* **link outages** — scheduled intervals of rounds during which a specific
  link delivers nothing in either (or one) direction;
* **fail-stop node crashes** — from its crash round on, a node neither
  sends nor receives; an optional recovery round brings it back with its
  state intact (crash-recovery semantics);
* **duplication** — a message is delivered twice with probability
  ``duplicate_rate`` (e.g. a retransmitting NIC whose ack was lost);
* **corruption** — a message is delivered with its payload wrapped in
  :class:`Corrupted` with probability ``corrupt_rate``. Receivers model
  checksums by discarding :class:`Corrupted` payloads they can detect.

Determinism
-----------
All probabilistic faults are drawn from a dedicated generator derived from
the network seed (independent of ``net.rng``, so algorithm randomness and
fault randomness never interleave). Messages are processed in sorted
``(sender, receiver, index)`` order regardless of outbox dict ordering.
Hence: same graph + seed + :class:`FaultPlan` ⇒ identical faults,
identical :class:`FaultStats`, identical rounds — the property the chaos
test suite and the no-fault transparency test rely on.

Accounting model
----------------
Dropped/suppressed messages are removed *before* delivery, so they consume
no link bandwidth (the loss is modeled at the sender's NIC); duplicated
messages consume double. Round accounting and :class:`NetworkStats` are
computed by the wrapped :meth:`CongestNetwork.exchange` over the traffic
that actually goes out on the wire. The full attempted outbox set is still
validated for locality and word sanity first — faults never mask a buggy
algorithm. See ``docs/fault_model.md`` for the taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.congest.network import CongestNetwork, Inbox, Outbox
from repro.graphs.graph import Graph, GraphError

#: Domain-separation constant mixed into the fault RNG seed so fault draws
#: never collide with ``net.rng`` / ``node_rng`` streams.
_FAULT_STREAM = 0xFA0175


@dataclass(frozen=True)
class Corrupted:
    """Delivered payload whose content was damaged in transit.

    Receivers that model checksums should treat a ``Corrupted`` payload as
    undelivered (the resilient primitives do); receivers that ignore it see
    garbage — which is the point of injecting it.
    """

    original: Any = None


@dataclass(frozen=True)
class LinkOutage:
    """Link ``(u, v)`` delivers nothing during rounds ``[start, end)``.

    ``symmetric`` (default) silences both directions; otherwise only
    ``u -> v`` traffic is affected. ``end=None`` means the outage is
    permanent.
    """

    u: int
    v: int
    start: int = 0
    end: Optional[int] = None

    symmetric: bool = True

    def __post_init__(self):
        if self.u == self.v:
            raise GraphError("a link outage needs two distinct endpoints")
        if self.start < 0 or (self.end is not None and self.end <= self.start):
            raise GraphError(
                f"outage interval [{self.start}, {self.end}) is empty or negative"
            )

    def silences(self, sender: int, receiver: int, at_round: int) -> bool:
        """Whether this outage drops a ``sender -> receiver`` message now."""
        if at_round < self.start or (self.end is not None and at_round >= self.end):
            return False
        if (sender, receiver) == (self.u, self.v):
            return True
        return self.symmetric and (sender, receiver) == (self.v, self.u)


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of ``node`` at round ``at_round``.

    While crashed the node neither sends nor receives. If
    ``recover_round`` is set, the node rejoins (with its pre-crash state —
    crash-recovery, not amnesia) from that round on.
    """

    node: int
    at_round: int = 0
    recover_round: Optional[int] = None

    def __post_init__(self):
        if self.at_round < 0:
            raise GraphError("crash round must be non-negative")
        if self.recover_round is not None and self.recover_round <= self.at_round:
            raise GraphError("recovery must come strictly after the crash")

    def crashed_at(self, at_round: int) -> bool:
        """Whether the node is down at ``at_round``."""
        if at_round < self.at_round:
            return False
        return self.recover_round is None or at_round < self.recover_round


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every fault to inject into a run.

    An all-default plan injects nothing and is fully transparent: a
    :class:`FaultyNetwork` with a zero plan produces byte-identical results
    and round counts to a plain :class:`CongestNetwork`.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    link_outages: Tuple[LinkOutage, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()

    def __post_init__(self):
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise GraphError(f"{name} must be a probability, got {rate}")
        # Accept any sequence but store canonical tuples (the plan is a
        # value object: hashable, safely shared between runs).
        object.__setattr__(self, "link_outages", tuple(self.link_outages))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        seen = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise GraphError(f"node {crash.node} has more than one crash entry")
            seen.add(crash.node)

    def is_zero(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.link_outages
            and not self.crashes
        )

    @property
    def randomized(self) -> bool:
        """Whether any fault category needs random draws."""
        return bool(self.drop_rate or self.duplicate_rate or self.corrupt_rate)

    def with_drop_rate(self, drop_rate: float) -> "FaultPlan":
        """A copy of this plan with ``drop_rate`` replaced (sweep helper)."""
        return replace(self, drop_rate=drop_rate)


@dataclass
class FaultStats:
    """What the fault layer did to the traffic, message by message.

    ``attempted_*`` count everything handed to :meth:`FaultyNetwork.exchange`
    by the algorithm; the categories below partition the attempts that never
    made it onto the wire. ``delivered_words`` includes duplicate copies.
    """

    attempted_messages: int = 0
    attempted_words: int = 0
    dropped_messages: int = 0
    dropped_words: int = 0
    outage_messages: int = 0
    outage_words: int = 0
    suppressed_messages: int = 0
    suppressed_words: int = 0
    duplicated_messages: int = 0
    duplicated_words: int = 0
    corrupted_messages: int = 0
    corrupted_words: int = 0
    delivered_messages: int = 0
    delivered_words: int = 0
    #: Rounds (at step start) in which at least one fault fired.
    faulty_steps: int = 0

    def lost_messages(self) -> int:
        """Attempts that were never delivered, for any reason."""
        return self.dropped_messages + self.outage_messages + self.suppressed_messages

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for benchmark persistence."""
        return {
            "attempted_messages": self.attempted_messages,
            "attempted_words": self.attempted_words,
            "dropped_messages": self.dropped_messages,
            "dropped_words": self.dropped_words,
            "outage_messages": self.outage_messages,
            "outage_words": self.outage_words,
            "suppressed_messages": self.suppressed_messages,
            "suppressed_words": self.suppressed_words,
            "duplicated_messages": self.duplicated_messages,
            "duplicated_words": self.duplicated_words,
            "corrupted_messages": self.corrupted_messages,
            "corrupted_words": self.corrupted_words,
            "delivered_messages": self.delivered_messages,
            "delivered_words": self.delivered_words,
            "faulty_steps": self.faulty_steps,
        }


class FaultyNetwork(CongestNetwork):
    """A :class:`CongestNetwork` whose links obey a :class:`FaultPlan`.

    Drop-in replacement: every algorithm in the repository runs unchanged
    on a ``FaultyNetwork`` (with a zero plan, identically so). Faults are
    applied between the algorithm's outboxes and the underlying delivery;
    what survives is delivered — and accounted — by the base exchange.

    Use :func:`repro.congest.primitives.reliable.reliable_exchange` (or the
    ``reliable_*`` primitive wrappers) on top of this class to mask
    message-level faults with acks and retransmissions.
    """

    def __init__(
        self,
        graph: Graph,
        plan: Optional[FaultPlan] = None,
        bandwidth: int = 1,
        host: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        strict: bool = False,
        max_rounds: Optional[int] = None,
        metrics: Optional[bool] = None,
    ):
        super().__init__(graph, bandwidth=bandwidth, host=host, seed=seed,
                         strict=strict, max_rounds=max_rounds, metrics=metrics)
        self.plan = plan if plan is not None else FaultPlan()
        for outage in self.plan.link_outages:
            if not (0 <= outage.u < graph.n and 0 <= outage.v < graph.n):
                raise GraphError(f"outage names vertex outside the graph: {outage}")
        for crash in self.plan.crashes:
            if not 0 <= crash.node < graph.n:
                raise GraphError(f"crash names vertex outside the graph: {crash}")
        self.fault_stats = FaultStats()
        base = seed if seed is not None else 0
        self._fault_rng = np.random.default_rng((_FAULT_STREAM, base))
        self._crash_by_node = {c.node: c for c in self.plan.crashes}
        # live_nodes() memo: (rounds when computed, live vertex list).
        self._live_cache: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def batching_supported(self) -> bool:
        """Fast path only when no fault can fire.

        An active :class:`FaultPlan` must see (and may mutate) every
        message, so ported primitives degrade gracefully to the dict-based
        ``exchange``; a zero plan is fully transparent, making the batched
        step byte-identical to the faulted one.
        """
        return (
            self.plan.is_zero()
            and "exchange" not in self.__dict__
            and "deliver" not in self.__dict__
        )

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def is_crashed(self, v: int, at_round: Optional[int] = None) -> bool:
        """Whether vertex ``v`` is down (at ``at_round``; default: now)."""
        crash = self._crash_by_node.get(v)
        if crash is None:
            return False
        return crash.crashed_at(self.rounds if at_round is None else at_round)

    def live_nodes(self) -> List[int]:
        """Vertices currently alive, memoized per round counter value.

        Liveness only changes when ``self.rounds`` does, so per-round
        callers (quiescence checks, per-step program drivers) share one
        list instead of re-testing every vertex. Callers must treat the
        returned list as read-only.
        """
        if not self._crash_by_node:
            return list(range(self.n))
        cached = self._live_cache
        if cached is not None and cached[0] == self.rounds:
            return cached[1]
        live = [v for v in range(self.n) if not self.is_crashed(v)]
        self._live_cache = (self.rounds, live)
        return live

    # ------------------------------------------------------------------
    # Faulted exchange
    # ------------------------------------------------------------------
    def exchange(self, outboxes: Dict[int, Outbox]) -> Dict[int, Inbox]:
        """Apply the fault plan to ``outboxes``, then deliver the survivors.

        The *attempted* traffic is validated in full first (locality and
        word sizes) — injected faults must never hide an algorithm bug.
        """
        self.validate_outboxes(outboxes)
        if self.plan.is_zero():
            return self.deliver(outboxes)
        survivors = self._apply_faults(outboxes)
        return self.deliver(survivors)

    def deliver(self, outboxes: Dict[int, Outbox]) -> Dict[int, Inbox]:
        """Deliver already-faulted traffic via the base synchronous step.

        Exposed as a separate method so diagnostics (the trace recorder)
        can observe what actually went out on the wire rather than what the
        algorithm attempted to send.
        """
        return CongestNetwork.exchange(self, outboxes)

    def _apply_faults(self, outboxes: Dict[int, Outbox]) -> Dict[int, Outbox]:
        at_round = self.rounds
        stats = self.fault_stats
        rng = self._fault_rng
        plan = self.plan
        faults_before = (stats.dropped_messages + stats.outage_messages
                         + stats.suppressed_messages + stats.duplicated_messages
                         + stats.corrupted_messages)
        survivors: Dict[int, Outbox] = {}
        # Deterministic processing order, independent of dict insertion order.
        for u in sorted(outboxes):
            u_crashed = self.is_crashed(u, at_round)
            for v in sorted(outboxes[u]):
                msgs = outboxes[u][v]
                if not msgs:
                    continue
                v_crashed = self.is_crashed(v, at_round)
                kept: List[Tuple[Any, int]] = []
                for payload, w in msgs:
                    stats.attempted_messages += 1
                    stats.attempted_words += w
                    if u_crashed or v_crashed:
                        stats.suppressed_messages += 1
                        stats.suppressed_words += w
                        continue
                    if any(o.silences(u, v, at_round) for o in plan.link_outages):
                        stats.outage_messages += 1
                        stats.outage_words += w
                        continue
                    if plan.drop_rate and rng.random() < plan.drop_rate:
                        stats.dropped_messages += 1
                        stats.dropped_words += w
                        continue
                    if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
                        stats.corrupted_messages += 1
                        stats.corrupted_words += w
                        payload = Corrupted(payload)
                    copies = 1
                    if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
                        stats.duplicated_messages += 1
                        stats.duplicated_words += w
                        copies = 2
                    for _ in range(copies):
                        kept.append((payload, w))
                        stats.delivered_messages += 1
                        stats.delivered_words += w
                if kept:
                    survivors.setdefault(u, {})[v] = kept
        faults_after = (stats.dropped_messages + stats.outage_messages
                        + stats.suppressed_messages + stats.duplicated_messages
                        + stats.corrupted_messages)
        if faults_after > faults_before:
            stats.faulty_steps += 1
        return survivors

    def reset_accounting(self) -> None:
        """Zero rounds, traffic stats, *and* fault stats (state is kept)."""
        super().reset_accounting()
        self.fault_stats = FaultStats()

    def __repr__(self) -> str:
        return (
            f"FaultyNetwork(n={self.n}, bandwidth={self.bandwidth}, "
            f"rounds={self.rounds}, lost={self.fault_stats.lost_messages()})"
        )
