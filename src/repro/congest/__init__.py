"""CONGEST model simulator.

The simulator executes synchronous message-passing algorithms on a network
whose topology is the underlying undirected graph of the input
:class:`~repro.graphs.graph.Graph` (communication links are bidirectional
even for directed inputs, per the paper's §1.1 convention).

Round accounting
----------------
Each :meth:`CongestNetwork.exchange` call is one synchronous *step*. The
round counter advances by ``max(1, ceil(L / B))`` where ``L`` is the largest
per-direction word load on any physical link in that step and ``B`` is the
link bandwidth in Θ(log n)-bit words. A step whose messages all fit in the
bandwidth is exactly one CONGEST round; a step with per-link load ``L``
corresponds to ``ceil(L / B)`` rounds of the standard pipelined simulation.
Primitives that claim per-round bandwidth bounds (the pipelined broadcast,
multi-source BFS, ...) are tested in ``strict`` mode, where exceeding the
bandwidth raises instead of charging extra rounds.

Virtual hosting
---------------
For the paper's *stretched graph* simulation (§4), several virtual vertices
may be hosted on one physical node. Messages between co-hosted vertices are
delivered with the usual one-step latency (synchrony is preserved) but
consume no link bandwidth, matching the paper's "simulate all but the last
edge of the path at one of the endpoints".

Fault injection
---------------
:mod:`repro.congest.faults` relaxes the reliable-link assumption: a
declarative :class:`FaultPlan` (drops, link outages, fail-stop crashes,
duplication, corruption) applied deterministically from the network seed
by :class:`FaultyNetwork`. The resilient counterparts — ack-and-retransmit
reliable rounds — live in :mod:`repro.congest.primitives.reliable`; the
fault taxonomy and determinism guarantees are documented in
``docs/fault_model.md``.
"""

from repro.congest.faults import (
    Corrupted,
    FaultPlan,
    FaultStats,
    FaultyNetwork,
    LinkOutage,
    NodeCrash,
)
from repro.congest.kernels import kernel_path, kernels, kernels_enabled
from repro.congest.network import (
    BandwidthExceeded,
    CongestNetwork,
    LocalityViolation,
    NetworkStats,
    RoundBudgetExceeded,
    round_budget,
)

__all__ = [
    "CongestNetwork",
    "BandwidthExceeded",
    "LocalityViolation",
    "NetworkStats",
    "RoundBudgetExceeded",
    "round_budget",
    "kernel_path",
    "kernels",
    "kernels_enabled",
    "Corrupted",
    "FaultPlan",
    "FaultStats",
    "FaultyNetwork",
    "LinkOutage",
    "NodeCrash",
]
