"""Synchronous CONGEST network simulator with exact round accounting."""

from __future__ import annotations

import contextlib
import contextvars
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.congest.batch import BatchedInbox
from repro.congest.sanitize import (
    sanitize_enabled,
    verify_phase_partition,
    verify_step,
)
from repro.graphs.graph import Graph, GraphError
from repro.obs.phases import NULL_PHASE, PhaseAccumulator
from repro.obs.registry import metrics_enabled

#: An outbox maps each destination vertex to a list of (payload, words) pairs.
Outbox = Dict[int, List[Tuple[Any, int]]]
#: An inbox maps each source vertex to the list of payloads received from it.
Inbox = Dict[int, List[Any]]

# Batches at or below this size take the scalar accounting path in
# exchange_batched; above it, the vectorized numpy path wins.
_SCALAR_BATCH_LIMIT = 64


class BandwidthExceeded(RuntimeError):
    """Raised in strict mode when a step overloads a physical link."""


class LocalityViolation(RuntimeError):
    """Raised when a node sends to a vertex it has no link to."""


class RoundBudgetExceeded(RuntimeError):
    """Raised when an execution exceeds its CONGEST round budget.

    Replaces silent non-termination: a misbehaving algorithm (or one starved
    by injected faults) fails loudly instead of looping forever. Subclasses
    :class:`RuntimeError` for backward compatibility with callers that
    caught the old generic error.
    """


#: Ambient round budget applied to networks built while :func:`round_budget`
#: is active (used by the CLI's ``--max-rounds`` flag).
_AMBIENT_ROUND_BUDGET: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_round_budget", default=None
)


@contextlib.contextmanager
def round_budget(limit: Optional[int]) -> Iterator[None]:
    """Apply ``limit`` as the default ``max_rounds`` of networks built inside.

    Algorithm entry points construct their own :class:`CongestNetwork`; this
    context manager lets a driver (e.g. the CLI) bound all of them without
    threading a parameter through every signature. ``None`` is a no-op.
    """
    token = _AMBIENT_ROUND_BUDGET.set(limit)
    try:
        yield
    finally:
        _AMBIENT_ROUND_BUDGET.reset(token)


@dataclass
class NetworkStats:
    """Aggregate traffic statistics, for ablations and congestion analysis."""

    steps: int = 0
    messages: int = 0
    words: int = 0
    local_messages: int = 0
    max_link_load: int = 0
    #: Histogram of per-step maximum link load (load value -> step count).
    #: A Counter (dict subclass, so equality with plain dicts still holds)
    #: for O(1) missing-key updates on the exchange hot path.
    link_load_histogram: Counter = field(default_factory=Counter)

    def record_step(self, max_load: int) -> None:
        """Record one exchange step's maximum per-link load."""
        self.steps += 1
        if max_load > self.max_link_load:
            self.max_link_load = max_load
        self.link_load_histogram[max_load] += 1


class CongestNetwork:
    """A CONGEST network over the communication topology of ``graph``.

    Parameters
    ----------
    graph:
        The input graph (directed or undirected, weighted or unweighted).
        The physical topology is its underlying undirected graph, after
        applying ``host`` if given.
    bandwidth:
        Link bandwidth per direction per round, in Θ(log n)-bit words.
    host:
        Optional mapping (sequence of length ``graph.n``) from vertex to
        *physical node id*. Co-hosted vertices exchange messages for free.
        Defaults to the identity (every vertex is its own processor).
    seed:
        Seed for the network RNG. CONGEST permits shared randomness for the
        algorithms in this paper; nodes draw from per-node generators derived
        from this seed so runs are reproducible.
    strict:
        If True, any step whose per-link word load exceeds ``bandwidth``
        raises :class:`BandwidthExceeded` instead of charging extra rounds.
    max_rounds:
        Optional hard budget on the round counter. Once an exchange (or
        :meth:`charge_rounds`) pushes ``rounds`` past this limit,
        :class:`RoundBudgetExceeded` is raised. Defaults to the ambient
        budget installed by :func:`round_budget` (``None`` = unbounded).
    metrics:
        Whether to track per-phase round/traffic attribution (see
        :meth:`phase` and :mod:`repro.obs`). Defaults to the ambient
        observability setting (``REPRO_METRICS`` /
        :func:`repro.obs.observing`). Tracking works by differencing the
        counters this class maintains anyway, so it never perturbs rounds,
        stats, or algorithm results.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth: int = 1,
        host: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        strict: bool = False,
        max_rounds: Optional[int] = None,
        metrics: Optional[bool] = None,
    ):
        if graph.n == 0:
            raise GraphError("cannot build a network on an empty graph")
        if not graph.is_connected():
            raise GraphError("CONGEST requires a connected communication graph")
        if bandwidth < 1:
            raise GraphError(f"bandwidth must be >= 1 word, got {bandwidth}")
        self.graph = graph
        self.n = graph.n
        self.bandwidth = bandwidth
        self.strict = strict
        if max_rounds is None:
            max_rounds = _AMBIENT_ROUND_BUDGET.get()
        if max_rounds is not None and max_rounds < 1:
            raise GraphError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds
        if host is None:
            self._host = list(range(graph.n))
            self._identity_host = True
        else:
            if len(host) != graph.n:
                raise GraphError("host map must cover every vertex")
            self._host = [int(h) for h in host]
            self._identity_host = self._host == list(range(graph.n))
        # Communication neighbors per vertex (underlying undirected).
        self._comm: List[frozenset] = [frozenset(graph.neighbors(v)) for v in range(graph.n)]
        # Ascending-order views of _comm, built lazily: emission loops must
        # iterate deterministically (frozenset order is a hash-layout
        # accident), and sorting once here beats sorting per round.
        self._comm_sorted: List[Optional[Tuple[int, ...]]] = [None] * graph.n
        self.rounds = 0
        self.stats = NetworkStats()
        #: Per-node private key/value storage; algorithm code must only read
        #: ``state[v]`` while acting on behalf of vertex ``v``.
        self.state: List[Dict[str, Any]] = [dict() for _ in range(graph.n)]
        self._seed = seed
        self.rng = np.random.default_rng(seed)
        # Per-vertex generator cache (see node_rng) and the lazily built
        # link index backing the batched fast path (see exchange_batched).
        self._node_rngs: Dict[int, Tuple[np.random.Generator, dict]] = {}
        self._batch_index: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._pair_link_map: Dict[int, int] = {}
        # Phase-scoped observability (repro.obs): None while disabled, so
        # the only cost a metrics-off run pays is this attribute check in
        # phase() — the exchange hot path is untouched either way.
        if metrics is None:
            metrics = metrics_enabled()
        self._phases: Optional[PhaseAccumulator] = (
            PhaseAccumulator(self._phase_snapshot()) if metrics else None
        )

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def comm_neighbors(self, v: int) -> frozenset:
        """Communication (bidirectional) neighbors of vertex ``v``."""
        return self._comm[v]

    def comm_neighbors_sorted(self, v: int) -> Tuple[int, ...]:
        """Communication neighbors of ``v`` in ascending vertex order.

        Emission loops must use this (or ``sorted``) rather than iterating
        the raw frozenset: set iteration order depends on hash-table
        layout, and any order leak into the message stream breaks replay
        determinism and scalar/kernel bit-parity (congestlint CL003).
        """
        cached = self._comm_sorted[v]
        if cached is None:
            cached = tuple(sorted(self._comm[v]))
            self._comm_sorted[v] = cached
        return cached

    def host_of(self, v: int) -> int:
        """Physical node id that simulates vertex ``v``."""
        return self._host[v]

    def node_rng(self, v: int) -> np.random.Generator:
        """Deterministic per-vertex generator derived from the network seed.

        Every call observes a generator in its seed-fresh state (callers in
        per-vertex loops rely on draws being independent of earlier calls
        for the same vertex), but the expensive ``SeedSequence`` hashing and
        bit-generator construction happen only once per vertex: later calls
        rewind the cached generator to its initial state instead.
        """
        entry = self._node_rngs.get(v)
        if entry is None:
            base = self._seed if self._seed is not None else 0
            gen = np.random.default_rng((base, v))
            self._node_rngs[v] = (gen, gen.bit_generator.state)
            return gen
        gen, state = entry
        gen.bit_generator.state = state
        return gen

    def diameter_upper_bound(self) -> int:
        """Eccentricity of vertex 0, a ≤ 2D upper bound known to all nodes.

        Computing an eccentricity takes O(D) rounds by BFS + convergecast;
        callers that need the charge should use
        :func:`repro.congest.primitives.flood.build_bfs_tree`.
        """
        return self.graph.undirected_eccentricity(0)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def validate_outboxes(self, outboxes: Dict[int, Outbox]) -> None:
        """Check every message of ``outboxes`` for locality and word sanity.

        Runs *before* any inbox is built or any counter is touched, so a
        violation anywhere in the step leaves the network untouched (no
        partially-delivered, half-accounted state). Also used by the fault
        layer, which must validate attempted traffic it then drops.
        """
        for u, outbox in outboxes.items():
            comm_u = self._comm[u]
            for v, msgs in outbox.items():
                if v not in comm_u:
                    raise LocalityViolation(
                        f"vertex {u} attempted to send to non-neighbor {v}"
                    )
                for _payload, w in msgs:
                    if w < 0:
                        raise ValueError("message word size must be non-negative")

    def exchange(self, outboxes: Dict[int, Outbox]) -> Dict[int, Inbox]:
        """Run one synchronous step delivering all ``outboxes``.

        ``outboxes[u][v]`` is the list of ``(payload, words)`` messages sent
        by vertex ``u`` to vertex ``v``; ``v`` must be a communication
        neighbor of ``u``. Returns inboxes: ``inbox[v][u]`` is the list of
        payloads ``v`` received from ``u`` (in send order).

        Advances the round counter by ``max(1, ceil(L / bandwidth))`` where
        ``L`` is the maximum per-direction physical link load in words.
        The whole step is validated up front: a :class:`LocalityViolation`
        (or a negative word size) anywhere aborts the step before any
        delivery or accounting happens.
        """
        self.validate_outboxes(outboxes)
        link_load: Dict[Tuple[int, int], int] = {}
        inboxes: Dict[int, Inbox] = {}
        n_msgs = 0
        n_words = 0
        n_local = 0
        for u, outbox in outboxes.items():
            host_u = self._host[u]
            for v, msgs in outbox.items():
                if not msgs:
                    continue
                words = sum(w for _payload, w in msgs)
                n_msgs += len(msgs)
                n_words += words
                if self._host[v] == host_u:
                    n_local += len(msgs)
                else:
                    key = (host_u, self._host[v])
                    link_load[key] = link_load.get(key, 0) + words
                inboxes.setdefault(v, {}).setdefault(u, []).extend(
                    payload for payload, _ in msgs
                )
        max_load = max(link_load.values(), default=0)
        if self.strict and max_load > self.bandwidth:
            # Reuse the max just computed: a single early-exit scan finds
            # the offending link instead of a second full key-wise max.
            offender = next(k for k, v in link_load.items() if v == max_load)
            raise BandwidthExceeded(
                f"link {offender} carried {max_load} words; bandwidth is {self.bandwidth}"
            )
        self.rounds += max(1, -(-max_load // self.bandwidth))
        self.stats.record_step(max_load)
        self.stats.messages += n_msgs
        self.stats.words += n_words
        self.stats.local_messages += n_local
        self._check_round_budget()
        if sanitize_enabled():
            verify_step(
                self,
                ((u, v, payload, w)
                 for u, outbox in outboxes.items()
                 for v, msgs in outbox.items()
                 for payload, w in msgs),
                max_load, n_msgs, n_words, engine="dict")
            verify_phase_partition(self)
        return inboxes

    # ------------------------------------------------------------------
    # Batched fast path (see repro.congest.batch)
    # ------------------------------------------------------------------
    def batching_supported(self) -> bool:
        """Whether ``exchange_batched`` is behaviourally safe on this network.

        False once ``exchange`` has been monkey-patched on the instance
        (e.g. by a :class:`~repro.congest.trace.TraceRecorder`): the batched
        path would bypass the hook. Fault-injected subclasses override this
        to force the dict path whenever a fault plan is active.
        """
        return "exchange" not in self.__dict__

    def _link_index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Lazily built columnar index of the communication links.

        Returns ``(pair_keys, pair_link, link_hosts)``: ``pair_keys`` holds
        every legal directed sender/receiver pair encoded as ``u * n + v``
        (sorted, for searchsorted lookup); ``pair_link[i]`` is the physical
        host-pair link id of that pair, or ``-1`` when the endpoints are
        co-hosted (free local delivery); ``link_hosts[lid]`` is the
        ``(host_u, host_v)`` pair of link ``lid`` for error reporting.

        With the default identity host map the index depends only on the
        topology, so it is cached on the graph object and shared by every
        network built on it.
        """
        if self._batch_index is not None:
            return self._batch_index
        if self._identity_host:
            index, pair_map = self.graph.cached(
                "link_index", self._build_link_index)
        else:
            index, pair_map = self._build_link_index()
        self._batch_index = index
        self._pair_link_map = pair_map
        return index

    def _build_link_index(self):
        n = self.n
        host = self._host
        pair_keys: List[int] = []
        pair_link: List[int] = []
        link_ids: Dict[Tuple[int, int], int] = {}
        for u in range(n):
            host_u = host[u]
            for v in self._comm[u]:
                host_v = host[v]
                if host_u == host_v:
                    lid = -1
                else:
                    lid = link_ids.setdefault((host_u, host_v), len(link_ids))
                pair_keys.append(u * n + v)
                pair_link.append(lid)
        keys = np.asarray(pair_keys, dtype=np.int64)
        links = np.asarray(pair_link, dtype=np.int64)
        order = np.argsort(keys)
        hosts = np.empty((max(1, len(link_ids)), 2), dtype=np.int64)
        for (host_u, host_v), lid in link_ids.items():
            hosts[lid] = (host_u, host_v)
        # Scalar twin of the columnar index, for batches too small to
        # amortize numpy call overhead.
        pair_map = dict(zip(pair_keys, pair_link))
        return (keys[order], links[order], hosts), pair_map

    def exchange_batched(self, batch, grouped: bool = True):
        """Run one synchronous step delivering a ``BatchedOutbox``.

        Validation (locality, word sanity), per-link load computation, and
        every counter charge are vectorized over the batch columns but
        *identical* in effect to :meth:`exchange` on the same messages: the
        round counter advances by ``max(1, ceil(L / bandwidth))``, the same
        :class:`NetworkStats` fields move by the same amounts, and a
        violation anywhere aborts before any accounting happens.

        With ``grouped`` (default) returns nested dict inboxes bit-for-bit
        equal to the dict path's (given the batch was appended in emission
        order). ``grouped=False`` returns a
        :class:`~repro.congest.batch.BatchedInbox` view of the delivered
        stream, sparing hot consumers the dict rebuild.
        """
        src_col, dst_col, payloads = batch.src, batch.dst, batch.payloads
        count = len(src_col)
        if count == 0:
            # Parity with exchange({}): an idle step still costs one round.
            self.rounds += 1
            self.stats.record_step(0)
            self._check_round_budget()
            if sanitize_enabled():
                verify_phase_partition(self)
            return {} if grouped else BatchedInbox([], [], [])
        pair_keys, pair_link, link_hosts = self._link_index()
        if count <= _SCALAR_BATCH_LIMIT:
            # Small batches: a plain dict walk beats numpy's per-call
            # overhead (asarray + searchsorted + reductions) by ~10x at
            # these sizes, with identical validation and accounting.
            pair_map = self._pair_link_map
            word_col = batch.words
            loads: Dict[int, int] = {}
            loads_get = loads.get
            n = self.n
            n_remote = 0
            if word_col is None:
                # Unit-word batch (the common case): zip iteration, no
                # per-message word checks.
                n_words = count
                for u, v in zip(src_col, dst_col):
                    lid = pair_map.get(u * n + v, -2)
                    if lid == -2:
                        raise LocalityViolation(
                            f"vertex {u} attempted to send to non-neighbor {v}"
                        )
                    if lid >= 0:
                        n_remote += 1
                        loads[lid] = loads_get(lid, 0) + 1
            else:
                n_words = 0
                for i in range(count):
                    u = src_col[i]
                    lid = pair_map.get(u * n + dst_col[i], -2)
                    if lid == -2:
                        raise LocalityViolation(
                            f"vertex {u} attempted to send to non-neighbor {dst_col[i]}"
                        )
                    w = word_col[i]
                    if w < 0:
                        raise ValueError("message word size must be non-negative")
                    n_words += w
                    if lid >= 0:
                        n_remote += 1
                        loads[lid] = loads_get(lid, 0) + w
            max_load = max(loads.values(), default=0)
            if self.strict and max_load > self.bandwidth:
                lid = next(k for k, v in loads.items() if v == max_load)
                offender = tuple(int(h) for h in link_hosts[lid])
                raise BandwidthExceeded(
                    f"link {offender} carried {max_load} words; "
                    f"bandwidth is {self.bandwidth}"
                )
        else:
            src = np.asarray(src_col, dtype=np.int64)
            dst = np.asarray(dst_col, dtype=np.int64)
            if batch.words is None:
                words = None
                n_words = count
            else:
                words = np.asarray(batch.words, dtype=np.int64)
                if words.size and int(words.min()) < 0:
                    raise ValueError("message word size must be non-negative")
                n_words = int(words.sum())
            keys = src * self.n + dst
            pos = np.searchsorted(pair_keys, keys)
            pos_safe = np.minimum(pos, len(pair_keys) - 1)
            ok = pair_keys[pos_safe] == keys
            if not ok.all():
                bad = int(np.argmin(ok))
                raise LocalityViolation(
                    f"vertex {src_col[bad]} attempted to send to non-neighbor {dst_col[bad]}"
                )
            link_of_msg = pair_link[pos_safe]
            remote = link_of_msg >= 0
            n_remote = int(remote.sum())
            if n_remote:
                # bincount beats np.add.at by an order of magnitude here;
                # with the identity host map every message is remote, so the
                # boolean gather is skipped too. Weighted bincount returns
                # float64 — exact for any realistic word total.
                links = link_of_msg if n_remote == count else link_of_msg[remote]
                if words is None:
                    loads_arr = np.bincount(links, minlength=len(link_hosts))
                else:
                    w = words if n_remote == count else words[remote]
                    loads_arr = np.bincount(links, weights=w,
                                            minlength=len(link_hosts))
                max_load = int(loads_arr.max())
            else:
                max_load = 0
            if self.strict and max_load > self.bandwidth:
                offender = tuple(
                    int(h) for h in link_hosts[int(np.argmax(loads_arr))]
                )
                raise BandwidthExceeded(
                    f"link {offender} carried {max_load} words; "
                    f"bandwidth is {self.bandwidth}"
                )
        self.rounds += max(1, -(-max_load // self.bandwidth))
        self.stats.record_step(max_load)
        self.stats.messages += count
        self.stats.words += n_words
        self.stats.local_messages += count - n_remote
        self._check_round_budget()
        if sanitize_enabled():
            word_col_all = batch.words
            verify_step(
                self,
                ((src_col[i], dst_col[i], payloads[i],
                  1 if word_col_all is None else word_col_all[i])
                 for i in range(count)),
                max_load, count, n_words, engine="batch")
            verify_phase_partition(self)
        if not grouped:
            return BatchedInbox(src_col, dst_col, payloads)
        inboxes: Dict[int, Inbox] = {}
        for i, v in enumerate(dst_col):
            u = src_col[i]
            by_sender = inboxes.get(v)
            if by_sender is None:
                by_sender = inboxes[v] = {}
            msgs = by_sender.get(u)
            if msgs is None:
                by_sender[u] = [payloads[i]]
            else:
                msgs.append(payloads[i])
        return inboxes

    def _check_round_budget(self) -> None:
        if self.max_rounds is not None and self.rounds > self.max_rounds:
            raise RoundBudgetExceeded(
                f"round budget exhausted: {self.rounds} rounds used, "
                f"budget is {self.max_rounds}"
            )

    def charge_rounds(self, rounds: int, reason: str = "") -> None:
        """Explicitly charge ``rounds`` idle/synchronization rounds.

        Used when an algorithm must wait for a globally known number of
        rounds (e.g. letting a pipeline drain) without traffic.
        """
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        self.rounds += rounds
        self._check_round_budget()

    # ------------------------------------------------------------------
    # Phase-scoped observability (see repro.obs)
    # ------------------------------------------------------------------
    def _phase_snapshot(self):
        """Current counter values: (rounds, steps, messages, words, now)."""
        s = self.stats
        return (self.rounds, s.steps, s.messages, s.words, time.perf_counter())

    @property
    def metrics_active(self) -> bool:
        """Whether phase attribution is being tracked on this network."""
        return self._phases is not None

    def enable_metrics(self) -> None:
        """Start phase tracking now (idempotent).

        Attribution starts from the current counter values: traffic before
        this call is never attributed, and from here on the buckets sum
        exactly to the counters' growth since enabling.
        """
        if self._phases is None:
            self._phases = PhaseAccumulator(self._phase_snapshot())

    def phase(self, name: str):
        """Scope for attributing rounds/messages/words to ``name``.

        Usage::

            with net.phase("restricted-bfs"):
                ...   # every exchange in here is billed to the phase

        Scopes nest hierarchically (``"outer/inner"`` buckets); traffic is
        billed to the innermost open phase. When metrics are disabled this
        returns a shared no-op context manager, making instrumentation
        free to leave in library code.
        """
        if self._phases is None:
            return NULL_PHASE
        return _PhaseScope(self, name)

    def phase_report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase counter buckets (empty dict while metrics are off).

        Buckets — including ``(unscoped)`` for traffic outside any phase —
        partition the flat counters exactly: their ``rounds`` / ``steps`` /
        ``messages`` / ``words`` sum to ``self.rounds`` / ``self.stats``.
        """
        if self._phases is None:
            return {}
        return self._phases.report(self._phase_snapshot())

    # ------------------------------------------------------------------
    # Fault-model hooks (overridden by repro.congest.faults.FaultyNetwork)
    # ------------------------------------------------------------------
    def is_crashed(self, v: int) -> bool:
        """Whether vertex ``v`` is currently crashed (never, without faults)."""
        return False

    def live_nodes(self) -> List[int]:
        """Vertices currently alive (all of them, without faults)."""
        return [v for v in range(self.n) if not self.is_crashed(v)]

    def run(
        self,
        step: Callable[[int, Dict[int, Inbox]], Dict[int, Outbox]],
        max_steps: int,
        quiescence: bool = True,
    ) -> int:
        """Drive a step function until quiescence or ``max_steps``.

        ``step(t, inboxes)`` receives the step index and the previous step's
        inboxes and returns the outboxes for this step. Returns the number of
        steps executed. If ``quiescence`` is set, stops after a step in which
        no *live* node produced a message (crashed nodes cannot block
        termination). Exceeding ``max_steps`` raises
        :class:`RoundBudgetExceeded` when quiescence was requested but never
        reached.
        """
        inboxes: Dict[int, Inbox] = {}
        executed = 0
        for t in range(max_steps):
            outboxes = step(t, inboxes)
            executed += 1
            if quiescence and not any(
                msgs
                for u, ob in outboxes.items()
                if not self.is_crashed(u)
                for msgs in ob.values()
            ):
                break
            inboxes = self.exchange(outboxes)
        else:
            if quiescence:
                raise RoundBudgetExceeded(
                    f"step function did not quiesce within {max_steps} steps"
                )
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def reset_accounting(self) -> None:
        """Zero the round counter and statistics (state is kept)."""
        self.rounds = 0
        self.stats = NetworkStats()
        if self._phases is not None:
            # Phase buckets describe the counters just discarded; restart
            # attribution from the zeroed snapshot (open scopes, if any,
            # keep accumulating under their names).
            stack = self._phases.stack
            self._phases = PhaseAccumulator(self._phase_snapshot())
            self._phases.stack = stack

    def __repr__(self) -> str:
        return (
            f"CongestNetwork(n={self.n}, bandwidth={self.bandwidth}, "
            f"rounds={self.rounds})"
        )


class _PhaseScope:
    """Live phase context manager handed out by :meth:`CongestNetwork.phase`.

    A tiny dedicated class (rather than ``contextlib.contextmanager``) so
    entering a phase costs one allocation and two snapshot calls, and so
    exceptions still close the scope (``__exit__`` always pops).
    """

    __slots__ = ("_net", "_name")

    def __init__(self, net: CongestNetwork, name: str):
        self._net = net
        self._name = name

    def __enter__(self) -> "_PhaseScope":
        net = self._net
        net._phases.enter(self._name, net._phase_snapshot())
        return self

    def __exit__(self, *exc) -> bool:
        net = self._net
        net._phases.exit(net._phase_snapshot())
        return False
