"""Node-program API: write CONGEST algorithms as per-node state machines.

The primitives in :mod:`repro.congest.primitives` are orchestrated — a
driver loop builds outboxes from global data structures (with locality kept
by construction). This module offers the complementary, fully node-local
style: subclass :class:`NodeProgram`, implement ``on_round``, and
:func:`run_programs` executes one instance per vertex with *enforced*
isolation — a program only ever sees its own id, its incident edges, its
private state, and its inbox.

Used by tests as an equivalence oracle for the primitives (the same BFS
implemented both ways must agree in results and rounds), and by library
users who prefer writing genuinely distributed code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork, Inbox, RoundBudgetExceeded
from repro.resilience.degrade import degrade_enabled, record_degradation


@dataclass
class NodeView:
    """What a node is allowed to know about the network.

    ``out_edges`` / ``in_edges`` are (neighbor, weight) tuples of the input
    graph; ``comm_neighbors`` are the (bidirectional) communication links.
    ``n`` is public (CONGEST nodes know n).
    """

    id: int
    n: int
    out_edges: Tuple[Tuple[int, int], ...]
    in_edges: Tuple[Tuple[int, int], ...]
    comm_neighbors: Tuple[int, ...]


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Lifecycle: ``setup(view)`` once, then ``on_round(round_index, inbox)``
    every round until every program has returned an empty outbox (global
    quiescence) or the round budget is exhausted. ``result()`` extracts the
    node's output.

    ``on_round`` must return ``{neighbor: [(payload, words), ...]}``.
    """

    def setup(self, view: NodeView) -> None:
        """One-time initialization with the node's local view."""
        self.view = view

    def on_round(self, r: int, inbox: Inbox) -> Dict[int, List[Tuple[Any, int]]]:
        """Produce this round's outbox from the previous round's inbox."""
        raise NotImplementedError

    def result(self) -> Any:
        """The node's output after quiescence."""
        return None


def run_programs(
    net: CongestNetwork,
    programs: Sequence[NodeProgram],
    max_rounds: int = 10_000,
    checkpoint=None,
) -> List[Any]:
    """Execute one program per vertex until quiescence; returns results.

    Crash-aware: on a fault-injected network
    (:class:`~repro.congest.faults.FaultyNetwork`) a crashed node's program
    is simply not scheduled — fail-stop semantics — and it resumes with its
    state intact if the fault plan recovers it. Quiescence is judged over
    *live* nodes only, so a dead node can never keep the run spinning.

    ``checkpoint`` (a :class:`repro.congest.checkpoint.CheckpointManager`)
    snapshots the scheduling loop — round index, program instances, pending
    inboxes — at the manager's cadence; a resumed run continues from the
    snapshot bit-identically. Programs must then be picklable (the bundled
    ones are).

    Raises :class:`~repro.congest.network.RoundBudgetExceeded` (a
    ``RuntimeError``) if the programs are still talking after ``max_rounds``
    scheduling rounds — unless degradation is enabled
    (:mod:`repro.resilience.degrade`), in which case the programs' current
    results are returned as-is and the event is recorded on the network.
    """
    g = net.graph
    if len(programs) != g.n:
        raise ValueError("need exactly one program per vertex")
    programs = list(programs)
    resumed = (checkpoint.take_resume("node-programs")
               if checkpoint is not None else None)
    if resumed is not None:
        r_start = resumed["r"]
        programs = resumed["programs"]
        inboxes = resumed["inboxes"]
    else:
        for v, prog in enumerate(programs):
            prog.setup(NodeView(
                id=v,
                n=g.n,
                out_edges=tuple(g.out_items(v)),
                in_edges=tuple(g.in_items(v)),
                comm_neighbors=tuple(sorted(net.comm_neighbors(v))),
            ))
        inboxes: Dict[int, Inbox] = {}
        r_start = 0
    for r in range(r_start, max_rounds):
        outboxes = {}
        for v, prog in enumerate(programs):
            if net.is_crashed(v):
                continue
            out = prog.on_round(r, inboxes.get(v, {}))
            if out:
                outboxes[v] = out
        if not outboxes:
            return [prog.result() for prog in programs]
        try:
            inboxes = net.exchange(outboxes)
        except RoundBudgetExceeded as exc:
            if degrade_enabled():
                record_degradation(net, "node-programs", str(exc))
                return [prog.result() for prog in programs]
            raise
        if checkpoint is not None:
            checkpoint.maybe(net, "node-programs", lambda: {
                "r": r + 1, "programs": programs, "inboxes": inboxes})
    raise RoundBudgetExceeded(
        f"programs did not quiesce within {max_rounds} rounds"
    )


class BfsProgram(NodeProgram):
    """Reference node-program BFS (equivalence oracle for primitives.bfs).

    The source floods a wave along out-edges; each node adopts the first
    distance it hears and forwards once.
    """

    def __init__(self, source: int):
        self.source = source
        self.dist: Optional[int] = None
        self._pending_send = False

    def setup(self, view: NodeView) -> None:
        """Seed the wave at the source."""
        super().setup(view)
        if view.id == self.source:
            self.dist = 0
            self._pending_send = True

    def on_round(self, r: int, inbox: Inbox):
        """Adopt the best heard distance; forward once per improvement."""
        for sender, payloads in inbox.items():
            for d in payloads:
                if self.dist is None or d < self.dist:
                    self.dist = d
                    self._pending_send = True
        if not self._pending_send:
            return {}
        self._pending_send = False
        return {u: [(self.dist + 1, 1)] for u, _w in self.view.out_edges}

    def result(self) -> Optional[int]:
        """Hop distance from the source, or None if unreached."""
        return self.dist


class MinAggregationProgram(NodeProgram):
    """Reference node-program global-min (oracle for converge_min).

    Simple flooding of the best-known value: O(D) rounds, O(1) words per
    edge per round.
    """

    def __init__(self, value: float):
        self.best = value
        self._dirty = True

    def on_round(self, r: int, inbox: Inbox):
        """Flood the best-known value whenever it improves."""
        for payloads in inbox.values():
            for v in payloads:
                if v < self.best:
                    self.best = v
                    self._dirty = True
        if not self._dirty:
            return {}
        self._dirty = False
        return {u: [(self.best, 1)] for u in self.view.comm_neighbors}

    def result(self) -> float:
        """The global minimum after quiescence."""
        return self.best
