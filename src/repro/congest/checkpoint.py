"""Round-granular checkpoint/resume for the CONGEST simulator.

The paper's algorithms are analyzed round by round, which makes their
simulations naturally checkpointable: everything a run *is* at a step
boundary — the round counter, :class:`~repro.congest.network.NetworkStats`,
per-node state, RNG streams, phase-attribution buckets, fault bookkeeping —
lives on the network object, and the driving loop's own variables are plain
picklable Python/numpy data. This module snapshots both at configurable
round intervals into the content-addressed cache
(:func:`repro.cache.store_blob`) and restores them into a fresh process, so
a run killed at an arbitrary round resumes from its latest complete
checkpoint and finishes **bit-identically** to an uninterrupted run: same
rounds, messages, words, results, and phase buckets.

Architecture
------------
* :func:`capture` / :func:`restore` — full network snapshot as a plain
  picklable :class:`Snapshot`. Restore validates a fingerprint (graph
  digest, seed, network class, bandwidth/strictness) so a checkpoint can
  never be resumed against a different run.
* :class:`CheckpointManager` — the policy object drivers thread through:
  owns the run key (one "latest snapshot" blob per key), the round
  interval, and the resume handshake. Checkpoint-aware loops call
  :meth:`CheckpointManager.maybe` once per step (cheap: one integer
  comparison while not due) and :meth:`CheckpointManager.take_resume` at
  entry.
* Checkpoint-aware loops — ``run_programs`` (node programs, dict engine),
  ``multi_source_bfs`` (scalar and batched engines),
  ``run_wave_kernel`` (vectorized kernel engine), ``apsp_weighted_on`` and
  the ``exact_mwc_congest`` driver. Each snapshots its loop state as the
  ``payload`` and rebuilds it verbatim on resume.

Phase-bucket exactness across a resume
--------------------------------------
Snapshots are taken *inside* open phase scopes (e.g. mid ``apsp/multi-bfs``).
The accumulator is flushed first, so the buckets stored are exact for the
counters stored. On resume the driver re-enters the same scopes itself, so
the snapshot stores each open scope's ``entries`` count minus one — re-entry
restores it — and the restored accumulator starts with an empty stack and a
mark equal to the restored counters. The partition invariant (buckets sum
to the flat counters) holds at every point of the resumed run, which the
runtime sanitizer (``REPRO_SANITIZE=1``) re-verifies per step.

Determinism caveat: a checkpoint records the engine that produced it (the
loop stage); resuming under a different engine configuration raises
:class:`CheckpointError` instead of silently mixing message schedules.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import cache
from repro.congest.network import CongestNetwork
from repro.obs.phases import PhaseAccumulator, PhaseStats

#: Cache kind (subdirectory) holding checkpoint blobs.
CHECKPOINT_KIND = "checkpoint"

#: Bump when the snapshot layout changes incompatibly.
SCHEMA = 1

#: Default checkpoint cadence in simulated rounds.
DEFAULT_INTERVAL = 64


class CheckpointError(RuntimeError):
    """A checkpoint could not be restored against the current run."""


@dataclass
class Snapshot:
    """One complete, picklable image of a run at a step boundary."""

    schema: int
    fingerprint: Dict[str, Any]
    #: Which checkpoint-aware loop produced the snapshot (resume handshake).
    stage: str
    rounds: int
    max_rounds: Optional[int]
    stats: Dict[str, Any]
    #: Per-node private state dicts (``net.state``), deep-copied.
    state: List[Dict[str, Any]]
    rng_state: Dict[str, Any]
    #: Phase buckets + open-scope names, or None while metrics are off.
    phases: Optional[Dict[str, Any]]
    #: Fault-layer extras (fault stats + fault RNG), or None on plain nets.
    fault: Optional[Dict[str, Any]]
    #: The checkpointing loop's own state, rebuilt verbatim on resume.
    payload: Any = None
    #: Monotone sequence number of the snapshot within its run.
    seq: int = 0
    #: Degradation events recorded on the network up to the snapshot.
    degradation: List[Dict[str, Any]] = field(default_factory=list)


def network_fingerprint(net: CongestNetwork) -> Dict[str, Any]:
    """Identity of a run for checkpoint-compatibility checks.

    Everything that, if different, would make "resuming" meaningless:
    the topology (content digest), the seed, the network class, and the
    accounting-relevant construction flags.
    """
    return {
        "graph": cache.graph_digest(net.graph),
        "n": net.n,
        "seed": net._seed,
        "class": type(net).__name__,
        "bandwidth": net.bandwidth,
        "strict": net.strict,
        "host": None if net._identity_host else tuple(net._host),
    }


def _stats_dict(stats) -> Dict[str, Any]:
    return {
        "steps": stats.steps,
        "messages": stats.messages,
        "words": stats.words,
        "local_messages": stats.local_messages,
        "max_link_load": stats.max_link_load,
        "link_load_histogram": dict(stats.link_load_histogram),
    }


def _restore_stats(stats, payload: Dict[str, Any]) -> None:
    stats.steps = payload["steps"]
    stats.messages = payload["messages"]
    stats.words = payload["words"]
    stats.local_messages = payload["local_messages"]
    stats.max_link_load = payload["max_link_load"]
    stats.link_load_histogram.clear()
    stats.link_load_histogram.update(payload["link_load_histogram"])


def _phases_dict(net: CongestNetwork) -> Optional[Dict[str, Any]]:
    acc = net._phases
    if acc is None:
        return None
    # Attribute everything up to this boundary so the stored buckets are
    # exact for the stored counters (flushing mid-phase is neutral).
    acc.flush(net._phase_snapshot())
    open_scopes = list(acc.stack)
    buckets = {}
    for name, st in acc.stats.items():
        entry = {"rounds": st.rounds, "steps": st.steps,
                 "messages": st.messages, "words": st.words,
                 "seconds": st.seconds, "entries": st.entries}
        if name in open_scopes:
            # The resuming driver re-enters this scope, incrementing
            # ``entries`` again; store one less so the resumed total
            # matches the uninterrupted run's.
            entry["entries"] -= 1
        buckets[name] = entry
    return {"buckets": buckets, "open_scopes": open_scopes}


def _restore_phases(net: CongestNetwork, payload: Optional[Dict[str, Any]]) -> None:
    if payload is None:
        net._phases = None
        return
    acc = PhaseAccumulator(net._phase_snapshot())
    for name, entry in payload["buckets"].items():
        st = PhaseStats(rounds=entry["rounds"], steps=entry["steps"],
                        messages=entry["messages"], words=entry["words"],
                        seconds=entry["seconds"], entries=entry["entries"])
        acc.stats[name] = st
    net._phases = acc


def capture(net: CongestNetwork, stage: str, payload: Any = None,
            seq: int = 0) -> Snapshot:
    """Snapshot ``net`` (and the caller's loop ``payload``) at this boundary.

    Must be called between exchange steps — never mid-step — so that every
    counter is settled and the sanitizer's invariants hold on both sides of
    a resume.
    """
    fault = None
    if hasattr(net, "fault_stats"):
        fault = {
            "stats": net.fault_stats.as_dict(),
            "rng_state": net._fault_rng.bit_generator.state,
        }
    return Snapshot(
        schema=SCHEMA,
        fingerprint=network_fingerprint(net),
        stage=stage,
        rounds=net.rounds,
        max_rounds=net.max_rounds,
        stats=_stats_dict(net.stats),
        state=pickle.loads(pickle.dumps(net.state)),
        rng_state=net.rng.bit_generator.state,
        phases=_phases_dict(net),
        fault=fault,
        payload=payload,
        seq=seq,
        degradation=list(getattr(net, "_degradation_events", ())),
    )


def restore(net: CongestNetwork, snapshot: Snapshot) -> None:
    """Load ``snapshot`` into ``net``, which must match its fingerprint.

    After this call the network is indistinguishable (counters, stats,
    state, RNG streams, phase buckets, fault bookkeeping) from the network
    that :func:`capture` saw — continuing the same deterministic loop from
    the snapshot's payload therefore reproduces the uninterrupted run bit
    for bit.
    """
    if snapshot.schema != SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {snapshot.schema} is not the current "
            f"{SCHEMA}; delete the stale checkpoint and rerun")
    fingerprint = network_fingerprint(net)
    if fingerprint != snapshot.fingerprint:
        mismatched = sorted(
            k for k in set(fingerprint) | set(snapshot.fingerprint)
            if fingerprint.get(k) != snapshot.fingerprint.get(k))
        raise CheckpointError(
            f"checkpoint belongs to a different run (mismatched: "
            f"{', '.join(mismatched)})")
    # restore() reinstates counters the exchange path already charged
    # before the snapshot was cut; nothing is bypassed.
    net.rounds = snapshot.rounds  # congestlint: disable=CL002
    # ``max_rounds`` is deliberately NOT restored: the budget is a policy of
    # the *current* run, not accounting state — a run killed by its round
    # budget must be resumable under a larger (or no) budget. The captured
    # value stays in the snapshot for inspection.
    _restore_stats(net.stats, snapshot.stats)
    net.state = pickle.loads(pickle.dumps(snapshot.state))
    net.rng.bit_generator.state = snapshot.rng_state
    _restore_phases(net, snapshot.phases)
    if snapshot.fault is not None:
        fs = net.fault_stats
        for name, value in snapshot.fault["stats"].items():
            setattr(fs, name, value)
        net._fault_rng.bit_generator.state = snapshot.fault["rng_state"]
        net._live_cache = None
    if snapshot.degradation:
        net._degradation_events = list(snapshot.degradation)


def run_key_digest(run_key: str) -> str:
    """Content digest addressing a run's checkpoint blob."""
    return hashlib.sha256(f"{SCHEMA}|{run_key}".encode()).hexdigest()


class CheckpointManager:
    """Owns one run's checkpoint blob: cadence, persistence, resume.

    Parameters
    ----------
    run_key:
        Stable identifier of the run (hashed into the blob key). Reusing a
        key across different runs is caught by the snapshot fingerprint.
    interval:
        Checkpoint cadence in simulated rounds (a snapshot is taken at the
        first step boundary at or past each multiple). ``0`` disables
        periodic snapshots (explicit :meth:`save_now` still works).
    keep_on_success:
        Whether :meth:`complete` leaves the final checkpoint on disk
        (default: delete it — the run finished, nothing to resume).
    """

    def __init__(self, run_key: str, interval: int = DEFAULT_INTERVAL,
                 keep_on_success: bool = False):
        if interval < 0:
            raise ValueError(f"checkpoint interval must be >= 0, got {interval}")
        self.run_key = run_key
        self.interval = interval
        self.keep_on_success = keep_on_success
        self.seq = 0
        #: Snapshots written during this process's lifetime (tests, bench).
        self.saved = 0
        self._key = run_key_digest(run_key)
        self._next_at: Optional[int] = None
        self._resume: Optional[Snapshot] = None

    # -- persistence ---------------------------------------------------
    def load(self) -> Optional[Snapshot]:
        """The latest complete snapshot on disk, or None."""
        data = cache.load_blob(CHECKPOINT_KIND, self._key)
        if data is None:
            return None
        try:
            snapshot = pickle.loads(data)
        except Exception:
            # A damaged blob cannot happen via the atomic writer, but heal
            # anyway (e.g. a partial copy restored from elsewhere).
            cache.drop_blob(CHECKPOINT_KIND, self._key)
            return None
        if not isinstance(snapshot, Snapshot) or snapshot.schema != SCHEMA:
            cache.drop_blob(CHECKPOINT_KIND, self._key)
            return None
        return snapshot

    def save_now(self, net: CongestNetwork, stage: str,
                 payload: Any = None) -> Snapshot:
        """Snapshot unconditionally and persist as the run's latest."""
        self.seq += 1
        snapshot = capture(net, stage, payload=payload, seq=self.seq)
        cache.store_blob(CHECKPOINT_KIND, self._key,
                         pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
        self.saved += 1
        self._next_at = net.rounds + self.interval if self.interval else None
        return snapshot

    def clear(self) -> None:
        """Delete the run's checkpoint blob (idempotent)."""
        cache.drop_blob(CHECKPOINT_KIND, self._key)

    def complete(self) -> None:
        """Mark the run finished (drops the blob unless asked to keep it)."""
        if not self.keep_on_success:
            self.clear()

    # -- cadence -------------------------------------------------------
    def due(self, net: CongestNetwork) -> bool:
        """Whether the cadence calls for a snapshot at this boundary."""
        if not self.interval:
            return False
        if self._next_at is None:
            self._next_at = net.rounds + self.interval
            return False
        return net.rounds >= self._next_at

    def maybe(self, net: CongestNetwork, stage: str,
              payload_fn: Callable[[], Any]) -> bool:
        """Snapshot iff due; ``payload_fn`` is only called when saving."""
        if not self.due(net):
            return False
        self.save_now(net, stage, payload_fn())
        return True

    # -- resume handshake ----------------------------------------------
    def resume(self, net: CongestNetwork) -> Optional[str]:
        """Restore the latest snapshot into ``net`` if one exists.

        Called by the *driver* before any phase scope is opened. Returns
        the snapshot's stage (so the driver can skip completed sections)
        or None when starting fresh. The snapshot's payload is held for
        the checkpoint-aware loop to collect via :meth:`take_resume`.
        """
        snapshot = self.load()
        if snapshot is None:
            return None
        restore(net, snapshot)
        self.seq = snapshot.seq
        self._resume = snapshot
        self._next_at = (net.rounds + self.interval) if self.interval else None
        return snapshot.stage

    @property
    def pending_stage(self) -> Optional[str]:
        """Stage of a restored-but-unclaimed snapshot, if any."""
        return self._resume.stage if self._resume is not None else None

    def take_resume(self, stage: str) -> Optional[Any]:
        """Claim the restored payload for ``stage`` (one-shot).

        Returns None when there is nothing to resume. Raises
        :class:`CheckpointError` when a payload exists but belongs to a
        different stage — the engine configuration changed between the
        checkpoint and the resume, and continuing would silently change
        the message schedule.
        """
        if self._resume is None:
            return None
        if self._resume.stage != stage:
            raise CheckpointError(
                f"checkpoint was taken at stage {self._resume.stage!r} but "
                f"the run is resuming through stage {stage!r}; rerun with "
                f"the engine configuration that produced the checkpoint, "
                f"or clear it")
        snapshot, self._resume = self._resume, None
        return snapshot.payload
