"""Exact sequential Minimum Weight Cycle references.

``exact_mwc`` is the ground truth every distributed algorithm is validated
against. Directed MWC uses the APSP reduction (min over edges ``(a, b)`` of
``w(a, b) + d(b, a)``), which is exact for non-negative weights. Undirected
MWC uses the robust edge-deletion formulation (min over edges ``(x, y)`` of
``w(x, y) + d_{G - (x,y)}(x, y)``), which avoids the degenerate backtracking
walks that make naive closed-walk formulas undercount in undirected graphs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional, Tuple

from repro.graphs.graph import Graph, INF
from repro.sequential.shortest_paths import distances


def _sp_avoiding_edge(g: Graph, x: int, y: int) -> float:
    """Shortest x->y distance in ``g`` without using edge {x, y} / (x, y)."""
    if g.weighted:
        dist = [INF] * g.n
        dist[x] = 0
        heap = [(0, x)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in g.out_items(u):
                if u == x and v == y:
                    continue
                if not g.directed and u == y and v == x:
                    continue
                if d + w < dist[v]:
                    dist[v] = d + w
                    heapq.heappush(heap, (d + w, v))
        return dist[y]
    dist = [INF] * g.n
    dist[x] = 0
    queue = deque([x])
    while queue:
        u = queue.popleft()
        for v in g.out_neighbors(u):
            if u == x and v == y:
                continue
            if not g.directed and u == y and v == x:
                continue
            if dist[v] == INF:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist[y]


def shortest_cycle_through_edge(g: Graph, x: int, y: int) -> float:
    """Weight of the lightest simple cycle using edge ``(x, y)``.

    Directed: ``w(x, y) + d(y, x)``. Undirected: ``w(x, y)`` plus the
    shortest ``x``-``y`` path avoiding the edge itself.
    """
    w = g.weight(x, y)
    if g.directed:
        return w + distances(g, y)[x]
    return w + _sp_avoiding_edge(g, x, y)


def exact_mwc(g: Graph) -> float:
    """Weight of a minimum weight simple cycle (``INF`` if acyclic).

    Matches the paper's Definition 1.1 for all four graph classes
    (directed/undirected x weighted/unweighted).
    """
    best = INF
    if g.directed:
        # d(b, a) for all edges (a, b): one reverse-Dijkstra/BFS per head b
        # would repeat work; instead compute per-source distances once.
        dist_from = {}
        for a, b, w in g.edges():
            if b not in dist_from:
                dist_from[b] = distances(g, b)
            best = min(best, w + dist_from[b][a])
        return best
    for x, y, w in g.edges():
        best = min(best, w + _sp_avoiding_edge(g, x, y))
    return best


def exact_girth(g: Graph) -> float:
    """Girth of an undirected unweighted graph (``INF`` if forest)."""
    if g.directed or g.weighted:
        raise ValueError("girth is defined for undirected unweighted graphs")
    return exact_mwc(g)


def mwc_through_vertex(g: Graph, v: int) -> float:
    """Weight of the lightest simple cycle containing vertex ``v``.

    Directed: min over in-edges ``(a, v)`` of ``d(v, a) + w(a, v)`` — the
    closed walk contains a simple cycle through ``v`` because the shortest
    path ``v -> a`` is simple and the walk returns to ``v`` exactly once.
    Undirected: min over edges ``(x, y)`` incident to ``v`` of the lightest
    cycle through that edge, and for cycles through ``v`` whose incident
    edges are both at ``v``, min over pairs of distinct neighbors of the
    internally-disjoint two-path cost; we use the robust per-edge deletion
    form restricted to edges incident to ``v``.
    """
    best = INF
    if g.directed:
        dv = distances(g, v)
        for a, w in g.in_items(v):
            best = min(best, dv[a] + w)
        return best
    for y, w in g.out_items(v):
        best = min(best, w + _sp_avoiding_edge(g, v, y))
    return best


def has_cycle(g: Graph) -> bool:
    """Whether ``g`` contains a simple cycle."""
    return exact_mwc(g) != INF


def mwc_witness(g: Graph) -> Tuple[float, Optional[list]]:
    """MWC weight together with one witness cycle (vertex list), if any.

    The witness is reconstructed from shortest-path parents; it is used by
    examples to display the actual deadlock/cycle found.
    """
    best = INF
    witness: Optional[list] = None
    if g.directed:
        for a, b, w in g.edges():
            dist, parent = _dijkstra_with_parents(g, b)
            if dist[a] + w < best:
                best = dist[a] + w
                path = _extract_path(parent, b, a)
                if path is not None:
                    witness = path
    else:
        for x, y, w in g.edges():
            d = _sp_avoiding_edge(g, x, y)
            if w + d < best:
                best = w + d
                witness = _path_avoiding_edge(g, x, y)
    return best, witness


def _dijkstra_with_parents(g: Graph, source: int):
    dist = [INF] * g.n
    parent = [-1] * g.n
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in g.out_items(u):
            if d + w < dist[v]:
                dist[v] = d + w
                parent[v] = u
                heapq.heappush(heap, (d + w, v))
    return dist, parent


def _extract_path(parent, source, target):
    if target == source:
        return [source]
    path = [target]
    u = target
    while u != source:
        u = parent[u]
        if u == -1:
            return None
        path.append(u)
        if len(path) > len(parent) + 1:
            return None
    path.reverse()
    return path


def _path_avoiding_edge(g: Graph, x: int, y: int):
    """Vertex list of a shortest x->y path avoiding edge {x, y}."""
    dist = [INF] * g.n
    parent = [-1] * g.n
    dist[x] = 0
    heap = [(0, x)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in g.out_items(u):
            if {u, v} == {x, y}:
                continue
            if d + w < dist[v]:
                dist[v] = d + w
                parent[v] = u
                heapq.heappush(heap, (d + w, v))
    return _extract_path(parent, x, y)
