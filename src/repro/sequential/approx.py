"""Sequential approximation references (the paper's §1.5 lineage).

Centralized counterparts of the approximation ideas the distributed
algorithms build on, used as cross-checking oracles in tests:

* :func:`itai_rodeh_girth` — the classical BFS-per-vertex girth estimate:
  for each root, the smallest non-backtracking candidate
  ``d(w,x) + d(w,y) + 1``; over all roots this is exact, over a subset it
  is the (2 - 1/g)-style estimate the §4 algorithm distributes.
* :func:`sampled_girth_estimate` — §4's sampling strategy, sequentially:
  candidates from a random Θ(√n)-vertex sample plus exact search within
  σ-neighborhoods.
* :func:`two_approx_directed_mwc` — the Fact-1 / sampling idea of
  Chechik–Lifshitz [13] in its simplest sequential form: exact cycles
  through a random sample, doubling bound otherwise (the skeleton that
  Algorithm 2 distributes).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.graphs.graph import Graph, GraphError, INF
from repro.sequential.shortest_paths import bfs_distances, distances


def _root_candidate(g: Graph, w: int) -> float:
    """Smallest non-backtracking cycle candidate from BFS root ``w``."""
    dist = bfs_distances(g, w)
    parent = {}
    for v in range(g.n):
        if dist[v] not in (0, INF):
            parent[v] = min(u for u in g.neighbors(v)
                            if dist[u] == dist[v] - 1)
    best = INF
    for x, y, _ in g.edges():
        if dist[x] == INF or dist[y] == INF:
            continue
        if parent.get(x) == y or parent.get(y) == x:
            continue
        best = min(best, dist[x] + dist[y] + 1)
    return best


def itai_rodeh_girth(g: Graph, roots: Optional[Iterable[int]] = None) -> float:
    """BFS-candidate girth estimate from the given roots (all by default).

    With all n roots the estimate is exact; with fewer roots it never
    undershoots the girth (closed-walk argument) and is at most 2g - 1
    whenever some root lies on a minimum cycle.
    """
    if g.directed or g.weighted:
        raise GraphError("itai_rodeh_girth expects undirected unweighted input")
    if roots is None:
        roots = range(g.n)
    return min((_root_candidate(g, w) for w in roots), default=INF)


def sampled_girth_estimate(g: Graph, seed: Optional[int] = None,
                           sample_constant: float = 3.0,
                           sigma_constant: float = 1.5) -> float:
    """Sequential analogue of the §4 algorithm: sample + neighborhoods."""
    if g.directed or g.weighted:
        raise GraphError("sampled_girth_estimate expects undirected unweighted input")
    rng = np.random.default_rng(seed)
    n = g.n
    sigma = max(2, int(sigma_constant * n ** 0.5))
    prob = min(1.0, sample_constant / sigma)
    sample = [v for v in range(n) if rng.random() < prob] or [0]
    best = itai_rodeh_girth(g, roots=sample)
    # Exact within sigma-neighborhoods: BFS from every vertex, truncated to
    # its sigma nearest (the centralized stand-in for source detection).
    for v in range(n):
        dist = bfs_distances(g, v)
        order = sorted((d, u) for u, d in enumerate(dist) if d != INF)[:sigma]
        ball = {u for _, u in order}
        radius = order[-1][0] if order else 0
        # Candidates over edges inside the ball.
        parent = {}
        for u in ball:
            if dist[u] not in (0, INF):
                preds = [p for p in g.neighbors(u)
                         if dist[p] == dist[u] - 1 and p in ball]
                if preds:
                    parent[u] = min(preds)
        for x, y, _ in g.edges():
            if x not in ball or y not in ball:
                continue
            if parent.get(x) == y or parent.get(y) == x:
                continue
            best = min(best, dist[x] + dist[y] + 1)
    return best


def two_approx_directed_mwc(g: Graph, seed: Optional[int] = None,
                            sample_constant: float = 3.0) -> float:
    """Sequential 2-approximation of directed MWC via sampling ([13] idea).

    Exact cycles through a Θ̃(n^{2/5})-vertex sample; by Fact 1 (with the
    paper's R(v) machinery collapsed to its conclusion) any missed cycle is
    2-covered by a sampled one w.h.p. This simplified form computes exact
    cycles through the sample only, so its guarantee is probabilistic in
    the same way the distributed version's case 1/2 analysis is.
    """
    if not g.directed:
        raise GraphError("two_approx_directed_mwc expects a directed graph")
    rng = np.random.default_rng(seed)
    n = g.n
    h = max(2, int(n ** 0.6))
    prob = min(1.0, sample_constant / h)
    sample = [v for v in range(n) if rng.random() < prob] or [0]
    best = INF
    for s in sample:
        d_from = distances(g, s)
        for v, w in g.in_items(s):
            if d_from[v] != INF:
                best = min(best, d_from[v] + w)
    # Short cycles: exact search restricted to h-hop closed walks from every
    # vertex (the sequential collapse of Algorithm 3's restricted BFS).
    from repro.sequential.shortest_paths import hop_limited_distances

    for v in range(n):
        d = hop_limited_distances(g, v, h)
        for u, w in g.in_items(v):
            if d[u] != INF:
                best = min(best, d[u] + w)
    return best
