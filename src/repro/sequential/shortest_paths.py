"""Centralized shortest-path references: BFS, Dijkstra, APSP, hop limits."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.graphs.graph import Graph, INF


def bfs_distances(g: Graph, source: int, h: Optional[int] = None,
                  reverse: bool = False) -> List[float]:
    """Hop distances from ``source`` along (out-)edges; ``INF`` if unreachable.

    ``h`` truncates the search to at most ``h`` hops. ``reverse`` follows
    in-edges instead, i.e. computes ``d(v, source)`` hop counts.
    """
    dist: List[float] = [INF] * g.n
    dist[source] = 0
    queue = deque([source])
    neigh = g.in_neighbors if reverse else g.out_neighbors
    while queue:
        u = queue.popleft()
        if h is not None and dist[u] >= h:
            continue
        for v in neigh(u):
            if dist[v] == INF:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def dijkstra(g: Graph, source: int, reverse: bool = False) -> List[float]:
    """Weighted distances from ``source``; ``INF`` if unreachable."""
    dist: List[float] = [INF] * g.n
    dist[source] = 0
    items = g.in_items if reverse else g.out_items
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in items(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def distances(g: Graph, source: int, reverse: bool = False) -> List[float]:
    """Weighted or hop distances depending on ``g.weighted``."""
    if g.weighted:
        return dijkstra(g, source, reverse=reverse)
    return bfs_distances(g, source, reverse=reverse)


def all_pairs_shortest_paths(g: Graph) -> List[List[float]]:
    """APSP matrix ``d[u][v]``; rows computed per-source."""
    return [distances(g, s) for s in range(g.n)]


def k_source_distances(g: Graph, sources: Iterable[int],
                       reverse: bool = False) -> Dict[int, List[float]]:
    """Distances from each source in ``sources`` (``d[s][v]``)."""
    return {s: distances(g, s, reverse=reverse) for s in sources}


def hop_limited_distances(g: Graph, source: int, h: int,
                          reverse: bool = False) -> List[float]:
    """Minimum weight over paths of at most ``h`` hops (Bellman–Ford).

    For unweighted graphs this coincides with ``bfs_distances(..., h=h)``.
    """
    if not g.weighted:
        return bfs_distances(g, source, h=h, reverse=reverse)
    dist: List[float] = [INF] * g.n
    dist[source] = 0
    items = g.out_items if not reverse else g.in_items
    cur = dist[:]
    for _ in range(h):
        nxt = cur[:]
        for u in range(g.n):
            du = cur[u]
            if du == INF:
                continue
            for v, w in items(u):
                if du + w < nxt[v]:
                    nxt[v] = du + w
        if nxt == cur:
            break
        cur = nxt
    return cur


def weight_limited_distances(g: Graph, source: int, limit: float,
                             reverse: bool = False) -> List[float]:
    """Dijkstra truncated to distances ``<= limit`` (others ``INF``).

    This is the centralized analogue of a unit-speed wave on the stretched
    graph run for ``limit`` rounds (paper §4's hop-limited MWC on ``G^s``).
    """
    dist = dijkstra(g, source, reverse=reverse)
    return [d if d <= limit else INF for d in dist]


def eccentricity(g: Graph, source: int) -> float:
    """Directed eccentricity of ``source`` (INF if some vertex unreachable)."""
    return max(distances(g, source))
