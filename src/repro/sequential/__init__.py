"""Sequential reference algorithms used as ground truth in tests and benches.

These are classical centralized algorithms (BFS, Dijkstra, APSP, exact MWC by
edge-deletion / APSP reductions). Every distributed algorithm in
:mod:`repro.core` is validated against this module.
"""

from repro.sequential.shortest_paths import (
    all_pairs_shortest_paths,
    bfs_distances,
    dijkstra,
    distances,
    hop_limited_distances,
    k_source_distances,
)
from repro.sequential.mwc import (
    exact_girth,
    exact_mwc,
    mwc_through_vertex,
    shortest_cycle_through_edge,
)

__all__ = [
    "bfs_distances",
    "dijkstra",
    "distances",
    "all_pairs_shortest_paths",
    "hop_limited_distances",
    "k_source_distances",
    "exact_mwc",
    "exact_girth",
    "mwc_through_vertex",
    "shortest_cycle_through_edge",
]
