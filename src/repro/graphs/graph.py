"""Core graph type shared by the simulator and the algorithms.

A :class:`Graph` is a fixed-vertex-set multigraph-free graph with optional
direction and optional non-negative integer edge weights, following the
paper's model: weights are in ``{0, 1, ..., W}`` with ``W = poly(n)``, and in
the CONGEST network the *communication links are always bidirectional* even
when the input graph is directed (paper §1.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, int]

#: Weight assigned to edges of unweighted graphs.
UNIT_WEIGHT = 1

#: Sentinel for "no path" distances; compares greater than any real distance.
INF = float("inf")


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class Graph:
    """A directed or undirected graph with non-negative integer weights.

    Parameters
    ----------
    n:
        Number of vertices; vertices are the integers ``0 .. n-1`` (matching
        the CONGEST convention of identifiers in ``{0, ..., n-1}``).
    directed:
        Whether edges are directed.
    weighted:
        Whether the graph carries explicit weights. Unweighted graphs store
        weight 1 on every edge so that distance code is uniform.
    """

    __slots__ = ("n", "directed", "weighted", "_adj", "_radj", "_m", "_cache")

    def __init__(self, n: int, directed: bool = False, weighted: bool = False):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self.directed = directed
        self.weighted = weighted
        # _adj[u][v] = weight of edge u->v (or undirected edge {u,v}).
        self._adj: List[Dict[int, int]] = [dict() for _ in range(n)]
        # Reverse adjacency, only maintained for directed graphs.
        self._radj: Optional[List[Dict[int, int]]] = (
            [dict() for _ in range(n)] if directed else None
        )
        self._m = 0
        # Derived-structure cache (CSR adjacency, link index, eccentricities).
        # Invalidated on any mutation; shared by every network built on this
        # graph object.
        self._cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: int = UNIT_WEIGHT) -> None:
        """Add edge ``u -> v`` (or undirected ``{u, v}``).

        Re-adding an existing edge keeps the minimum weight, which makes
        generators idempotent. Self-loops are rejected: a self-loop is a
        length-1 cycle and the paper's MWC is over simple cycles of the
        network graph, which by convention here excludes self-loops.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError("self-loops are not allowed")
        if weight < 0:
            raise GraphError(f"negative weight {weight} on edge ({u}, {v})")
        if not self.weighted and weight != UNIT_WEIGHT:
            raise GraphError("cannot set a non-unit weight on an unweighted graph")
        if v in self._adj[u]:
            weight = min(weight, self._adj[u][v])
        else:
            self._m += 1
        self._cache.clear()
        self._adj[u][v] = weight
        if self.directed:
            assert self._radj is not None
            self._radj[v][u] = weight
        else:
            self._adj[v][u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``u -> v`` (or undirected ``{u, v}``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not present")
        self._cache.clear()
        del self._adj[u][v]
        self._m -= 1
        if self.directed:
            assert self._radj is not None
            del self._radj[v][u]
        else:
            del self._adj[v][u]

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise GraphError(f"vertex {v} out of range [0, {self.n})")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of edges (directed edges for directed graphs)."""
        return self._m

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge u -> v (or undirected {u, v}) is present."""
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> int:
        """Weight of edge ``u -> v``; raises if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) not present") from None

    def out_neighbors(self, v: int) -> Iterator[int]:
        """Out-neighbors of ``v`` (all neighbors if undirected)."""
        return iter(self._adj[v])

    def in_neighbors(self, v: int) -> Iterator[int]:
        """In-neighbors of ``v`` (all neighbors if undirected)."""
        if self.directed:
            assert self._radj is not None
            return iter(self._radj[v])
        return iter(self._adj[v])

    def neighbors(self, v: int) -> Iterator[int]:
        """Neighbors in the *underlying undirected* (communication) graph."""
        if not self.directed:
            return iter(self._adj[v])
        assert self._radj is not None
        merged = set(self._adj[v])
        merged.update(self._radj[v])
        return iter(merged)

    def out_items(self, v: int) -> Iterable[Tuple[int, int]]:
        """``(neighbor, weight)`` pairs for edges leaving ``v``."""
        return self._adj[v].items()

    def in_items(self, v: int) -> Iterable[Tuple[int, int]]:
        """``(neighbor, weight)`` pairs for edges entering ``v``."""
        if self.directed:
            assert self._radj is not None
            return self._radj[v].items()
        return self._adj[v].items()

    def out_degree(self, v: int) -> int:
        """Number of out-edges of v (degree if undirected)."""
        return len(self._adj[v])

    def in_degree(self, v: int) -> int:
        """Number of in-edges of v (degree if undirected)."""
        if self.directed:
            assert self._radj is not None
            return len(self._radj[v])
        return len(self._adj[v])

    def edges(self) -> Iterator[WeightedEdge]:
        """All edges as ``(u, v, w)``; each undirected edge yielded once."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if self.directed or u < v:
                    yield (u, v, w)

    def max_weight(self) -> int:
        """Maximum edge weight (0 for edgeless graphs)."""
        return max((w for _, _, w in self.edges()), default=0)

    # ------------------------------------------------------------------
    # Derived-structure cache
    # ------------------------------------------------------------------
    def cached(self, key: Any, build) -> Any:
        """Memoize ``build()`` under ``key`` until the graph next mutates.

        Networks store per-topology structures (link index, eccentricity)
        here so that every :class:`~repro.congest.network.CongestNetwork`
        built on the same graph object shares them.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = build()
            return value

    def csr(self, reverse: bool = False
            ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]:
        """Cached CSR view of the (out- or in-) adjacency.

        Returns ``(indptr, indices, weights, wmax)`` where ``indptr`` has
        length ``n + 1``, ``indices[indptr[u]:indptr[u+1]]`` lists the
        neighbors of ``u`` *in adjacency-dict iteration order* (the order
        scalar code scans them in, which the kernel engine relies on for
        bit-identical message streams), ``weights`` is ``None`` for
        unweighted graphs, and ``wmax`` is the maximum edge weight.
        """
        return self.cached(("csr", reverse), lambda: self._build_csr(reverse))

    def _build_csr(self, reverse: bool):
        adj = self._adj
        if reverse and self.directed:
            assert self._radj is not None
            adj = self._radj
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        for u in range(self.n):
            indptr[u + 1] = indptr[u] + len(adj[u])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.int64) if self.weighted else None
        pos = 0
        for u in range(self.n):
            for v, w in adj[u].items():
                indices[pos] = v
                if weights is not None:
                    weights[pos] = w
                pos += 1
        wmax = int(weights.max()) if weights is not None and total else (
            UNIT_WEIGHT if total else 0)
        return indptr, indices, weights, wmax

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Graph with every directed edge reversed (copy if undirected)."""
        g = Graph(self.n, directed=self.directed, weighted=self.weighted)
        for u, v, w in self.edges():
            if self.directed:
                g.add_edge(v, u, w)
            else:
                g.add_edge(u, v, w)
        return g

    def underlying_undirected(self) -> "Graph":
        """Undirected unweighted communication topology of this network."""
        g = Graph(self.n, directed=False, weighted=False)
        for u, v, _ in self.edges():
            if not g.has_edge(u, v):
                g.add_edge(u, v)
        return g

    def copy(self) -> "Graph":
        """Independent deep copy of the graph."""
        g = Graph(self.n, directed=self.directed, weighted=self.weighted)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def with_weights(self, weight_of) -> "Graph":
        """Copy with each edge's weight replaced by ``weight_of(u, v, w)``."""
        g = Graph(self.n, directed=self.directed, weighted=True)
        for u, v, w in self.edges():
            g.add_edge(u, v, weight_of(u, v, w))
        return g

    def subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph; returns (subgraph, old->new vertex map)."""
        vs = sorted(set(vertices))
        remap = {old: new for new, old in enumerate(vs)}
        g = Graph(len(vs), directed=self.directed, weighted=self.weighted)
        vset = set(vs)
        for u in vs:
            for v, w in self._adj[u].items():
                if v in vset and (self.directed or u < v):
                    g.add_edge(remap[u], remap[v], w)
        return g, remap

    # ------------------------------------------------------------------
    # Communication-topology properties
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Connectivity of the underlying undirected graph.

        The CONGEST model requires the communication network to be
        connected; all simulator entry points assert this.
        """
        if self.n == 0:
            return True
        seen = [False] * self.n
        seen[0] = True
        queue = deque([0])
        count = 1
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    queue.append(v)
        return count == self.n

    def undirected_diameter(self) -> int:
        """Exact diameter ``D`` of the underlying undirected graph."""
        if self.n == 0:
            return 0
        best = 0
        for s in range(self.n):
            dist = self._undirected_bfs(s)
            ecc = max(dist)
            if ecc == INF:
                raise GraphError("diameter undefined: communication graph disconnected")
            best = max(best, int(ecc))
        return best

    def undirected_eccentricity(self, s: int) -> int:
        """Eccentricity of ``s`` in the underlying undirected graph (cached)."""
        return self.cached(("ecc", s), lambda: self._eccentricity(s))

    def _eccentricity(self, s: int) -> int:
        dist = self._undirected_bfs(s)
        ecc = max(dist)
        if ecc == INF:
            raise GraphError("eccentricity undefined: communication graph disconnected")
        return int(ecc)

    def _undirected_bfs(self, s: int) -> List[float]:
        dist: List[float] = [INF] * self.n
        dist[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if dist[v] == INF:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    # ------------------------------------------------------------------
    # Interop & dunder
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a networkx (Di)Graph with ``weight`` edge attributes."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.n))
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_networkx(cls, g, weighted: Optional[bool] = None) -> "Graph":
        """Build from a networkx graph with integer nodes ``0..n-1``."""
        import networkx as nx

        directed = g.is_directed()
        if weighted is None:
            weighted = any("weight" in d and d["weight"] != 1 for _, _, d in g.edges(data=True))
        out = cls(g.number_of_nodes(), directed=directed, weighted=weighted)
        for u, v, data in g.edges(data=True):
            w = int(data.get("weight", UNIT_WEIGHT)) if weighted else UNIT_WEIGHT
            out.add_edge(int(u), int(v), w)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.directed == other.directed
            and self.weighted == other.weighted
            and self._adj == other._adj
        )

    def __hash__(self):
        raise TypeError("Graph is mutable and unhashable")

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        wk = "weighted" if self.weighted else "unweighted"
        return f"Graph(n={self.n}, m={self.m}, {kind}, {wk})"
