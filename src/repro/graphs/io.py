"""Edge-list persistence for graphs (used by the CLI and examples).

Format: a header line followed by one edge per line::

    %repro n=5 directed=1 weighted=1
    0 1 3
    1 2 4

Unweighted graphs omit the weight column (a present column must be 1).
Lines starting with ``#`` or ``%`` (other than the header) are comments.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

from repro.graphs.graph import Graph, GraphError

PathOrFile = Union[str, os.PathLike, TextIO]


def save_edgelist(g: Graph, target: PathOrFile) -> None:
    """Write ``g`` in the repro edge-list format."""
    if hasattr(target, "write"):
        _write(g, target)  # type: ignore[arg-type]
    else:
        with open(target, "w") as f:
            _write(g, f)


def _write(g: Graph, f: TextIO) -> None:
    f.write(f"%repro n={g.n} directed={int(g.directed)} "
            f"weighted={int(g.weighted)}\n")
    for u, v, w in g.edges():
        if g.weighted:
            f.write(f"{u} {v} {w}\n")
        else:
            f.write(f"{u} {v}\n")


def load_edgelist(source: PathOrFile) -> Graph:
    """Read a graph written by :func:`save_edgelist`."""
    if hasattr(source, "read"):
        return _read(source)  # type: ignore[arg-type]
    with open(source) as f:
        return _read(f)


def _read(f: TextIO) -> Graph:
    header = f.readline().strip()
    if not header.startswith("%repro"):
        raise GraphError("missing '%repro' header line")
    fields = {}
    for token in header.split()[1:]:
        if "=" not in token:
            raise GraphError(f"malformed header token {token!r}")
        key, value = token.split("=", 1)
        fields[key] = int(value)
    try:
        g = Graph(fields["n"], directed=bool(fields["directed"]),
                  weighted=bool(fields["weighted"]))
    except KeyError as missing:
        raise GraphError(f"header missing field {missing}") from None
    for lineno, line in enumerate(f, start=2):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise GraphError(f"line {lineno}: expected 'u v [w]', got {line!r}")
        u, v = int(parts[0]), int(parts[1])
        w = int(parts[2]) if len(parts) == 3 else 1
        if not g.weighted and w != 1:
            raise GraphError(f"line {lineno}: weight on unweighted graph")
        g.add_edge(u, v, w)
    return g
