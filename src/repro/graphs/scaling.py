"""Weight scaling from Nanongkai [41], as used in the paper's Section 5.

For hop bound ``h`` and accuracy ``eps``, the scale-``i`` graph ``G^i``
replaces each weight ``w`` by ``ceil(2 h w / (eps 2^i))``. The key lemma
(restated from [41] / paper §5.1): an ``h``-hop-limited shortest path ``P``
in ``G`` with weight ``w(P)`` in ``(2^{i-1}, 2^i]`` has, in ``G^{i}``, scaled
weight at most ``h* = (1 + 2/eps) h``, and conversely any path of scaled
weight ``d_i <= h*`` in ``G^i`` has true weight at most
``eps * 2^i * d_i / (2 h)``, which for the optimal ``P`` at its own scale
``i* = ceil(log2 w(P))`` is at most ``(1 + eps) w(P)``.

These facts are property-tested in ``tests/test_scaling.py``.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from repro.graphs.graph import Graph


def hop_budget(h: int, eps: float) -> int:
    """``h* = ceil((1 + 2/eps) * h)``, the scaled-graph hop budget."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return math.ceil((1 + 2.0 / eps) * h)


def scale_weight(w: int, i: int, h: int, eps: float) -> int:
    """Scaled weight ``ceil(2 h w / (eps 2^i))`` (0 maps to 0)."""
    if w == 0:
        return 0
    return math.ceil(2.0 * h * w / (eps * (2 ** i)))


def unscale_value(scaled: float, i: int, h: int, eps: float) -> float:
    """Upper bound on the true weight of a path of scaled weight ``scaled``."""
    return eps * (2 ** i) * scaled / (2.0 * h)


def scale_index_for_weight(w: float) -> int:
    """Smallest ``i`` with ``2^i >= w`` (the scale where ``w`` is captured)."""
    if w <= 0:
        return 0
    return max(0, math.ceil(math.log2(w)))


def num_scales(h: int, max_weight: int) -> int:
    """Number of scales needed to cover h-hop paths: ``ceil(log2(h W)) + 1``.

    An ``h``-hop path has weight at most ``h * W``, so scales
    ``i = 0 .. ceil(log2 (h W))`` cover every possible optimal value.
    """
    if max_weight <= 0:
        return 1
    return scale_index_for_weight(h * max_weight) + 1


def scaled_graph(g: Graph, i: int, h: int, eps: float,
                 clamp: int | None = None) -> Graph:
    """The scale-``i`` graph ``G^i`` with weights ``ceil(2hw / (eps 2^i))``.

    ``clamp`` caps scaled weights (edges heavier than the hop budget can
    never be used by a hop-budget-limited search, so clamping to
    ``h* + 1`` preserves all reachable distances while keeping virtual path
    lengths bounded).
    """
    def f(_u: int, _v: int, w: int) -> int:
        s = scale_weight(w, i, h, eps)
        # A zero-weight edge becomes a zero-length virtual path, which the
        # unit-speed wave model cannot represent; use weight 1 (this only
        # adds <= h to a path's scaled weight, absorbed by h*'s slack the
        # same way the per-edge ceil() is).
        s = max(s, 1)
        if clamp is not None:
            s = min(s, clamp)
        return s

    return g.with_weights(f)


def scale_ladder(g: Graph, h: int, eps: float,
                 clamp: int | None = None) -> Iterator[Tuple[int, Graph]]:
    """Yield ``(i, G^i)`` for every scale, with over-budget weights clamped.

    ``clamp`` defaults to ``hop_budget(h, eps) + 1``; pass a larger value
    when waves will run with a larger budget — a clamped edge must stay
    strictly heavier than every budget it could be probed with, otherwise a
    wave would traverse it at an understated weight.
    """
    if clamp is None:
        clamp = hop_budget(h, eps) + 1
    for i in range(num_scales(h, g.max_weight())):
        yield i, scaled_graph(g, i, h, eps, clamp=clamp)
