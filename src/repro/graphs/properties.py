"""Structural graph properties used by workloads, examples, and diagnostics."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.graphs.graph import Graph, GraphError


def degree_statistics(g: Graph) -> Dict[str, float]:
    """Min/max/mean (out-)degree and edge density."""
    if g.n == 0:
        return {"min": 0, "max": 0, "mean": 0.0, "density": 0.0}
    degrees = [g.out_degree(v) for v in range(g.n)]
    possible = g.n * (g.n - 1)
    if not g.directed:
        possible //= 2
    return {
        "min": min(degrees),
        "max": max(degrees),
        "mean": sum(degrees) / g.n,
        "density": g.m / possible if possible else 0.0,
    }


def is_dag(g: Graph) -> bool:
    """Whether a directed graph is acyclic (Kahn's algorithm)."""
    if not g.directed:
        raise GraphError("is_dag is defined for directed graphs")
    indeg = [g.in_degree(v) for v in range(g.n)]
    queue = deque(v for v in range(g.n) if indeg[v] == 0)
    seen = 0
    while queue:
        u = queue.popleft()
        seen += 1
        for v in g.out_neighbors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    return seen == g.n


def strongly_connected_components(g: Graph) -> List[List[int]]:
    """SCCs of a directed graph (iterative Tarjan)."""
    if not g.directed:
        raise GraphError("SCCs are defined for directed graphs")
    index = [0] * g.n
    low = [0] * g.n
    on_stack = [False] * g.n
    visited = [False] * g.n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [1]

    for root in range(g.n):
        if visited[root]:
            continue
        work: List[Tuple[int, object]] = [(root, None)]
        while work:
            v, it = work[-1]
            if it is None:
                visited[v] = True
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
                it = iter(list(g.out_neighbors(v)))
                work[-1] = (v, it)
            advanced = False
            for w in it:  # type: ignore[union-attr]
                if not visited[w]:
                    work.append((w, None))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(sorted(comp))
    return sccs


def has_directed_cycle(g: Graph) -> bool:
    """Whether a directed graph contains any cycle (no MWC computation)."""
    return not is_dag(g)


def bridges(g: Graph) -> List[Tuple[int, int]]:
    """Bridge edges of an undirected graph (edges on no cycle)."""
    if g.directed:
        raise GraphError("bridges are defined for undirected graphs")
    disc = [0] * g.n
    low = [0] * g.n
    visited = [False] * g.n
    out: List[Tuple[int, int]] = []
    counter = [1]
    for root in range(g.n):
        if visited[root]:
            continue
        stack: List[Tuple[int, int, object]] = [(root, -1, None)]
        while stack:
            v, parent, it = stack[-1]
            if it is None:
                visited[v] = True
                disc[v] = low[v] = counter[0]
                counter[0] += 1
                it = iter(list(g.neighbors(v)))
                stack[-1] = (v, parent, it)
            advanced = False
            for w in it:  # type: ignore[union-attr]
                if not visited[w]:
                    stack.append((w, v, None))
                    advanced = True
                    break
                if w != parent:
                    low[v] = min(low[v], disc[w])
            if advanced:
                continue
            stack.pop()
            if stack:
                p = stack[-1][0]
                low[p] = min(low[p], low[v])
                if low[v] > disc[p]:
                    out.append((min(p, v), max(p, v)))
    return sorted(out)
