"""Workload graph generators for tests, examples, and benchmarks.

All generators take an explicit ``rng`` (``numpy.random.Generator``) or
``seed`` and guarantee the *communication* (underlying undirected) graph is
connected, which the CONGEST model requires. Directed generators additionally
make sure a directed cycle exists when the benchmark needs a finite MWC.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph, GraphError


def _resolve_rng(rng=None, seed: Optional[int] = None) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def _connect_backbone(g: Graph, rng: np.random.Generator, weight: int = 1) -> None:
    """Add a random Hamiltonian path so the communication graph is connected.

    For directed graphs the path alternates direction randomly; communication
    links are bidirectional regardless of edge direction, so any orientation
    connects the network.
    """
    order = rng.permutation(g.n)
    for i in range(g.n - 1):
        u, v = int(order[i]), int(order[i + 1])
        if g.directed and rng.random() < 0.5:
            u, v = v, u
        if not g.has_edge(u, v) and not (g.directed and g.has_edge(v, u)):
            g.add_edge(u, v, weight)


def erdos_renyi(
    n: int,
    p: float,
    directed: bool = False,
    weighted: bool = False,
    max_weight: int = 1,
    rng=None,
    seed: Optional[int] = None,
    ensure_connected: bool = True,
) -> Graph:
    """G(n, p) graph; weights uniform in ``[1, max_weight]`` if weighted."""
    rng = _resolve_rng(rng, seed)
    if not 0 <= p <= 1:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    g = Graph(n, directed=directed, weighted=weighted)
    for u in range(n):
        for v in range(n):
            if u == v or (not directed and u > v):
                continue
            if rng.random() < p:
                w = int(rng.integers(1, max_weight + 1)) if weighted else 1
                g.add_edge(u, v, w)
    if ensure_connected and n > 1:
        w = int(rng.integers(1, max_weight + 1)) if weighted else 1
        _connect_backbone(g, rng, weight=w)
    return g


def random_weighted(
    n: int,
    p: float,
    max_weight: int,
    directed: bool = False,
    rng=None,
    seed: Optional[int] = None,
) -> Graph:
    """Convenience wrapper: connected weighted G(n, p)."""
    return erdos_renyi(
        n, p, directed=directed, weighted=True, max_weight=max_weight, rng=rng, seed=seed
    )


def cycle_graph(n: int, directed: bool = False, weighted: bool = False,
                weights: Optional[Sequence[int]] = None) -> Graph:
    """Single n-cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n < 2 or (n == 2 and not directed):
        raise GraphError("cycle needs >= 3 vertices undirected, >= 2 directed")
    g = Graph(n, directed=directed, weighted=weighted)
    for i in range(n):
        w = weights[i] if weights is not None else 1
        g.add_edge(i, (i + 1) % n, w)
    return g


def cycle_with_chords(
    n: int,
    num_chords: int,
    directed: bool = False,
    weighted: bool = False,
    max_weight: int = 1,
    rng=None,
    seed: Optional[int] = None,
) -> Graph:
    """An n-cycle plus random chords; girth shrinks as chords are added."""
    rng = _resolve_rng(rng, seed)
    g = cycle_graph(n, directed=directed, weighted=weighted,
                    weights=[1] * n if weighted else None)
    added = 0
    attempts = 0
    while added < num_chords and attempts < 50 * max(1, num_chords):
        attempts += 1
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v or g.has_edge(u, v) or (not directed and g.has_edge(v, u)):
            continue
        w = int(rng.integers(1, max_weight + 1)) if weighted else 1
        g.add_edge(u, v, w)
        added += 1
    return g


def planted_mwc(
    n: int,
    cycle_len: int,
    p: float = 0.0,
    directed: bool = True,
    weighted: bool = False,
    cycle_weight: int = 1,
    background_weight: int = 1,
    rng=None,
    seed: Optional[int] = None,
) -> Graph:
    """Graph with a planted short cycle of known weight on random vertices.

    The planted cycle has ``cycle_len`` edges each of weight ``cycle_weight``
    and is placed on a uniformly random vertex subset. Background edges are
    added with probability ``p`` at weight ``background_weight``. With
    ``background_weight`` large the planted cycle is the unique MWC, giving
    benchmarks a known ground truth without a sequential solve.

    Returns the graph; the planted cycle weight is
    ``cycle_len * cycle_weight``.
    """
    rng = _resolve_rng(rng, seed)
    if cycle_len < (2 if directed else 3):
        raise GraphError(f"cycle_len {cycle_len} too short")
    if cycle_len > n:
        raise GraphError(f"cycle_len {cycle_len} exceeds n={n}")
    g = Graph(n, directed=directed, weighted=weighted)
    members = [int(x) for x in rng.choice(n, size=cycle_len, replace=False)]
    for i in range(cycle_len):
        u, v = members[i], members[(i + 1) % cycle_len]
        g.add_edge(u, v, cycle_weight if weighted else 1)
    if p > 0:
        for u in range(n):
            for v in range(n):
                if u == v or (not directed and u > v):
                    continue
                if not g.has_edge(u, v) and rng.random() < p:
                    g.add_edge(u, v, background_weight if weighted else 1)
    _connect_backbone(g, rng, weight=background_weight if weighted else 1)
    return g


def grid_graph(rows: int, cols: int, weighted: bool = False,
               max_weight: int = 1, rng=None, seed: Optional[int] = None) -> Graph:
    """Undirected grid; vertex ``(r, c)`` is index ``r * cols + c``."""
    rng = _resolve_rng(rng, seed)
    g = Graph(rows * cols, directed=False, weighted=weighted)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                w = int(rng.integers(1, max_weight + 1)) if weighted else 1
                g.add_edge(v, v + 1, w)
            if r + 1 < rows:
                w = int(rng.integers(1, max_weight + 1)) if weighted else 1
                g.add_edge(v, v + cols, w)
    return g


def random_regular(n: int, d: int, weighted: bool = False, max_weight: int = 1,
                   rng=None, seed: Optional[int] = None) -> Graph:
    """Random d-regular undirected graph (expander-like for d >= 3)."""
    import networkx as nx

    rng = _resolve_rng(rng, seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    for attempt in range(20):
        gnx = nx.random_regular_graph(d, n, seed=nx_seed + attempt)
        if nx.is_connected(gnx):
            break
    else:
        raise GraphError(f"could not generate connected {d}-regular graph on {n} nodes")
    g = Graph(n, directed=False, weighted=weighted)
    for u, v in gnx.edges():
        w = int(rng.integers(1, max_weight + 1)) if weighted else 1
        g.add_edge(int(u), int(v), w)
    return g


def ring_of_cliques(num_cliques: int, clique_size: int, weighted: bool = False,
                    bridge_weight: int = 1) -> Graph:
    """Cliques arranged in a ring; girth 3 locally, long global cycle.

    Useful for exercising both the "short cycle" and "long cycle" paths of
    the paper's algorithms in one instance.
    """
    if num_cliques < 3 or clique_size < 3:
        raise GraphError("need >= 3 cliques of size >= 3")
    n = num_cliques * clique_size
    g = Graph(n, directed=False, weighted=weighted)
    for k in range(num_cliques):
        base = k * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j, 1)
        nxt = ((k + 1) % num_cliques) * clique_size
        g.add_edge(base + clique_size - 1, nxt, bridge_weight if weighted else 1)
    return g


def complete_graph(n: int, directed: bool = False, weighted: bool = False,
                   max_weight: int = 1, rng=None, seed: Optional[int] = None) -> Graph:
    """Complete graph (both arc directions when directed)."""
    rng = _resolve_rng(rng, seed)
    g = Graph(n, directed=directed, weighted=weighted)
    for u in range(n):
        for v in range(n):
            if u == v or (not directed and u > v):
                continue
            w = int(rng.integers(1, max_weight + 1)) if weighted else 1
            g.add_edge(u, v, w)
    return g


def barbell_graph(clique_size: int, bridge_len: int,
                  weighted: bool = False) -> Graph:
    """Two cliques joined by a path: tiny girth at both ends, huge diameter.

    A stress shape for the girth algorithms: the minimum cycle is a local
    triangle while most of the graph is cycle-free path.
    """
    if clique_size < 3:
        raise GraphError("cliques need >= 3 vertices")
    if bridge_len < 1:
        raise GraphError("bridge needs >= 1 edge")
    n = 2 * clique_size + max(0, bridge_len - 1)
    g = Graph(n, directed=False, weighted=weighted)
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j, 1)
    # Bridge from vertex 0 of clique A to vertex 0 of clique B.
    prev = 0
    for step in range(bridge_len - 1):
        mid = 2 * clique_size + step
        g.add_edge(prev, mid, 1)
        prev = mid
    g.add_edge(prev, clique_size, 1)
    return g


def layered_digraph(
    layers: int,
    width: int,
    back_edges: int,
    weighted: bool = False,
    max_weight: int = 1,
    rng=None,
    seed: Optional[int] = None,
) -> Graph:
    """A layered DAG plus a few back edges: every cycle spans >= 2 layers.

    Directed-MWC stress shape: cycle lengths are controlled by how far back
    the back edges jump, so the long-cycle/short-cycle split of Algorithm 2
    is exercised deterministically.
    """
    rng = _resolve_rng(rng, seed)
    if layers < 2 or width < 1:
        raise GraphError("need >= 2 layers of >= 1 vertices")
    n = layers * width
    g = Graph(n, directed=True, weighted=weighted)

    def vid(layer: int, i: int) -> int:
        return layer * width + i

    for layer in range(layers - 1):
        for i in range(width):
            targets = rng.choice(width, size=min(2, width), replace=False)
            for j in targets:
                w = int(rng.integers(1, max_weight + 1)) if weighted else 1
                g.add_edge(vid(layer, i), vid(layer + 1, int(j)), w)
    for _ in range(back_edges):
        src_layer = int(rng.integers(1, layers))
        dst_layer = int(rng.integers(0, src_layer))
        u = vid(src_layer, int(rng.integers(0, width)))
        v = vid(dst_layer, int(rng.integers(0, width)))
        if u != v and not g.has_edge(u, v):
            w = int(rng.integers(1, max_weight + 1)) if weighted else 1
            g.add_edge(u, v, w)
    _connect_backbone(g, rng)
    return g


def caveman_graph(num_caves: int, cave_size: int, rewire: int = 0,
                  rng=None, seed: Optional[int] = None) -> Graph:
    """Connected caveman graph: cliques on a ring, optionally rewired.

    Classic community-structure topology; with ``rewire`` extra random
    inter-cave edges it gains shortcut cycles of varying length.
    """
    rng = _resolve_rng(rng, seed)
    g = ring_of_cliques(num_caves, cave_size)
    n = g.n
    added = 0
    attempts = 0
    while added < rewire and attempts < 50 * max(1, rewire):
        attempts += 1
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v or g.has_edge(u, v) or u // cave_size == v // cave_size:
            continue
        g.add_edge(u, v)
        added += 1
    return g
