"""Stretched graphs ``G^s`` (paper §4) and their CONGEST simulation map.

A weighted edge ``(u, v, w)`` becomes a path of ``w`` unit edges. Per the
paper, "all but the last edge of the path" is simulated at one endpoint: the
``w - 1`` internal virtual vertices are *hosted* on the physical node ``u``,
so messages along the virtual path consume link bandwidth only on the final
(physical) hop.

The production algorithms do not materialize stretched graphs — they use the
unit-speed wave primitives in :mod:`repro.congest.primitives.waves`, which
are round-for-round equivalent (a wave takes ``w`` rounds to cross a weight-
``w`` edge and one physical message). :class:`StretchedGraph` exists so that
tests can check that equivalence on small instances, and so the simulator's
virtual-hosting feature is exercised end to end.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph, GraphError


class StretchedGraph:
    """Materialized stretched graph with host map.

    Attributes
    ----------
    graph:
        The unweighted stretched graph ``G^s`` (directed iff input directed).
    host:
        ``host[x]`` is the physical node (an original-vertex id) simulating
        stretched vertex ``x``.
    original_to_stretched:
        Maps each original vertex to its stretched id (originals keep ids
        ``0 .. n-1``).
    """

    def __init__(self, g: Graph):
        if not g.weighted:
            raise GraphError("stretching an unweighted graph is the identity; "
                             "pass a weighted graph")
        n = g.n
        edges: List[Tuple[int, int]] = []
        host: List[int] = list(range(n))
        next_id = n
        self.virtual_owner: Dict[int, Tuple[int, int]] = {}
        for u, v, w in g.edges():
            if w < 1:
                raise GraphError(
                    f"stretching requires weights >= 1, edge ({u},{v}) has {w}")
            prev = u
            for step in range(w - 1):
                x = next_id
                next_id += 1
                host.append(u)
                self.virtual_owner[x] = (u, v)
                edges.append((prev, x))
                prev = x
            edges.append((prev, v))
        gs = Graph(next_id, directed=g.directed, weighted=False)
        for a, b in edges:
            gs.add_edge(a, b)
        self.graph = gs
        self.host = host
        self.original_to_stretched = {v: v for v in range(n)}
        self.n_original = n

    def is_original(self, x: int) -> bool:
        """Whether stretched vertex x is an original (non-virtual) vertex."""
        return x < self.n_original
