"""Graph substrate: graph type, generators, scaling, and stretching.

The :class:`~repro.graphs.graph.Graph` type is the single graph
representation used across the repository: by the sequential reference
algorithms, the CONGEST simulator (which derives its communication topology
from the graph's underlying undirected edges), the lower-bound constructions,
and the benchmark workload generators.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    barbell_graph,
    caveman_graph,
    complete_graph,
    cycle_graph,
    cycle_with_chords,
    erdos_renyi,
    grid_graph,
    layered_digraph,
    planted_mwc,
    random_regular,
    random_weighted,
    ring_of_cliques,
)
from repro.graphs.scaling import scaled_graph, scale_index_for_weight
from repro.graphs.stretch import StretchedGraph

__all__ = [
    "Graph",
    "barbell_graph",
    "caveman_graph",
    "complete_graph",
    "layered_digraph",
    "cycle_graph",
    "cycle_with_chords",
    "erdos_renyi",
    "grid_graph",
    "planted_mwc",
    "random_regular",
    "random_weighted",
    "ring_of_cliques",
    "scaled_graph",
    "scale_index_for_weight",
    "StretchedGraph",
]
