"""Content-addressed disk cache for graphs and sequential ground truths.

Benchmark sweeps spend a surprising share of wall-clock recomputing values
that never change between runs: the generated workload graphs and the
*sequential* reference answers (true minimum weight cycle, SSSP distance
tables) that each sweep point compares the CONGEST result against. Both are
pure functions of the graph, so this module memoizes them on disk, keyed by
a stable content digest of the graph itself — not by generator parameters,
so any two ways of building the same graph share cache entries, and any
change to a generator automatically misses.

Layout: one JSON file per entry under ``benchmarks/results/.cache/<kind>/``
(override the root with ``REPRO_CACHE_DIR``; disable entirely with
``REPRO_CACHE=0``). Writes are atomic (pid-unique tmp + fsync + rename), so
an interrupted run — or several sweep workers racing on the same entry —
never leaves a corrupt entry: concurrent writers each rename a private tmp
file and the last rename wins with a complete entry either way. Entries
record the digest they were computed for, and loads verify it, so a
hash-scheme change invalidates old entries instead of serving them.

A corrupted entry (truncated JSON, wrong schema, bad key) self-heals: the
load quarantines the damaged file to ``<entry>.corrupt`` and reports a
miss, so the value is recomputed and re-stored; the quarantined copy is
kept for one generation of post-mortems and replaced on the next incident.

The checkpoint subsystem (:mod:`repro.congest.checkpoint`) stores binary
snapshots through the same root via :func:`store_blob` / :func:`load_blob`,
with the same atomic-write and quarantine discipline.

Only *sequential* truths are cached — never CONGEST runs: measured rounds
and message counts are what the benchmarks exist to measure.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.graphs.graph import Graph

#: Set to ``"0"`` to bypass the cache entirely (every call recomputes).
CACHE_ENV = "REPRO_CACHE"
#: Overrides the on-disk cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the digest scheme or any entry format changes incompatibly.
_SCHEMA = 1

#: Process-wide hit/miss counters, keyed by entry kind (``repro cache
#: stats`` reports the on-disk view; these serve tests and profiling).
#: ``quarantined`` counts corrupted entries set aside by the self-heal path.
counters: Dict[str, int] = {"hits": 0, "misses": 0, "quarantined": 0}


def cache_enabled() -> bool:
    """Whether the disk cache is active (default: yes)."""
    return os.environ.get(CACHE_ENV, "1") != "0"


def cache_root() -> str:
    """The cache directory (created on demand)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        path = override
    else:
        here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        path = os.path.join(here, "benchmarks", "results", ".cache")
    os.makedirs(path, exist_ok=True)
    return path


def graph_digest(g: Graph) -> str:
    """Stable content digest of a graph.

    Hashes the canonical encoding (schema version, n, directed, weighted,
    sorted edge triples), so digests are independent of construction order
    and stable across processes and sessions — unlike ``hash()``.
    """
    h = hashlib.sha256()
    h.update(f"{_SCHEMA}|{g.n}|{int(g.directed)}|{int(g.weighted)}".encode())
    for u, v, w in sorted(g.edges()):
        h.update(f"|{u},{v},{w}".encode())
    return h.hexdigest()


def _entry_path(kind: str, key: str) -> str:
    directory = os.path.join(cache_root(), kind)
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"{key}.json")


def _quarantine(path: str) -> None:
    """Set a damaged entry aside (best effort) so the next write starts clean.

    The rename doubles as the self-heal: the corrupt file no longer shadows
    the entry path, so the recomputed value lands in a fresh file. Keeping
    the ``.corrupt`` copy (latest incident only) aids post-mortems without
    growing unboundedly.
    """
    try:
        os.replace(path, f"{path}.corrupt")
        counters["quarantined"] += 1
    except OSError:
        pass


def _load(kind: str, key: str) -> Optional[Dict[str, Any]]:
    path = _entry_path(kind, key)
    try:
        with open(path) as f:
            entry = json.load(f)
    except FileNotFoundError:
        return None
    except OSError:
        return None
    except ValueError:
        # Truncated or garbled JSON: quarantine and recompute.
        _quarantine(path)
        return None
    if not isinstance(entry, dict) or entry.get("schema") != _SCHEMA \
            or entry.get("key") != key:
        # Readable JSON that is not a valid entry for this key: same
        # self-heal path as a parse failure.
        _quarantine(path)
        return None
    return entry


def _store(kind: str, key: str, payload: Any) -> None:
    path = _entry_path(kind, key)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as f:
            # json round-trips inf as Infinity by default (allow_nan), which
            # the MWC value of an acyclic graph needs.
            json.dump({"schema": _SCHEMA, "key": key, "value": payload}, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except OSError:
        # A read-only or full disk degrades to a recompute, never an error.
        pass
    finally:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:
                pass


def memoized(kind: str, key: str, compute: Callable[[], Any],
             encode: Callable[[Any], Any] = lambda v: v,
             decode: Callable[[Any], Any] = lambda v: v) -> Any:
    """Return the cached value for ``(kind, key)``, computing on miss.

    ``encode``/``decode`` adapt the value to and from its JSON form (JSON
    object keys are strings, so int-keyed dicts need the round trip).
    """
    if not cache_enabled():
        return compute()
    entry = _load(kind, key)
    if entry is not None:
        counters["hits"] += 1
        return decode(entry["value"])
    counters["misses"] += 1
    value = compute()
    _store(kind, key, encode(value))
    return value


# ----------------------------------------------------------------------
# Binary blobs (checkpoint snapshots)
# ----------------------------------------------------------------------
def blob_path(kind: str, key: str) -> str:
    """On-disk path of the blob ``(kind, key)`` (directory created)."""
    directory = os.path.join(cache_root(), kind)
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"{key}.bin")


def store_blob(kind: str, key: str, data: bytes) -> Optional[str]:
    """Atomically write a binary blob; returns its path (None on IO error).

    Same discipline as the JSON entries: pid-unique tmp + fsync + rename,
    so a kill mid-write can never leave a truncated blob under the entry
    path — which is exactly what checkpoint snapshots need to guarantee
    that the *latest complete* checkpoint always survives.
    """
    path = blob_path(kind, key)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
        return path
    except OSError:
        return None
    finally:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:
                pass


def load_blob(kind: str, key: str) -> Optional[bytes]:
    """Read a binary blob, or None when absent/unreadable."""
    try:
        with open(blob_path(kind, key), "rb") as f:
            return f.read()
    except OSError:
        return None


def drop_blob(kind: str, key: str) -> bool:
    """Delete a blob; True if one existed."""
    try:
        os.remove(blob_path(kind, key))
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# Ground truths
# ----------------------------------------------------------------------
def cached_exact_mwc(g: Graph) -> float:
    """True minimum weight cycle (``repro.sequential.exact_mwc``), cached."""
    from repro.sequential import exact_mwc

    return float(memoized("mwc", graph_digest(g), lambda: exact_mwc(g)))


def cached_exact_girth(g: Graph) -> float:
    """True girth (``repro.sequential.exact_girth``), cached."""
    from repro.sequential import exact_girth

    return float(memoized("girth", graph_digest(g), lambda: exact_girth(g)))


def cached_k_source_distances(
    g: Graph, sources: Iterable[int], reverse: bool = False
) -> Dict[int, List[float]]:
    """Sequential k-source distance table, cached per (graph, sources)."""
    from repro.sequential import k_source_distances

    src_list = list(sources)
    suffix = hashlib.sha256(
        (",".join(map(str, src_list)) + f"|r{int(reverse)}").encode()
    ).hexdigest()[:16]
    key = f"{graph_digest(g)}-{suffix}"
    return memoized(
        "ksource", key,
        lambda: k_source_distances(g, src_list, reverse=reverse),
        encode=lambda table: {str(s): d for s, d in table.items()},
        decode=lambda table: {int(s): list(d) for s, d in table.items()},
    )


def cached_distances(g: Graph, source: int, reverse: bool = False) -> List[float]:
    """Sequential single-source distances, cached per (graph, source)."""
    from repro.sequential import distances

    key = f"{graph_digest(g)}-s{source}-r{int(reverse)}"
    return memoized("sssp", key,
                    lambda: distances(g, source, reverse=reverse),
                    decode=lambda d: list(d))


# ----------------------------------------------------------------------
# Generated graphs
# ----------------------------------------------------------------------
def cached_graph(key: str, build: Callable[[], Graph]) -> Graph:
    """Memoize a deterministic graph construction under a caller-chosen key.

    ``key`` must uniquely describe the construction (builder name plus every
    parameter including seeds); the entry stores the full edge list, so a
    hit skips the generator entirely. Keys are hashed, so any length and
    characters are fine.
    """
    digest = hashlib.sha256(f"{_SCHEMA}|{key}".encode()).hexdigest()

    def encode(g: Graph) -> Dict[str, Any]:
        return {"n": g.n, "directed": g.directed, "weighted": g.weighted,
                "edges": [[u, v, w] for u, v, w in g.edges()]}

    def decode(payload: Dict[str, Any]) -> Graph:
        g = Graph(payload["n"], directed=payload["directed"],
                  weighted=payload["weighted"])
        for u, v, w in payload["edges"]:
            g.add_edge(u, v, w)
        return g

    return memoized("graph", digest, build, encode=encode, decode=decode)


# ----------------------------------------------------------------------
# Maintenance (surfaced by ``repro cache`` in the CLI)
# ----------------------------------------------------------------------
def info() -> Dict[str, Any]:
    """Entry counts and total bytes per kind, plus the root path."""
    root = cache_root()
    kinds: Dict[str, Dict[str, int]] = {}
    total_bytes = 0
    for kind in sorted(os.listdir(root)):
        directory = os.path.join(root, kind)
        if not os.path.isdir(directory):
            continue
        files = [f for f in os.listdir(directory)
                 if f.endswith((".json", ".bin"))]
        size = sum(os.path.getsize(os.path.join(directory, f)) for f in files)
        kinds[kind] = {"entries": len(files), "bytes": size}
        total_bytes += size
    return {"root": root, "kinds": kinds, "total_bytes": total_bytes,
            "enabled": cache_enabled()}


def clear() -> int:
    """Delete every cache entry; returns the number removed."""
    root = cache_root()
    removed = 0
    for kind in os.listdir(root):
        directory = os.path.join(root, kind)
        if not os.path.isdir(directory):
            continue
        for name in os.listdir(directory):
            try:
                os.remove(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass
    return removed
