"""repro: Minimum Weight Cycle in the CONGEST model (PODC 2024 reproduction).

Public API
----------
Graphs and generators live in :mod:`repro.graphs`; the CONGEST simulator in
:mod:`repro.congest`; the paper's algorithms in :mod:`repro.core`;
lower-bound constructions in :mod:`repro.lowerbounds`; sequential ground
truth in :mod:`repro.sequential`; analysis helpers in :mod:`repro.analysis`.
"""

from repro.graphs.graph import Graph, INF
from repro.congest.network import CongestNetwork, RoundBudgetExceeded, round_budget
from repro.congest.faults import FaultPlan, FaultStats, FaultyNetwork, LinkOutage, NodeCrash

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "INF",
    "CongestNetwork",
    "FaultPlan",
    "FaultStats",
    "FaultyNetwork",
    "LinkOutage",
    "NodeCrash",
    "RoundBudgetExceeded",
    "round_budget",
    "directed_mwc_2approx",
    "directed_weighted_mwc_approx",
    "exact_mwc_congest",
    "girth_2approx",
    "k_source_bfs",
    "k_source_sssp",
    "undirected_weighted_mwc_approx",
    "apsp_unweighted",
    "apsp_weighted_exact",
    "apsp_approx",
    "mwc_via_approx_apsp",
    "shortest_cycle_within",
    "has_cycle_of_length_at_most",
    "load_edgelist",
    "save_edgelist",
    "__version__",
]


def __getattr__(name):
    # Lazy imports: the algorithm modules pull in the full stack; deferring
    # keeps `import repro` cheap and avoids cycles during partial builds.
    if name == "directed_mwc_2approx":
        from repro.core.directed_mwc import directed_mwc_2approx
        return directed_mwc_2approx
    if name in {"directed_weighted_mwc_approx", "undirected_weighted_mwc_approx"}:
        from repro.core import weighted_mwc
        return getattr(weighted_mwc, name)
    if name == "girth_2approx":
        from repro.core.girth import girth_2approx
        return girth_2approx
    if name in {"k_source_bfs", "k_source_sssp"}:
        from repro.core import ksource
        return getattr(ksource, name)
    if name == "exact_mwc_congest":
        from repro.core.exact_mwc import exact_mwc_congest
        return exact_mwc_congest
    if name in {"apsp_unweighted", "apsp_weighted_exact", "apsp_approx",
                "mwc_via_approx_apsp"}:
        from repro.core import apsp
        return getattr(apsp, name)
    if name in {"shortest_cycle_within", "has_cycle_of_length_at_most"}:
        from repro.core import cycle_detection
        return getattr(cycle_detection, name)
    if name in {"load_edgelist", "save_edgelist"}:
        from repro.graphs import io
        return getattr(io, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
