"""Experiment harness shared by the benchmark suite.

Each benchmark regenerates one Table 1 row (or Theorem 1.6 curve): it sweeps
a workload over a geometric n range, collects measured CONGEST rounds and
approximation ratios, fits the growth exponent, and emits a row-formatted
report. Results are also persisted as JSON under ``benchmarks/results/`` so
EXPERIMENTS.md numbers can be regenerated.

Sweep points are independent, so :func:`run_sweep` can fan them out over a
process pool: pass ``jobs=N`` or set ``REPRO_JOBS=N`` (docs/performance.md).
Results always merge back in size order, so reports — and the JSON files
they persist to — are byte-identical to a serial run.

Long sweeps can additionally run *supervised* (docs/resilience.md): pass
any of ``timeout`` / ``retries`` / ``backoff`` / ``journal`` and each point
executes under :func:`repro.resilience.supervisor.supervise` — per-point
wall-clock deadlines, worker-crash detection, bounded deterministic
retries — with every completed point fsynced to a JSONL journal. A killed
sweep then resumes from its last completed point (``resume=True`` or the
``repro resume`` CLI) and the merged report matches the uninterrupted one
on :func:`report_fingerprint` (everything except wall-clock).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.complexity import FitResult, fit_exponent
from repro.analysis.tables import TABLE1_CLAIMS

#: Environment variable supplying the default worker count for
#: :func:`run_sweep`; unset, empty, ``"0"``, or ``"1"`` mean serial.
JOBS_ENV = "REPRO_JOBS"


@dataclass
class SweepRow:
    """One measured point of an experiment sweep."""

    n: int
    #: Measured rounds, or (for lower-bound rows) the implied round bound —
    #: kept as a float so small implied values still fit cleanly.
    rounds: float
    value: Optional[float] = None
    true_value: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Per-phase round/message breakdown (see repro.obs.phases), attached
    #: by benchmarks that run their point under metrics; persisted verbatim.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ratio(self) -> Optional[float]:
        if self.value is None or self.true_value in (None, 0):
            return None
        if self.true_value == float("inf"):
            return 1.0 if self.value == float("inf") else None
        return self.value / self.true_value


@dataclass
class ExperimentReport:
    """Everything a Table 1 row needs: points, fit, and ratio checks."""

    exp_id: str
    rows: List[SweepRow]
    fit: Optional[FitResult] = None
    corrected_fit: Optional[FitResult] = None
    polylog_correction: float = 0.0
    wall_seconds: float = 0.0
    notes: str = ""

    @property
    def claimed_exponent(self) -> Optional[float]:
        claim = TABLE1_CLAIMS.get(self.exp_id)
        return claim.claimed_exponent if claim else None

    def max_ratio(self) -> Optional[float]:
        """Worst measured approximation ratio across the sweep."""
        ratios = [r.ratio for r in self.rows if r.ratio is not None]
        return max(ratios) if ratios else None

    def summary(self) -> str:
        """Human-readable paper-vs-measured report block."""
        claim = TABLE1_CLAIMS.get(self.exp_id)
        lines = [f"== {self.exp_id}: {claim.problem if claim else '?'} "
                 f"({claim.paper_bound if claim else '?'}) =="]
        for row in self.rows:
            ratio = f" ratio={row.ratio:.3f}" if row.ratio is not None else ""
            shown_rounds = (f"{row.rounds:<8}" if isinstance(row.rounds, int)
                            else f"{row.rounds:<8.2f}")
            lines.append(f"  n={row.n:<6} rounds={shown_rounds}{ratio} "
                         + " ".join(f"{k}={v}" for k, v in row.extra.items()))
        if self.fit is not None:
            claim_txt = (f" (paper: {self.claimed_exponent:.2f})"
                         if self.claimed_exponent is not None else "")
            lines.append(f"  fitted exponent: {self.fit.exponent:.3f}"
                         f"{claim_txt}, R^2={self.fit.r_squared:.3f}")
        if self.corrected_fit is not None:
            lines.append(
                f"  polylog-corrected exponent (p={self.polylog_correction:g}): "
                f"{self.corrected_fit.exponent:.3f}, "
                f"R^2={self.corrected_fit.r_squared:.3f}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def row_phases(result: Any) -> Dict[str, Dict[str, float]]:
    """Phase breakdown of an algorithm result (empty when metrics were off).

    Accepts any result object with a ``details`` dict (AlgorithmResult,
    KSourceResult); benchmarks use this to populate :attr:`SweepRow.phases`.
    """
    details = getattr(result, "details", None) or {}
    return details.get("phases") or {}


def default_jobs() -> int:
    """Worker count implied by ``REPRO_JOBS`` (1 when unset or invalid).

    ``"0"`` and ``"1"`` are the documented spellings of "serial" and pass
    silently; anything that is not an integer, or is negative, earns a
    ``RuntimeWarning`` and degrades to serial instead of crashing the
    benchmark (or silently meaning something the user didn't ask for).
    """
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(
            f"{JOBS_ENV}={raw!r} is not an integer; running serial",
            RuntimeWarning, stacklevel=2)
        return 1
    if jobs < 0:
        warnings.warn(
            f"{JOBS_ENV}={raw!r} is negative; clamped to serial",
            RuntimeWarning, stacklevel=2)
        return 1
    return max(1, jobs)


def _run_rows(
    sizes: Sequence[int],
    runner: Callable[[int], SweepRow],
    jobs: int,
) -> List[SweepRow]:
    """Evaluate every sweep point, possibly on a process pool.

    ``executor.map`` yields results in submission order, so the merged row
    list — and everything derived from it (fits, persisted JSON) — is
    identical to the serial run. Determinism inside each point is the
    runner's job; the benchmarks derive all seeds from the point's size, so
    no cross-point state exists to lose. Pool failures (unpicklable runner,
    a sandbox without working fork/spawn) fall back to the serial path.
    """
    if jobs <= 1 or len(sizes) <= 1:
        return [runner(n) for n in sizes]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(sizes))) as pool:
            return list(pool.map(runner, sizes))
    except Exception:
        return [runner(n) for n in sizes]


def _runner_ref(runner: Callable[[int], SweepRow]) -> str:
    """``"module:qualname"`` import reference for the journal header."""
    module = getattr(runner, "__module__", "") or ""
    name = getattr(runner, "__qualname__", "") or getattr(runner, "__name__", "")
    return f"{module}:{name}"


def _run_rows_supervised(
    exp_id: str,
    sizes: List[int],
    runner: Callable[[int], SweepRow],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff,
    journal: Optional[str],
    resume: bool,
    on_failure: str,
    fit: bool,
    notes: str,
    polylog_correction: float,
) -> List[SweepRow]:
    """Supervised sweep execution: journaling, timeouts, retries, resume.

    Returns rows in ``sizes`` order; with ``on_failure="skip"`` the rows of
    exhausted points are simply absent. Journaled rows round-trip through
    JSON, which preserves ints/floats exactly, so a resumed report matches
    the uninterrupted one on :func:`report_fingerprint`.
    """
    from repro.resilience.journal import SweepJournal
    from repro.resilience.supervisor import RetryPolicy, supervise

    policy = backoff if backoff is not None else RetryPolicy(retries=retries)
    jnl = None
    completed: Dict[int, SweepRow] = {}
    if journal is not None:
        jnl = SweepJournal.open(
            journal, exp_id=exp_id, sizes=sizes,
            runner_ref=_runner_ref(runner), resume=resume,
            fit=fit, notes=notes, polylog_correction=polylog_correction)
        completed = {i: SweepRow(**row) for i, row in jnl.completed.items()}
    elif resume:
        raise ValueError("resume=True requires a journal path")
    todo = [i for i in range(len(sizes)) if i not in completed]
    try:
        if todo:
            def on_point(outcome) -> None:
                if jnl is None:
                    return
                i = todo[outcome.index]
                if outcome.ok:
                    jnl.record_point(i, sizes[i], asdict(outcome.value),
                                     attempts=outcome.attempts,
                                     seconds=outcome.seconds)
                else:
                    jnl.record_failure(i, sizes[i],
                                       outcome.error or "failed",
                                       attempts=outcome.attempts)

            outcomes = supervise(
                [sizes[i] for i in todo], runner,
                jobs=jobs, timeout=timeout, policy=policy,
                # Labels keyed by the point's global index: a resumed run
                # derives the same backoff schedule as the original.
                labels=[f"{exp_id}[{i}]n={sizes[i]}" for i in todo],
                on_point=on_point, on_failure=on_failure)
            for pos, outcome in enumerate(outcomes):
                if outcome.ok:
                    completed[todo[pos]] = outcome.value
    finally:
        if jnl is not None:
            jnl.close()
    return [completed[i] for i in sorted(completed)]


def run_sweep(
    exp_id: str,
    sizes: Sequence[int],
    runner: Callable[[int], SweepRow],
    fit: bool = True,
    notes: str = "",
    polylog_correction: float = 0.0,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff=None,
    journal: Optional[str] = None,
    resume: bool = False,
    on_failure: str = "raise",
) -> ExperimentReport:
    """Run ``runner(n)`` over ``sizes`` and assemble a report.

    ``polylog_correction`` is the number of hidden log factors in the
    paper's Õ bound for this row; both the raw and the corrected exponent
    are reported (see :func:`repro.analysis.complexity.fit_exponent`).

    ``jobs`` (default: ``REPRO_JOBS``, else serial) spreads the points over
    a process pool; the runner must then be picklable (a module-level
    function). Rows merge back in ``sizes`` order regardless.

    Passing any of the resilience knobs switches to the supervised path
    (:mod:`repro.resilience`): ``timeout`` is the per-point wall-clock
    budget in seconds, ``retries`` bounds re-attempts of crashed/timed-out/
    failed points (``backoff``, a
    :class:`repro.resilience.supervisor.RetryPolicy`, overrides the default
    schedule), ``journal`` is a JSONL path recording every completed point,
    ``resume=True`` skips points the journal already holds, and
    ``on_failure="skip"`` drops exhausted points from the report instead of
    raising. Without any of them the classic pool path runs and output is
    byte-for-byte what it always was.
    """
    start = time.perf_counter()
    supervised = (timeout is not None or retries > 0 or backoff is not None
                  or journal is not None or resume or on_failure != "raise")
    if supervised:
        rows = _run_rows_supervised(
            exp_id, [int(n) for n in sizes], runner,
            default_jobs() if jobs is None else jobs,
            timeout, retries, backoff, journal, resume, on_failure,
            fit, notes, polylog_correction)
    else:
        rows = _run_rows(sizes, runner,
                         default_jobs() if jobs is None else jobs)
    report = ExperimentReport(
        exp_id=exp_id,
        rows=rows,
        wall_seconds=time.perf_counter() - start,
        notes=notes,
    )
    if fit and len(rows) >= 2:
        ns = [r.n for r in rows]
        rounds = [r.rounds for r in rows]
        report.fit = fit_exponent(ns, rounds)
        if polylog_correction:
            report.corrected_fit = fit_exponent(
                ns, rounds, polylog_correction=polylog_correction)
            report.polylog_correction = polylog_correction
    return report


def results_dir() -> str:
    """The benchmarks/results directory (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def persist(report: ExperimentReport) -> str:
    """Write the report JSON next to the benchmarks; returns the path."""
    payload: Dict[str, Any] = {
        "exp_id": report.exp_id,
        "rows": [asdict(r) for r in report.rows],
        "wall_seconds": report.wall_seconds,
        "notes": report.notes,
    }
    if report.fit is not None:
        payload["fit"] = {
            "exponent": report.fit.exponent,
            "constant": report.fit.constant,
            "r_squared": report.fit.r_squared,
        }
    if report.corrected_fit is not None:
        payload["corrected_fit"] = {
            "exponent": report.corrected_fit.exponent,
            "constant": report.corrected_fit.constant,
            "r_squared": report.corrected_fit.r_squared,
            "polylog_correction": report.polylog_correction,
        }
    path = os.path.join(results_dir(), f"{report.exp_id}.json")
    # Atomic write: an interrupted run must never leave a truncated JSON
    # (or clobber a previous good result with a partial one). The tmp name
    # carries the pid so concurrent sweeps of the same experiment cannot
    # truncate each other's in-flight write; last replace wins.
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as f:
            json.dump(payload, f, indent=2, default=str)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    return path


def report_fingerprint(report: ExperimentReport) -> str:
    """Deterministic digest of a report's *content* (wall-clock excluded).

    Two runs of the same sweep — serial vs pooled, uninterrupted vs
    killed-and-resumed — must agree on this digest; wall-clock fields
    (``wall_seconds`` and the ``seconds`` entry of each phase bucket) are
    the ones that legitimately differ, so they are left out. Used by the
    resilience smoke test and the resume CLI to assert byte-identity.
    """
    def scrub(row: SweepRow) -> Dict[str, Any]:
        d = asdict(row)
        d["phases"] = {name: {k: v for k, v in bucket.items()
                              if k != "seconds"}
                       for name, bucket in (d.get("phases") or {}).items()}
        return d

    payload: Dict[str, Any] = {
        "exp_id": report.exp_id,
        "rows": [scrub(r) for r in report.rows],
        "notes": report.notes,
        "polylog_correction": report.polylog_correction,
    }
    if report.fit is not None:
        payload["fit"] = {
            "exponent": report.fit.exponent,
            "constant": report.fit.constant,
            "r_squared": report.fit.r_squared,
        }
    if report.corrected_fit is not None:
        payload["corrected_fit"] = {
            "exponent": report.corrected_fit.exponent,
            "constant": report.corrected_fit.constant,
            "r_squared": report.corrected_fit.r_squared,
        }
    canon = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canon.encode()).hexdigest()


def emit(report: ExperimentReport) -> None:
    """Print and persist a report (benchmarks' standard epilogue)."""
    print()
    print(report.summary())
    persist(report)
