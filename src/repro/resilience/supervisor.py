"""Supervised execution of independent sweep points.

# congestlint: disable-file=CL003 — this module is host-side orchestration:
# timeouts, backoff and worker deadlines are *real* wall-clock by design
# and never touch a simulated network or its round accounting.

:func:`supervise` runs ``fn(item)`` for every item of a sweep under a
supervisor that a plain ``ProcessPoolExecutor.map`` cannot provide:

* **wall-clock timeouts** — a point that exceeds its deadline is
  terminated and treated as a failed attempt, not an eternal hang;
* **worker-crash detection** — a worker that dies without reporting
  (OOM kill, segfault, ``os._exit``) is detected via pipe EOF / exit code
  and retried like any other failure;
* **bounded deterministic retries** — exponential backoff with jitter
  derived from a hash of ``(label, attempt)``, so two runs of the same
  sweep back off identically (no wall-clock or global RNG involved);
* **structured outcomes** — every point yields a :class:`PointOutcome`
  (value or error, attempts used, seconds), reported to an ``on_point``
  callback the moment it settles so a journal can persist it immediately.

Isolation is per *attempt*: each one runs in a fresh ``multiprocessing``
process connected by a one-way pipe. When process isolation is impossible
(unpicklable ``fn``, a sandbox without working fork/spawn) — or not asked
for (``isolate=False``) — attempts run in-process: timeouts are then not
enforceable, but retries and outcome reporting still work, so a sweep
degrades rather than failing outright.

The module is deliberately harness-agnostic: values are opaque (whatever
``fn`` returns, as long as it pickles), and nothing here knows about
``SweepRow`` or reports — :func:`repro.harness.run_sweep` does the
adapting.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import registry as obs


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    ``delay(label, attempt)`` = ``min(max_delay, base_delay * 2**attempt)``
    scaled by ``1 + jitter * u`` where ``u`` in [0, 1) is a sha256 hash of
    ``"label|attempt"`` — deterministic per (point, attempt), decorrelated
    across points, and independent of any global RNG state.
    """

    retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, label: str, attempt: int) -> float:
        raw = min(self.max_delay, self.base_delay * (2 ** attempt))
        digest = hashlib.sha256(f"{label}|{attempt}".encode()).hexdigest()
        u = int(digest[:8], 16) / 0x100000000
        return raw * (1.0 + self.jitter * u)


@dataclass
class PointOutcome:
    """Everything the supervisor learned about one sweep point."""

    index: int
    item: Any
    ok: bool = False
    value: Any = None
    error: Optional[str] = None
    #: Attempts actually made (1 = first try succeeded).
    attempts: int = 0
    #: Wall seconds across all attempts (excluding backoff sleeps).
    seconds: float = 0.0
    #: Per-attempt failure kinds, e.g. ["timeout", "crash"].
    failures: List[str] = field(default_factory=list)


class SweepPointFailed(RuntimeError):
    """A sweep point failed every attempt its retry budget allowed."""

    def __init__(self, outcome: PointOutcome):
        super().__init__(
            f"sweep point {outcome.item!r} failed after "
            f"{outcome.attempts} attempt(s): {outcome.error}")
        self.outcome = outcome


def _child_main(fn: Callable[[Any], Any], item: Any, conn) -> None:
    """Attempt entry point inside the worker process."""
    try:
        value = fn(item)
        conn.send(("ok", value))
    except BaseException as exc:  # report *everything*, then die quietly
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except Exception:  # congestlint: disable=CL006 — the pipe is gone;
            pass           # the parent will see EOF and report a crash
    finally:
        conn.close()


def _isolation_available(fn: Callable[[Any], Any], items: Sequence[Any]) -> bool:
    """Whether per-attempt subprocess isolation can work for this sweep."""
    try:
        pickle.dumps(fn)
        pickle.dumps(list(items))
        multiprocessing.get_context()
        return True
    except Exception:
        return False


@dataclass
class _Running:
    index: int
    item: Any
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: Optional[float]


def supervise(
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    on_point: Optional[Callable[[PointOutcome], None]] = None,
    on_failure: str = "raise",
    isolate: Optional[bool] = None,
) -> List[PointOutcome]:
    """Run ``fn`` over ``items`` under supervision; outcomes in item order.

    ``jobs`` bounds concurrently running attempts. ``timeout`` is the
    per-attempt wall-clock budget in seconds (None = unbounded).
    ``labels[i]`` names item ``i`` for backoff derivation (defaults to
    ``str(item)``). ``on_point`` fires once per settled point, success or
    failure, in settlement order. ``on_failure`` is ``"raise"`` (raise
    :class:`SweepPointFailed` on the first exhausted point, after settling
    in-flight work) or ``"skip"`` (record the failed outcome and move on).

    ``isolate`` forces subprocess isolation on/off; the default uses
    subprocesses whenever a timeout is set or ``jobs > 1`` and the
    workload is picklable.
    """
    if on_failure not in ("raise", "skip"):
        raise ValueError(f"on_failure must be 'raise' or 'skip', got {on_failure!r}")
    policy = policy or RetryPolicy()
    items = list(items)
    names = [str(labels[i]) if labels is not None else str(items[i])
             for i in range(len(items))]
    if isolate is None:
        isolate = timeout is not None or jobs > 1
    if isolate and not _isolation_available(fn, items):
        isolate = False
    obs.counter("resilience.supervise.sweeps").inc()
    if not isolate:
        outcomes = _supervise_in_process(items, fn, names, policy, on_point,
                                         on_failure)
    else:
        outcomes = _supervise_isolated(items, fn, names, policy, max(1, jobs),
                                       timeout, on_point, on_failure)
    return outcomes


def _settle(outcome: PointOutcome,
            on_point: Optional[Callable[[PointOutcome], None]]) -> None:
    if outcome.ok:
        obs.counter("resilience.supervise.ok").inc()
    else:
        obs.counter("resilience.supervise.failed").inc()
    if outcome.attempts > 1:
        obs.counter("resilience.supervise.retries").inc(outcome.attempts - 1)
    if on_point is not None:
        on_point(outcome)


def _supervise_in_process(
    items: List[Any],
    fn: Callable[[Any], Any],
    names: List[str],
    policy: RetryPolicy,
    on_point: Optional[Callable[[PointOutcome], None]],
    on_failure: str,
) -> List[PointOutcome]:
    """Serial fallback: no isolation, no timeout enforcement, retries kept."""
    outcomes: List[PointOutcome] = []
    for index, item in enumerate(items):
        outcome = PointOutcome(index=index, item=item)
        for attempt in range(policy.retries + 1):
            if attempt:
                time.sleep(policy.delay(names[index], attempt - 1))
            outcome.attempts = attempt + 1
            started = time.perf_counter()
            try:
                outcome.value = fn(item)
                outcome.ok = True
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.failures.append("error")
            outcome.seconds += time.perf_counter() - started
            if outcome.ok:
                break
        outcomes.append(outcome)
        _settle(outcome, on_point)
        if not outcome.ok and on_failure == "raise":
            raise SweepPointFailed(outcome)
    return outcomes


def _spawn(fn, item, index, attempt, timeout, now) -> _Running:
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_child_main, args=(fn, item, child_conn),
                          daemon=True)
    process.start()
    child_conn.close()
    return _Running(index=index, item=item, attempt=attempt, process=process,
                    conn=parent_conn, started=now,
                    deadline=(now + timeout) if timeout is not None else None)


def _reap(run: _Running) -> Tuple[bool, Any, Optional[str], Optional[str]]:
    """Collect a finished attempt: (ok, value, error, failure_kind)."""
    try:
        message = run.conn.recv()
    except (EOFError, OSError):
        run.process.join()
        code = run.process.exitcode
        return False, None, f"worker crashed (exit code {code})", "crash"
    run.process.join()
    if message[0] == "ok":
        return True, message[1], None, None
    return False, None, message[1], "error"


def _supervise_isolated(
    items: List[Any],
    fn: Callable[[Any], Any],
    names: List[str],
    policy: RetryPolicy,
    jobs: int,
    timeout: Optional[float],
    on_point: Optional[Callable[[PointOutcome], None]],
    on_failure: str,
) -> List[PointOutcome]:
    """Subprocess-per-attempt scheduler with a shared worker-slot budget."""
    outcomes: Dict[int, PointOutcome] = {
        i: PointOutcome(index=i, item=item) for i, item in enumerate(items)
    }
    #: (index, attempt, not_before) — points awaiting a worker slot.
    pending: List[Tuple[int, int, float]] = [
        (i, 0, 0.0) for i in range(len(items))
    ]
    running: Dict[Any, _Running] = {}
    failed_outcome: Optional[PointOutcome] = None

    def finish_attempt(run: _Running, ok: bool, value: Any,
                       error: Optional[str], kind: Optional[str],
                       now: float) -> None:
        nonlocal failed_outcome
        outcome = outcomes[run.index]
        outcome.attempts = run.attempt + 1
        outcome.seconds += now - run.started
        if ok:
            outcome.ok = True
            outcome.value = value
            outcome.error = None
            _settle(outcome, on_point)
            return
        outcome.error = error
        if kind:
            outcome.failures.append(kind)
        if run.attempt < policy.retries:
            not_before = now + policy.delay(names[run.index], run.attempt)
            pending.append((run.index, run.attempt + 1, not_before))
            return
        _settle(outcome, on_point)
        if on_failure == "raise" and failed_outcome is None:
            failed_outcome = outcome

    while pending or running:
        now = time.monotonic()
        if failed_outcome is not None:
            # Fail fast: stop launching, terminate in-flight attempts.
            pending.clear()
            for run in running.values():
                run.process.terminate()
                run.process.join()
                run.conn.close()
            running.clear()
            raise SweepPointFailed(failed_outcome)
        # Launch every ready pending point while worker slots are free.
        launched = False
        for entry in sorted(pending):
            if len(running) >= jobs:
                break
            index, attempt, not_before = entry
            if not_before > now:
                continue
            pending.remove(entry)
            run = _spawn(fn, items[index], index, attempt, timeout, now)
            running[run.conn] = run
            launched = True
        if launched:
            continue
        if not running:
            # Everything pending is backing off; sleep until the earliest.
            wake = min(entry[2] for entry in pending)
            time.sleep(max(0.0, wake - now))
            continue
        # Wait for a result or the nearest deadline, whichever first.
        deadlines = [run.deadline for run in running.values()
                     if run.deadline is not None]
        wait_for = (max(0.001, min(deadlines) - now) if deadlines else 0.25)
        ready = mp_connection.wait(list(running), timeout=wait_for)
        now = time.monotonic()
        for conn in ready:
            run = running.pop(conn)
            ok, value, error, kind = _reap(run)
            conn.close()
            finish_attempt(run, ok, value, error, kind, now)
        # Enforce deadlines on whatever is still running.
        for conn, run in list(running.items()):
            if run.deadline is not None and now >= run.deadline:
                run.process.terminate()
                run.process.join()
                conn.close()
                del running[conn]
                finish_attempt(
                    run, False, None,
                    f"timed out after {timeout:.3f}s", "timeout", now)
    return [outcomes[i] for i in range(len(items))]
