"""Resilient execution layer around the CONGEST simulator.

Three cooperating pieces (see ``docs/resilience.md``):

* :mod:`repro.resilience.degrade` — opt-in graceful degradation: a
  ``RoundBudgetExceeded`` (or its ``RetryBudgetExceeded`` subclass) raised
  mid-algorithm yields a best-effort partial result flagged
  ``exact=False`` instead of discarding the whole run.
* :mod:`repro.resilience.journal` — append-only JSONL sweep journals, so
  an interrupted ``run_sweep`` resumes from its last completed point.
* :mod:`repro.resilience.supervisor` — per-point subprocess supervision
  for sweeps: wall-clock timeouts, worker-crash detection, and bounded
  deterministic retries with exponential backoff + jitter.

The checkpoint half of the layer lives with the simulator it snapshots:
:mod:`repro.congest.checkpoint`.
"""

from repro.resilience.degrade import (
    DEGRADE_ENV,
    degradation_events,
    degrade_enabled,
    degrading,
    finalize_result_details,
    record_degradation,
)
from repro.resilience.journal import JournalError, SweepJournal, read_journal
from repro.resilience.supervisor import (
    PointOutcome,
    RetryPolicy,
    SweepPointFailed,
    supervise,
)

__all__ = [
    "DEGRADE_ENV",
    "JournalError",
    "PointOutcome",
    "RetryPolicy",
    "SweepJournal",
    "SweepPointFailed",
    "degradation_events",
    "degrade_enabled",
    "degrading",
    "finalize_result_details",
    "read_journal",
    "record_degradation",
    "supervise",
]
