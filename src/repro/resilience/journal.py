"""Append-only JSONL sweep journals: resume an interrupted sweep exactly.

A journal is one line of JSON per event, flushed and fsynced per line so a
kill between points loses at most the line being written (a truncated tail
is detected and ignored on read). The first line is the header describing
the sweep — experiment id, sizes, the runner's import reference, and the
report parameters — so ``repro resume <journal>`` can reconstruct the call
without any other state. Every later ``point`` line carries one completed
:class:`~repro.harness.SweepRow` in plain-dict form.

Schema (version 1)
------------------
Header::

    {"kind": "sweep-journal", "schema": 1, "exp_id": ..., "sizes": [...],
     "runner": "module:function", "fit": true, "notes": "",
     "polylog_correction": 0.0}

Point (one per completed sweep point)::

    {"kind": "point", "index": <position in sizes>, "n": ...,
     "row": {...SweepRow fields...}, "attempts": 1, "seconds": 0.25}

Failure (a point that exhausted its retries; never counted as completed)::

    {"kind": "failure", "index": ..., "n": ..., "error": "...",
     "attempts": 3}

Rows round-trip through JSON exactly (ints stay ints, floats stay floats),
so a resumed report is byte-identical to the uninterrupted one — except
``wall_seconds``, which is wall-clock by definition; use
:func:`repro.harness.report_fingerprint` for the comparison.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump when the journal line format changes incompatibly.
SCHEMA = 1


class JournalError(RuntimeError):
    """The journal file does not match the sweep trying to use it."""


def _write_line(fh, obj: Dict[str, Any]) -> None:
    fh.write(json.dumps(obj, sort_keys=True) + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def read_journal(path: str) -> Tuple[Dict[str, Any], Dict[int, Dict[str, Any]]]:
    """Parse a journal: returns ``(header, completed)``.

    ``completed`` maps sweep-point index to its recorded row dict. A
    truncated final line (the process died mid-write) ends the parse
    silently — everything before it is intact by construction.
    """
    header: Optional[Dict[str, Any]] = None
    completed: Dict[int, Dict[str, Any]] = {}
    try:
        fh = open(path)
    except OSError as exc:
        raise JournalError(f"cannot read sweep journal {path}: {exc}") from exc
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                break  # torn tail from a kill mid-write; prefix is complete
            if header is None:
                if (not isinstance(obj, dict)
                        or obj.get("kind") != "sweep-journal"
                        or obj.get("schema") != SCHEMA):
                    raise JournalError(
                        f"{path} is not a schema-{SCHEMA} sweep journal")
                header = obj
                continue
            if isinstance(obj, dict) and obj.get("kind") == "point":
                completed[int(obj["index"])] = obj["row"]
    if header is None:
        raise JournalError(f"{path} has no journal header")
    return header, completed


class SweepJournal:
    """Writer handle for one sweep's journal file."""

    def __init__(self, path: str, header: Dict[str, Any],
                 completed: Dict[int, Dict[str, Any]], fh):
        self.path = path
        self.header = header
        #: Rows already on disk (index -> row dict); pre-populated on resume.
        self.completed = completed
        self._fh = fh

    @classmethod
    def open(
        cls,
        path: str,
        exp_id: str,
        sizes: Sequence[int],
        runner_ref: str = "",
        resume: bool = False,
        fit: bool = True,
        notes: str = "",
        polylog_correction: float = 0.0,
    ) -> "SweepJournal":
        """Start (or, with ``resume``, reopen) the journal for a sweep.

        On resume the existing header must describe the same sweep
        (``exp_id`` and ``sizes``); anything else raises
        :class:`JournalError` rather than silently merging two different
        experiments. Without ``resume`` an existing file is truncated: the
        caller asked for a fresh sweep.
        """
        size_list = [int(n) for n in sizes]
        header = {
            "kind": "sweep-journal",
            "schema": SCHEMA,
            "exp_id": exp_id,
            "sizes": size_list,
            "runner": runner_ref,
            "fit": bool(fit),
            "notes": notes,
            "polylog_correction": polylog_correction,
        }
        if resume and os.path.exists(path):
            existing, completed = read_journal(path)
            if (existing.get("exp_id") != exp_id
                    or existing.get("sizes") != size_list):
                raise JournalError(
                    f"journal {path} belongs to sweep "
                    f"{existing.get('exp_id')!r} over {existing.get('sizes')}"
                    f", not {exp_id!r} over {size_list}")
            fh = open(path, "a")
            return cls(path, existing, completed, fh)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fh = open(path, "w")
        _write_line(fh, header)
        return cls(path, header, {}, fh)

    def record_point(self, index: int, n: int, row: Dict[str, Any],
                     attempts: int = 1, seconds: float = 0.0) -> None:
        """Persist one completed point (fsynced before returning)."""
        _write_line(self._fh, {
            "kind": "point", "index": index, "n": n, "row": row,
            "attempts": attempts, "seconds": round(seconds, 6),
        })
        self.completed[index] = row

    def record_failure(self, index: int, n: int, error: str,
                       attempts: int) -> None:
        """Persist a point that exhausted its retries (not completed)."""
        _write_line(self._fh, {
            "kind": "failure", "index": index, "n": n, "error": error,
            "attempts": attempts,
        })

    def pending_indices(self, total: int) -> List[int]:
        """Sweep-point indices not yet completed, in order."""
        return [i for i in range(total) if i not in self.completed]

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
