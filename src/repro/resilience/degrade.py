"""Opt-in graceful degradation for budget-starved algorithm runs.

By default, exhausting a round budget (``max_rounds`` /
:func:`repro.congest.network.round_budget`) raises
:class:`~repro.congest.network.RoundBudgetExceeded` and the whole run is
lost. With degradation enabled (``REPRO_DEGRADE=1`` or the
:func:`degrading` override), the checkpoint-aware algorithm loops catch
that exception at their exchange boundary, record a degradation event, and
fall through with whatever they computed so far; the drivers then complete
*centrally* (aggregation without further network traffic) and return a
best-effort result flagged ``exact=False`` with confidence metadata — a
valid **upper bound** for MWC/girth, since every surviving candidate is
the weight of a real closed walk.

Degraded results can never silently replace exact ones: the flag rides on
:class:`repro.core.results.AlgorithmResult` itself, every event is listed
in ``details["degraded"]``, and each event increments the
``resilience.degraded`` observability counter
(:mod:`repro.obs.registry`).

The gate deliberately mirrors :func:`repro.congest.batch.batching` /
:func:`repro.congest.kernels.kernels`: environment default, programmatic
override for scoped use.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import registry as obs

#: Set to ``"1"`` to enable graceful degradation process-wide (default: off —
#: budget exhaustion raises, as it always has).
DEGRADE_ENV = "REPRO_DEGRADE"

#: Programmatic override installed by :func:`degrading`; ``None`` defers to
#: the environment.
_FORCED: Optional[bool] = None


def degrade_enabled() -> bool:
    """Whether budget exhaustion degrades to a partial result (default: no)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(DEGRADE_ENV, "0") == "1"


@contextlib.contextmanager
def degrading(enabled: bool = True) -> Iterator[None]:
    """Force degradation on (or off) within a block, overriding the env."""
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


def record_degradation(net: Any, stage: str, reason: str) -> Dict[str, Any]:
    """Attach a degradation event to ``net`` and count it in the registry.

    ``stage`` names the algorithm loop that absorbed the failure (e.g.
    ``"multi-bfs"``, ``"convergecast"``); ``reason`` is the stringified
    exception. Events accumulate on the network (surviving checkpoints, see
    :mod:`repro.congest.checkpoint`) and end up in the result's
    ``details["degraded"]`` list.
    """
    event = {"stage": stage, "reason": reason, "rounds": net.rounds}
    events = getattr(net, "_degradation_events", None)
    if events is None:
        events = net._degradation_events = []
    events.append(event)
    obs.counter("resilience.degraded").inc()
    obs.counter(f"resilience.degraded.{stage}").inc()
    return event


def degradation_events(net: Any) -> List[Dict[str, Any]]:
    """Events recorded on ``net`` so far (empty list when none)."""
    return list(getattr(net, "_degradation_events", ()))


def finalize_result_details(net: Any, details: Dict[str, Any]) -> bool:
    """Fold ``net``'s degradation events into a result's ``details``.

    Returns True when the run stayed exact (no events). Otherwise attaches
    ``details["degraded"]`` (the event list) and ``details["confidence"]``
    and returns False — the caller passes that as the result's ``exact``
    flag, so a degraded value can never masquerade as an exact one.
    """
    events = degradation_events(net)
    if not events:
        return True
    details["degraded"] = events
    details["confidence"] = {
        "value_is": "upper-bound",
        "events": len(events),
        "round_budget": net.max_rounds,
        "completion": "central",
    }
    return False
