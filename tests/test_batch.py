"""Parity and gating tests for the batched exchange fast path.

The contract under test (repro.congest.batch): for any legal traffic,
``exchange_batched`` must charge rounds and NetworkStats identically to the
dict-based ``exchange``, grouped inboxes must be bit-for-bit equal, and the
fast path must disable itself wherever it could change observable behaviour
(fault plans, reliable wrappers, trace hooks, ``REPRO_BATCH=0``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork, FaultPlan, FaultyNetwork
from repro.congest.batch import (
    BatchedOutbox,
    batching,
    batching_enabled,
    fast_path,
)
from repro.congest.network import (
    BandwidthExceeded,
    LocalityViolation,
    _SCALAR_BATCH_LIMIT,
)
from repro.congest.faults import NodeCrash
from repro.congest.primitives.bfs import bfs
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.congest.primitives.reliable import ReliableNetwork
from repro.congest.trace import TraceRecorder
from repro.graphs import erdos_renyi
from tests.strategies import connected_graphs


def stats_tuple(net):
    s = net.stats
    return (net.rounds, s.steps, s.messages, s.words, s.local_messages,
            s.max_link_load, dict(s.link_load_histogram))


@st.composite
def graph_and_batch(draw):
    """A connected graph plus a legal batch over its (directed) edges."""
    g = draw(connected_graphs(min_n=4, max_n=14))
    edges = [(u, v) for u in range(g.n) for v in g.out_neighbors(u)]
    count = draw(st.integers(min_value=0, max_value=2 * _SCALAR_BATCH_LIMIT))
    picks = draw(st.lists(
        st.integers(min_value=0, max_value=len(edges) - 1),
        min_size=count, max_size=count))
    unit_words = draw(st.booleans())
    batch = BatchedOutbox()
    for seq, idx in enumerate(picks):
        u, v = edges[idx]
        words = 1 if unit_words else draw(st.integers(min_value=0, max_value=4))
        batch.send(u, v, ("msg", seq), words)
    return g, batch


@settings(max_examples=60, deadline=None)
@given(graph_and_batch())
def test_exchange_batched_matches_exchange(case):
    """Property: identical inboxes, rounds, and stats on random traffic."""
    g, batch = case
    net_a = CongestNetwork(g, seed=0)
    net_b = CongestNetwork(g, seed=0)
    inboxes_dict = net_a.exchange(batch.to_outboxes())
    inboxes_batch = net_b.exchange_batched(batch)
    assert inboxes_batch == inboxes_dict
    assert stats_tuple(net_b) == stats_tuple(net_a)


@settings(max_examples=30, deadline=None)
@given(graph_and_batch())
def test_exchange_batched_ungrouped_stream_order(case):
    """grouped=False yields the grouped inboxes' flattening, in order."""
    g, batch = case
    net_a = CongestNetwork(g, seed=0)
    net_b = CongestNetwork(g, seed=0)
    grouped = net_a.exchange(batch.to_outboxes())
    inbox = net_b.exchange_batched(batch, grouped=False)
    assert stats_tuple(net_b) == stats_tuple(net_a)
    # Per receiver, the ungrouped stream preserves the grouped order as
    # long as the batch was appended sender-major (send order here is
    # arbitrary, so compare as multisets per (sender, receiver)).
    seen = {}
    for u, v, p in zip(inbox.src, inbox.dst, inbox.payloads):
        seen.setdefault((v, u), []).append(p)
    want = {(v, u): list(ps) for v, by in grouped.items()
            for u, ps in by.items()}
    assert seen == want


def test_sender_major_emission_preserves_delivery_order():
    """When the batch is filled sender-major (as every ported primitive
    does), grouped inboxes match the dict path in *iteration order* too, and
    the ungrouped stream is exactly the grouped inboxes' flattening."""
    g = erdos_renyi(12, 0.35, seed=6)
    batch = BatchedOutbox()
    seq = 0
    for u in range(g.n):
        for v in sorted(g.out_neighbors(u)):
            for _ in range(2):
                batch.send(u, v, seq)
                seq += 1
    net_a = CongestNetwork(g, seed=0)
    net_b = CongestNetwork(g, seed=0)
    net_c = CongestNetwork(g, seed=0)
    grouped_dict = net_a.exchange(batch.to_outboxes())
    grouped_batch = net_b.exchange_batched(batch)
    stream = net_c.exchange_batched(batch, grouped=False)
    assert list(grouped_batch) == list(grouped_dict)
    for v in grouped_dict:
        assert list(grouped_batch[v]) == list(grouped_dict[v])
    # The stream is in emission order; per receiver, its subsequence equals
    # that receiver's grouped-inbox flattening (senders appear in first-
    # message order, which sender-major emission makes ascending).
    per_receiver = {}
    for u, v, p in zip(stream.src, stream.dst, stream.payloads):
        per_receiver.setdefault(v, []).append((u, p))
    want = {v: [(u, p) for u, ps in by.items() for p in ps]
            for v, by in grouped_dict.items()}
    assert per_receiver == want
    assert stats_tuple(net_b) == stats_tuple(net_a)
    assert stats_tuple(net_c) == stats_tuple(net_a)


def test_empty_batch_costs_one_round_like_empty_exchange():
    g = erdos_renyi(8, 0.4, seed=2)
    net_a = CongestNetwork(g, seed=0)
    net_b = CongestNetwork(g, seed=0)
    assert net_a.exchange({}) == {}
    assert net_b.exchange_batched(BatchedOutbox()) == {}
    assert stats_tuple(net_b) == stats_tuple(net_a)


def test_locality_violation_message_parity():
    g = erdos_renyi(10, 0.2, seed=3)
    non_edge = next((u, v) for u in range(g.n) for v in range(g.n)
                    if u != v and not g.has_edge(u, v))
    batch = BatchedOutbox()
    batch.send(*non_edge, "x")
    dict_err = batch_err = None
    try:
        CongestNetwork(g, seed=0).exchange(batch.to_outboxes())
    except LocalityViolation as exc:
        dict_err = str(exc)
    try:
        CongestNetwork(g, seed=0).exchange_batched(batch)
    except LocalityViolation as exc:
        batch_err = str(exc)
    assert dict_err is not None and dict_err == batch_err


@pytest.mark.parametrize("oversize", [2, _SCALAR_BATCH_LIMIT + 10])
def test_strict_bandwidth_parity_before_any_accounting(oversize):
    """Both paths abort identically, leaving all counters untouched."""
    g = erdos_renyi(6, 0.9, seed=1)
    u = 0
    v = next(iter(g.out_neighbors(u)))
    batch = BatchedOutbox()
    for i in range(oversize):
        batch.send(u, v, i, 2)  # 2 words each; bandwidth default is 1
    for exercise in ("dict", "batch"):
        net = CongestNetwork(g, seed=0, strict=True)
        with pytest.raises(BandwidthExceeded):
            if exercise == "dict":
                net.exchange(batch.to_outboxes())
            else:
                net.exchange_batched(batch)
        assert stats_tuple(net) == (0, 0, 0, 0, 0, 0, {})


GOLDEN_GRAPH_SEED = 7


def _golden_net():
    return CongestNetwork(erdos_renyi(48, 0.12, seed=GOLDEN_GRAPH_SEED), seed=0)


def test_bfs_round_count_golden():
    """Round counts on a pinned graph: regression fence for the fast path."""
    for enabled in (False, True):
        with batching(enabled):
            net = _golden_net()
            dist, _ = bfs(net, 0)
            assert net.rounds == 3
            assert max(d for d in dist) == 3


def test_multi_bfs_round_count_golden():
    for enabled in (False, True):
        with batching(enabled):
            net = _golden_net()
            known, _ = multi_source_bfs(net, [0, 5, 9, 17])
            assert net.rounds == 6
            assert all(len(k) == 4 for k in known)


def test_batching_context_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert batching_enabled()
    monkeypatch.setenv("REPRO_BATCH", "0")
    assert not batching_enabled()
    with batching(True):
        assert batching_enabled()  # context overrides the env
    assert not batching_enabled()
    monkeypatch.setenv("REPRO_BATCH", "1")
    assert batching_enabled()
    with batching(False):
        assert not batching_enabled()


def test_fast_path_gates():
    g = erdos_renyi(12, 0.3, seed=5)
    with batching(True):
        assert fast_path(CongestNetwork(g, seed=0))
        # Zero fault plan is transparent: fast path stays on.
        assert fast_path(FaultyNetwork(g, FaultPlan(), seed=0))
        # Any active fault forces the dict path (faults hook delivery).
        faulty = FaultyNetwork(g, FaultPlan(drop_rate=0.5), seed=0)
        assert not fast_path(faulty)
        crashy = FaultyNetwork(
            g, FaultPlan(crashes=(NodeCrash(node=1, at_round=3),)), seed=0)
        assert not fast_path(crashy)
        # Reliable wrappers re-implement exchange with acks: never batched
        # (the delegating __getattr__ must not leak the inner capability).
        assert not fast_path(ReliableNetwork(faulty))
        assert not fast_path(ReliableNetwork(CongestNetwork(g, seed=0)))
        # A trace hook monkey-patches exchange: batching would bypass it.
        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net):
            assert not fast_path(net)
        assert fast_path(net)  # restored on exit
    with batching(False):
        assert not fast_path(CongestNetwork(g, seed=0))


def test_ported_primitives_work_on_faulty_network_dict_fallback():
    """Ported primitives degrade to the dict path on a faulty net and
    still match a plain network when the plan injects nothing harmful."""
    g = erdos_renyi(20, 0.25, seed=9)
    plain = CongestNetwork(g, seed=0)
    want, _ = bfs(plain, 0)
    faulty = FaultyNetwork(g, FaultPlan(duplicate_rate=0.0, drop_rate=0.0,
                                        corrupt_rate=0.0), seed=0)
    got, _ = bfs(faulty, 0)
    assert got == want


def test_outbox_words_column_and_clear():
    batch = BatchedOutbox()
    batch.send(0, 1, "a")
    assert batch.words is None
    batch.send(1, 2, "b", 3)
    assert batch.words == [1, 3]
    batch.send(2, 3, "c")
    assert batch.words == [1, 3, 1]
    assert len(batch) == 3 and batch
    out = batch.to_outboxes()
    assert out == {0: {1: [("a", 1)]}, 1: {2: [("b", 3)]}, 2: {3: [("c", 1)]}}
    batch.clear()
    assert len(batch) == 0 and not batch and batch.words is None
