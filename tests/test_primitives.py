"""Tests for CONGEST primitives: correctness and round bounds."""


import pytest

from repro.congest import CongestNetwork
from repro.congest.primitives import (
    bfs,
    broadcast,
    build_bfs_tree,
    converge_min,
    converge_sum,
    convergecast,
    multi_source_bfs,
    multi_source_wave,
    propagate_down_trees,
    source_detection,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi, grid_graph
from repro.graphs.graph import INF
from repro.sequential import bfs_distances, k_source_distances
from repro.sequential.shortest_paths import weight_limited_distances


def net_for(g, **kw):
    return CongestNetwork(g, **kw)


class TestBfsTree:
    @pytest.mark.parametrize("seed", range(3))
    def test_tree_spans_and_depths_correct(self, seed):
        g = erdos_renyi(30, 0.1, seed=seed)
        net = net_for(g)
        tree = build_bfs_tree(net, root=0)
        ref = bfs_distances(g, 0)
        assert tree.depth == [int(d) for d in ref]
        # Every non-root has a parent one level up.
        for v in range(1, g.n):
            assert tree.depth[v] == tree.depth[tree.parent[v]] + 1

    def test_rounds_linear_in_eccentricity(self):
        g = cycle_graph(40)
        net = net_for(g)
        build_bfs_tree(net, root=0)
        ecc = g.undirected_eccentricity(0)
        assert net.rounds <= 2 * ecc + 4

    def test_children_match_parents(self):
        g = grid_graph(4, 4)
        net = net_for(g)
        tree = build_bfs_tree(net)
        for p, kids in tree.children.items():
            for c in kids:
                assert tree.parent[c] == p

    def test_directed_input_uses_communication_links(self):
        g = Graph(3, directed=True)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        net = net_for(g)
        tree = build_bfs_tree(net, root=0)
        assert max(tree.depth) == 2


class TestConvergecast:
    @pytest.mark.parametrize("seed", range(3))
    def test_min_and_sum(self, seed):
        g = erdos_renyi(25, 0.12, seed=seed)
        net = net_for(g)
        values = [(v * 7) % 23 for v in range(g.n)]
        assert converge_min(net, values) == min(values)
        assert converge_sum(net, values) == sum(values)

    def test_all_nodes_learn_result(self):
        g = cycle_graph(10)
        net = net_for(g)
        converge_min(net, list(range(10)))
        assert all(net.state[v]["convergecast_result"] == 0 for v in range(10))

    def test_rounds_linear_in_diameter(self):
        g = cycle_graph(30)
        net = net_for(g)
        converge_min(net, list(range(30)))
        D = g.undirected_diameter()
        assert net.rounds <= 6 * D + 10

    def test_value_count_validated(self):
        net = net_for(cycle_graph(5))
        with pytest.raises(ValueError):
            convergecast(net, [1, 2], min)


class TestBroadcast:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_payloads_reach_all_nodes(self, seed):
        g = erdos_renyi(20, 0.15, seed=seed)
        net = net_for(g)
        messages = {v: [f"m{v}-{i}" for i in range(v % 3)] for v in range(g.n)}
        received = broadcast(net, messages)
        expected = sorted(m for msgs in messages.values() for m in msgs)
        for v in range(g.n):
            assert sorted(received[v]) == expected

    def test_round_bound_m_plus_d(self):
        g = cycle_graph(24)
        net = net_for(g)
        M = 12
        messages = {0: [f"x{i}" for i in range(M)]}
        broadcast(net, messages)
        D = g.undirected_diameter()
        # O(M + D) with a modest constant (up + down + count convergecast).
        assert net.rounds <= 6 * (M + D) + 20

    def test_empty_broadcast(self):
        net = net_for(cycle_graph(6))
        received = broadcast(net, {})
        assert all(r == [] for r in received)

    def test_strict_bandwidth_respected(self):
        g = cycle_graph(12)
        net = net_for(g, strict=True)
        broadcast(net, {3: list(range(5)), 7: list(range(4))})
        # No BandwidthExceeded raised: pipelining keeps load <= 1 word.


class TestSingleSourceBfs:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("directed", [False, True])
    def test_distances_exact(self, seed, directed):
        g = erdos_renyi(30, 0.1, directed=directed, seed=seed)
        net = net_for(g)
        dist, _ = bfs(net, 0)
        assert dist == bfs_distances(g, 0)

    def test_reverse_bfs(self):
        g = Graph(4, directed=True)
        for i in range(3):
            g.add_edge(i, i + 1)
        net = net_for(g)
        dist, _ = bfs(net, 3, reverse=True)
        assert dist == [3, 2, 1, 0]

    def test_hop_limit(self):
        g = cycle_graph(12)
        net = net_for(g)
        dist, _ = bfs(net, 0, h=3)
        assert dist[3] == 3 and dist[4] == INF

    def test_parents_form_tree(self):
        g = erdos_renyi(25, 0.12, seed=1)
        net = net_for(g)
        dist, parent = bfs(net, 0, record_parents=True)
        for v in range(1, g.n):
            if dist[v] != INF:
                assert dist[parent[v]] == dist[v] - 1

    def test_rounds_equal_depth_reached(self):
        g = cycle_graph(20)
        net = net_for(g, strict=True)
        bfs(net, 0)
        assert net.rounds <= g.undirected_eccentricity(0) + 1


class TestMultiSourceBfs:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [False, True])
    def test_exact_distances_all_sources(self, seed, directed):
        g = erdos_renyi(26, 0.12, directed=directed, seed=seed)
        net = net_for(g)
        sources = [0, 3, 7, 11]
        known, _ = multi_source_bfs(net, sources, h=None)
        ref = k_source_distances(g, sources)
        for v in range(g.n):
            for s in sources:
                expected = ref[s][v]
                got = known[v].get(s, INF)
                assert got == expected

    def test_hop_limit_respected(self):
        g = cycle_graph(16)
        net = net_for(g)
        known, _ = multi_source_bfs(net, [0], h=3)
        assert known[3].get(0) == 3
        assert 0 not in known[5]

    def test_round_bound_h_plus_k(self):
        g = grid_graph(6, 6)
        net = net_for(g, strict=True)
        sources = list(range(0, 36, 5))
        multi_source_bfs(net, sources, h=None)
        D = g.undirected_diameter()
        assert net.rounds <= D + len(sources) + 8

    def test_strict_one_word_per_edge(self):
        g = erdos_renyi(20, 0.2, seed=2)
        net = net_for(g, strict=True)
        multi_source_bfs(net, list(range(10)), h=None)  # must not raise

    def test_parents_consistent(self):
        g = erdos_renyi(22, 0.15, seed=3)
        net = net_for(g)
        known, parents = multi_source_bfs(net, [0, 5], record_parents=True)
        for v in range(g.n):
            for s, d in known[v].items():
                if v == s:
                    continue
                p = parents[v][s]
                assert known[p][s] == d - 1

    def test_empty_sources(self):
        net = net_for(cycle_graph(5))
        known, _ = multi_source_bfs(net, [])
        assert all(k == {} for k in known)


class TestWaves:
    @pytest.mark.parametrize("seed", range(4))
    def test_weight_limited_distances(self, seed):
        g = erdos_renyi(20, 0.15, directed=True, weighted=True, max_weight=5,
                        seed=seed)
        net = net_for(g)
        budget = 12
        known, _ = multi_source_wave(net, [0, 4], budget=budget)
        for s in (0, 4):
            ref = weight_limited_distances(g, s, budget)
            for v in range(g.n):
                assert known[v].get(s, INF) == ref[v]

    def test_wave_on_weight_override_graph(self):
        g = cycle_graph(6, directed=True)
        scaled = g.with_weights(lambda u, v, w: 2)
        net = net_for(g)
        known, _ = multi_source_wave(net, [0], budget=12, weight_graph=scaled)
        assert known[3][0] == 6

    def test_wave_rejects_zero_weight(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 0)
        net = net_for(g)
        with pytest.raises(Exception):
            multi_source_wave(net, [0], budget=5)

    def test_reverse_wave(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        net = net_for(g)
        known, _ = multi_source_wave(net, [2], budget=10, reverse=True)
        assert known[0][2] == 5

    def test_rounds_bounded_by_budget_plus_k(self):
        g = grid_graph(5, 5, weighted=True, max_weight=3, seed=1)
        net = net_for(g)
        multi_source_wave(net, [0, 12, 24], budget=15)
        assert net.rounds <= 2 * (15 + 3) + 16


class TestSourceDetection:
    @pytest.mark.parametrize("seed", range(3))
    def test_detects_sigma_nearest(self, seed):
        g = erdos_renyi(24, 0.15, seed=seed)
        net = net_for(g)
        sigma = 5
        lists = source_detection(net, sigma=sigma, budget=g.n)
        ref = k_source_distances(g, range(g.n))
        for v in range(g.n):
            expected = sorted((int(ref[s][v]), s) for s in range(g.n)
                              if ref[s][v] != INF)[:sigma]
            assert lists[v] == expected

    def test_budget_truncates(self):
        g = cycle_graph(12)
        net = net_for(g)
        lists = source_detection(net, sigma=12, budget=2)
        for v in range(g.n):
            assert all(d <= 2 for d, _ in lists[v])
            assert len(lists[v]) == 5  # self + two on each side

    def test_restricted_source_set(self):
        g = cycle_graph(10)
        net = net_for(g)
        lists = source_detection(net, sigma=2, budget=10, sources=[0, 5])
        assert [s for _, s in lists[1]] == [0, 5]

    def test_rounds_bounded(self):
        g = grid_graph(6, 6)
        net = net_for(g)
        sigma = 6
        source_detection(net, sigma=sigma, budget=6)
        assert net.rounds <= 2 * (6 + sigma) + 16


class TestTreePropagation:
    def test_values_delivered_to_whole_tree(self):
        g = grid_graph(4, 4)
        net = net_for(g)
        sources = [0, 15]
        known, parents = multi_source_bfs(net, sources, record_parents=True)
        values = {0: ["a", "b"], 15: ["c"]}
        delivered = propagate_down_trees(net, parents, values)
        for v in range(g.n):
            got = sorted(delivered[v])
            expected = []
            if 0 in known[v]:
                expected += [(0, "a"), (0, "b")]
            if 15 in known[v]:
                expected += [(15, "c")]
            assert got == sorted(expected)

    def test_empty_values(self):
        g = cycle_graph(5)
        net = net_for(g)
        _, parents = multi_source_bfs(net, [0], record_parents=True)
        delivered = propagate_down_trees(net, parents, {})
        assert all(d == [] for d in delivered)

    def test_overlapping_trees_pipelined(self):
        g = cycle_graph(20)
        net = net_for(g)
        sources = [0, 1, 2, 3]
        _, parents = multi_source_bfs(net, sources, record_parents=True)
        values = {s: [f"v{s}-{i}" for i in range(3)] for s in sources}
        delivered = propagate_down_trees(net, parents, values)
        for v in range(g.n):
            assert len(delivered[v]) == 12  # every tree spans the cycle
