"""Tests for the resilience layer (repro.resilience).

Covers the three tentpole pieces outside the checkpoint subsystem:
graceful degradation (budget exhaustion -> best-effort ``exact=False``
result), the supervised sweep executor (timeouts, crash detection,
deterministic retries), and the JSONL sweep journal with exact resume.
"""

import json
import os

import pytest

from repro.congest import CongestNetwork, RoundBudgetExceeded
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.core.girth import girth_2approx_on
from repro.harness import (
    SweepRow,
    default_jobs,
    report_fingerprint,
    run_sweep,
)
from repro.obs.registry import get_registry, observing
from repro.resilience import (
    RetryPolicy,
    SweepPointFailed,
    degrade_enabled,
    degrading,
    finalize_result_details,
    record_degradation,
    supervise,
)
from repro.resilience.journal import JournalError, SweepJournal, read_journal
from repro.sequential import exact_mwc
from repro.graphs import erdos_renyi
from repro.graphs.generators import random_weighted


# --- graceful degradation -------------------------------------------------

WEIGHTED = random_weighted(30, 0.18, 8, seed=3)
UNWEIGHTED = erdos_renyi(28, 0.16, seed=6)


class TestDegradeGate:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        assert not degrade_enabled()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADE", "1")
        assert degrade_enabled()

    def test_scope_overrides_env_both_ways(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADE", "1")
        with degrading(False):
            assert not degrade_enabled()
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        with degrading(True):
            assert degrade_enabled()
        assert not degrade_enabled()


class TestGracefulDegradation:
    def test_budget_raises_without_degradation(self):
        net = CongestNetwork(WEIGHTED, seed=1, max_rounds=10)
        with pytest.raises(RoundBudgetExceeded):
            exact_mwc_congest_on(net)

    def test_budget_yields_upper_bound_with_degradation(self):
        truth = exact_mwc(WEIGHTED)
        with degrading(True):
            net = CongestNetwork(WEIGHTED, seed=1, max_rounds=30)
            res = exact_mwc_congest_on(net)
        assert res.exact is False
        assert res.details["degraded"]
        assert res.details["confidence"]["value_is"] == "upper-bound"
        assert res.details["confidence"]["round_budget"] == 30
        assert res.value >= truth  # best-effort value never undershoots

    def test_full_budget_run_stays_exact_under_degradation(self):
        # The opt-in must not perturb runs that never hit their budget.
        plain = exact_mwc_congest_on(CongestNetwork(WEIGHTED, seed=1))
        with degrading(True):
            res = exact_mwc_congest_on(CongestNetwork(WEIGHTED, seed=1))
        assert res.exact is True
        assert "degraded" not in res.details
        assert (res.value, res.rounds, res.stats) == (
            plain.value, plain.rounds, plain.stats)

    def test_girth_degrades_too(self):
        with degrading(True):
            net = CongestNetwork(UNWEIGHTED, seed=2, max_rounds=8)
            res = girth_2approx_on(net)
        assert res.exact is False
        assert res.details["degraded"]

    def test_degraded_witness_is_not_constructed(self):
        with degrading(True):
            net = CongestNetwork(WEIGHTED, seed=1, max_rounds=30)
            res = exact_mwc_congest_on(net, construct_witness=True)
        assert res.exact is False
        assert res.details.get("witness") is None

    def test_events_attributed_via_obs(self):
        get_registry().reset()
        with observing():
            with degrading(True):
                net = CongestNetwork(WEIGHTED, seed=1, max_rounds=30)
                exact_mwc_congest_on(net)
            snap = get_registry().snapshot()
        assert snap["resilience.degraded"]["value"] >= 1
        staged = [k for k in snap if k.startswith("resilience.degraded.")]
        assert staged

    def test_finalize_result_details_contract(self):
        net = CongestNetwork(UNWEIGHTED, seed=0)
        details = {}
        assert finalize_result_details(net, details) is True
        assert details == {}
        record_degradation(net, "unit-test", "synthetic")
        assert finalize_result_details(net, details) is False
        assert details["degraded"][0]["stage"] == "unit-test"
        assert details["confidence"]["events"] == 1


# --- supervisor -----------------------------------------------------------
# Module-level workers: subprocess isolation pickles them by reference.

def _square(n):
    return n * n


def _always_fails(n):
    raise ValueError(f"boom {n}")


def _sleep_forever(n):
    import time
    time.sleep(60)
    return n


def _hard_crash(n):
    os._exit(13)


def _fail_once_then_succeed(path):
    # Cross-process flakiness: first attempt plants a marker and dies,
    # the retry sees the marker and succeeds.
    if not os.path.exists(path):
        with open(path, "w") as fh:
            fh.write("seen")
        raise RuntimeError("first attempt always fails")
    return "recovered"


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_label(self):
        policy = RetryPolicy(retries=3, base_delay=0.1, jitter=0.5)
        assert policy.delay("p", 2) == policy.delay("p", 2)
        assert policy.delay("p", 0) != policy.delay("q", 0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0)
        assert policy.delay("x", 0) == pytest.approx(0.1)
        assert policy.delay("x", 1) == pytest.approx(0.2)
        assert policy.delay("x", 10) == pytest.approx(1.0)


class TestSupervise:
    def test_outcomes_in_item_order(self):
        outcomes = supervise([3, 1, 2], _square, jobs=2)
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_timeout_kills_hung_worker(self):
        outcomes = supervise([5], _sleep_forever, timeout=0.5,
                             on_failure="skip")
        assert not outcomes[0].ok
        assert outcomes[0].failures == ["timeout"]
        assert "timed out" in outcomes[0].error

    def test_worker_crash_detected(self):
        outcomes = supervise([5], _hard_crash, timeout=10.0,
                             on_failure="skip")
        assert not outcomes[0].ok
        assert outcomes[0].failures == ["crash"]
        assert "exit code" in outcomes[0].error

    def test_retry_recovers_flaky_point(self, tmp_path):
        marker = str(tmp_path / "marker")
        outcomes = supervise([marker], _fail_once_then_succeed,
                             timeout=30.0,
                             policy=RetryPolicy(retries=2, base_delay=0.01))
        assert outcomes[0].ok
        assert outcomes[0].value == "recovered"
        assert outcomes[0].attempts == 2

    def test_exhausted_point_raises_by_default(self):
        with pytest.raises(SweepPointFailed) as info:
            supervise([7], _always_fails,
                      policy=RetryPolicy(retries=1, base_delay=0.01))
        assert info.value.outcome.attempts == 2
        assert "boom 7" in info.value.outcome.error

    def test_on_failure_skip_keeps_going(self):
        outcomes = supervise([2, 7, 3], _square_or_fail, on_failure="skip")
        assert [o.ok for o in outcomes] == [True, False, True]
        assert [o.value for o in outcomes] == [4, None, 9]

    def test_unpicklable_fn_degrades_to_in_process(self):
        offset = 5
        outcomes = supervise([1, 2], lambda n: n + offset,  # noqa: B023
                             jobs=2, timeout=10.0)
        assert [o.value for o in outcomes] == [6, 7]


def _square_or_fail(n):
    if n == 7:
        raise ValueError("unlucky")
    return n * n


# --- journal --------------------------------------------------------------

class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "EXP", [4, 8, 16], runner_ref="m:f") as j:
            j.record_point(0, 4, {"n": 4, "rounds": 16.0}, attempts=1)
            j.record_point(2, 16, {"n": 16, "rounds": 256.0}, attempts=2)
            assert j.pending_indices(3) == [1]
        header, completed = read_journal(path)
        assert header["exp_id"] == "EXP" and header["sizes"] == [4, 8, 16]
        assert header["runner"] == "m:f"
        assert set(completed) == {0, 2}
        assert completed[2]["rounds"] == 256.0

    def test_torn_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "EXP", [4, 8]) as j:
            j.record_point(0, 4, {"n": 4, "rounds": 16.0})
        with open(path, "a") as fh:
            fh.write('{"kind": "point", "index": 1, "n": 8, "row": {"tru')
        header, completed = read_journal(path)
        assert set(completed) == {0}

    def test_resume_rejects_other_sweep(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        SweepJournal.open(path, "EXP-A", [4, 8]).close()
        with pytest.raises(JournalError, match="EXP-A"):
            SweepJournal.open(path, "EXP-B", [4, 8], resume=True)
        with pytest.raises(JournalError):
            SweepJournal.open(path, "EXP-A", [4, 8, 16], resume=True)

    def test_non_journal_file_rejected(self, tmp_path):
        path = str(tmp_path / "noise.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)

    def test_failures_never_count_as_completed(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "EXP", [4, 8]) as j:
            j.record_failure(1, 8, "ValueError: boom", attempts=3)
        _, completed = read_journal(path)
        assert completed == {}


# --- supervised run_sweep and resume --------------------------------------

_CALLS = []


def _counting_runner(n):
    _CALLS.append(n)
    return SweepRow(n=n, rounds=float(n * n), value=2.0, true_value=1.5)


def _flaky_runner(n):
    if n == 8:
        raise ValueError("bad point")
    return SweepRow(n=n, rounds=float(n))


class TestSupervisedSweep:
    def test_journaled_sweep_matches_classic(self, tmp_path):
        classic = run_sweep("TEST-SUP", [4, 8, 16], _counting_runner)
        journaled = run_sweep("TEST-SUP", [4, 8, 16], _counting_runner,
                              journal=str(tmp_path / "j.jsonl"))
        assert report_fingerprint(journaled) == report_fingerprint(classic)

    def test_interrupted_sweep_resumes_exactly(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        baseline = run_sweep("TEST-RESUME", [4, 8, 16, 32], _counting_runner)
        run_sweep("TEST-RESUME", [4, 8, 16, 32], _counting_runner,
                  journal=path)
        # Simulate a kill after two completed points: drop later lines.
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:3])  # header + 2 points
        _CALLS.clear()
        resumed = run_sweep("TEST-RESUME", [4, 8, 16, 32], _counting_runner,
                            journal=path, resume=True)
        assert _CALLS == [16, 32]  # only the missing points re-ran
        assert report_fingerprint(resumed) == report_fingerprint(baseline)
        # The journal now holds the full sweep: resuming again runs nothing.
        _CALLS.clear()
        again = run_sweep("TEST-RESUME", [4, 8, 16, 32], _counting_runner,
                          journal=path, resume=True)
        assert _CALLS == []
        assert report_fingerprint(again) == report_fingerprint(baseline)

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            run_sweep("TEST-NOJ", [4, 8], _counting_runner, resume=True)

    def test_on_failure_skip_drops_point(self, tmp_path):
        report = run_sweep("TEST-SKIP", [4, 8, 16], _flaky_runner,
                           journal=str(tmp_path / "j.jsonl"),
                           on_failure="skip")
        assert [r.n for r in report.rows] == [4, 16]
        _, completed = read_journal(str(tmp_path / "j.jsonl"))
        assert set(completed) == {0, 2}

    def test_failing_point_raises_by_default(self):
        with pytest.raises(SweepPointFailed):
            run_sweep("TEST-RAISE", [4, 8], _flaky_runner, retries=0,
                      backoff=RetryPolicy(retries=0))

    def test_fingerprint_ignores_wall_clock_only(self):
        a = run_sweep("TEST-FP", [4, 8], _counting_runner)
        b = run_sweep("TEST-FP", [4, 8], _counting_runner)
        b.wall_seconds = a.wall_seconds + 123.0
        assert report_fingerprint(a) == report_fingerprint(b)
        b.rows[0].phases = {"apsp": {"rounds": 3, "seconds": 0.5}}
        a.rows[0].phases = {"apsp": {"rounds": 3, "seconds": 0.9}}
        assert report_fingerprint(a) == report_fingerprint(b)
        b.rows[0].rounds += 1
        assert report_fingerprint(a) != report_fingerprint(b)


class TestDefaultJobsValidation:
    def test_invalid_values_warn_and_run_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "three")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.warns(RuntimeWarning, match="negative"):
            assert default_jobs() == 1

    def test_documented_serial_spellings_stay_silent(self, monkeypatch):
        import warnings as warnings_mod
        for raw in ("", "0", "1", " 4 "):
            monkeypatch.setenv("REPRO_JOBS", raw)
            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")
                assert default_jobs() in (1, 4)
