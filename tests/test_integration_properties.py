"""Hypothesis-driven integration properties of the full algorithm stack.

Each property runs a complete distributed algorithm on a randomly drawn
graph with a randomly drawn seed and checks the paper's guarantee against
the sequential ground truth — hundreds of distinct (graph, seed) pairs
across runs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.strategies import algorithm_seeds, connected_graphs
from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.girth import girth_2approx
from repro.core.ksource import k_source_bfs
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs.graph import INF
from repro.sequential import exact_mwc, k_source_distances

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**SETTINGS)
@given(g=connected_graphs(directed=True), seed=algorithm_seeds())
def test_directed_2approx_guarantee(g, seed):
    true = exact_mwc(g)
    res = directed_mwc_2approx(g, seed=seed)
    if true == INF:
        assert res.value == INF
    else:
        assert true <= res.value <= 2 * true


@settings(**SETTINGS)
@given(g=connected_graphs(), seed=algorithm_seeds())
def test_girth_guarantee(g, seed):
    true = exact_mwc(g)
    res = girth_2approx(g, seed=seed)
    if true == INF:
        assert res.value == INF
    else:
        assert true <= res.value <= (2 - 1 / true) * true + 1e-9


@settings(**SETTINGS)
@given(g=connected_graphs(weighted=True), seed=algorithm_seeds())
def test_undirected_weighted_guarantee(g, seed):
    true = exact_mwc(g)
    res = undirected_weighted_mwc_approx(g, eps=0.5, seed=seed)
    if true == INF:
        assert res.value == INF
    else:
        assert true - 1e-9 <= res.value <= 2.5 * true + 1e-9


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(g=connected_graphs(directed=True, weighted=True, max_n=18),
       seed=algorithm_seeds())
def test_directed_weighted_guarantee(g, seed):
    true = exact_mwc(g)
    res = directed_weighted_mwc_approx(g, eps=0.5, seed=seed)
    if true == INF:
        assert res.value == INF
    else:
        assert true - 1e-9 <= res.value <= 2.5 * true + 1e-9


@settings(**SETTINGS)
@given(g=connected_graphs(directed=True), seed=algorithm_seeds())
def test_exact_congest_always_exact(g, seed):
    assert exact_mwc_congest(g, seed=seed).value == exact_mwc(g)


@settings(**SETTINGS)
@given(g=connected_graphs(directed=True, min_n=10), seed=algorithm_seeds(),
       data=st.data())
def test_ksource_bfs_exact(g, seed, data):
    k = data.draw(st.integers(min_value=2, max_value=min(8, g.n // 2)))
    sources = data.draw(st.lists(
        st.integers(min_value=0, max_value=g.n - 1),
        min_size=k, max_size=k, unique=True))
    res = k_source_bfs(g, sources, seed=seed, method="skeleton",
                       sample_constant=4.0)
    ref = k_source_distances(g, sources)
    for v in range(g.n):
        for u in sources:
            assert res.distance(u, v) == ref[u][v]
