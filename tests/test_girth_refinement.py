"""Tests for the §4 one-vertex-outside candidate refinement."""

import pytest

from repro.congest import CongestNetwork
from repro.core.girth import (
    _edge_candidates,
    _exchange_vectors,
    _vertex_candidates,
    girth_2approx,
)
from repro.congest.primitives.waves import multi_source_wave
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import exact_girth, exact_mwc


def vectors_from_wave(net, sources, budget):
    known, parents = multi_source_wave(net, sources, budget=budget,
                                       record_parents=True)
    return [
        {w: (float(d), parents[v].get(w, -1)) for w, d in known[v].items()}
        for v in range(net.n)
    ]


class TestVertexCandidates:
    def test_finds_cycle_whose_apex_missed_the_wave(self):
        """A cycle vertex outside the wave's budget is closed by its two
        in-budget neighbors."""
        g = cycle_graph(10)  # girth 10; the apex (vertex 5) is 5 hops out
        net = CongestNetwork(g, seed=0)
        budget = 4  # vertices at distance > 4 never hear from source 0
        vectors = vectors_from_wave(net, [0], budget)
        nbr = _exchange_vectors(net, vectors)
        edge_best, _ = _edge_candidates(g, None, vectors, nbr)
        vertex_best, vertex_arg = _vertex_candidates(g, None, nbr)
        # With budget 4 on a 10-cycle the two wave fronts stop one vertex
        # apart (vertex 5 is unreached): edge candidates cannot close it...
        assert min(edge_best) == INF
        # ...but the one-outside vertex candidate at the apex does, exactly.
        assert min(vertex_best) == 10

    @pytest.mark.parametrize("seed", range(6))
    def test_never_undershoots_girth(self, seed):
        g = erdos_renyi(22, 0.15, seed=seed)
        true = exact_girth(g)
        net = CongestNetwork(g, seed=seed)
        vectors = vectors_from_wave(net, list(range(0, g.n, 3)), budget=g.n)
        nbr = _exchange_vectors(net, vectors)
        vertex_best, _ = _vertex_candidates(g, None, nbr)
        for cand in vertex_best:
            assert cand >= true

    def test_budget_excludes_heavy_edges(self):
        g = cycle_graph(6)
        heavy = g.with_weights(lambda u, v, w: 10)
        net = CongestNetwork(g, seed=0)
        vectors = vectors_from_wave(net, [0], budget=100)
        nbr = _exchange_vectors(net, vectors)
        capped, _ = _vertex_candidates(g, heavy, nbr, budget=5)
        assert min(capped) == INF  # every edge weighs 10 > budget 5

    def test_degree_one_vertices_skipped(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        net = CongestNetwork(g, seed=0)
        vectors = vectors_from_wave(net, [0], budget=10)
        nbr = _exchange_vectors(net, vectors)
        assert min(_vertex_candidates(g, None, nbr)[0]) == INF


class TestEndToEndTightness:
    @pytest.mark.parametrize("n", [9, 15, 21])
    def test_odd_cycles_stay_exact(self, n):
        res = girth_2approx(cycle_graph(n), seed=3)
        assert res.value == n

    @pytest.mark.parametrize("seed", range(4))
    def test_guarantee_preserved_with_refinement(self, seed):
        g = erdos_renyi(36, 0.09, seed=seed + 200)
        true = exact_mwc(g)
        res = girth_2approx(g, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true <= res.value <= (2 - 1 / true) * true + 1e-9
