"""Tests for witness cycle construction (paper §1.1 remark)."""

import pytest

from repro.core.exact_mwc import exact_mwc_congest
from repro.core.witness import (
    cycle_weight,
    path_from_parents,
    simplify_closed_walk,
    validate_cycle,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi, planted_mwc
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_mwc


class TestHelpers:
    def test_path_from_parents(self):
        parent = [dict(), {0: 0}, {0: 1}, {0: 2}]
        assert path_from_parents(parent, 0, 3) == [0, 1, 2, 3]
        assert path_from_parents(parent, 0, 0) == [0]

    def test_path_missing_pointer(self):
        parent = [dict(), dict()]
        assert path_from_parents(parent, 0, 1) is None

    def test_path_cycle_guard(self):
        # Corrupt pointers looping forever must return None, not hang.
        parent = [dict(), {0: 2}, {0: 1}]
        assert path_from_parents(parent, 0, 1) is None

    def test_simplify_closed_walk(self):
        assert simplify_closed_walk([5, 1, 2, 3]) == [5, 1, 2, 3]
        assert simplify_closed_walk([0, 1, 2, 1]) == [1, 2]
        with pytest.raises(GraphError):
            simplify_closed_walk([])

    def test_cycle_weight(self):
        g = cycle_graph(4, weighted=True, weights=[1, 2, 3, 4])
        assert cycle_weight(g, [0, 1, 2, 3]) == 10
        with pytest.raises(GraphError):
            cycle_weight(g, [0, 2, 1])  # edge (0, 2) missing

    def test_validate_cycle(self):
        g = cycle_graph(4)
        assert validate_cycle(g, [0, 1, 2, 3])
        assert not validate_cycle(g, [0, 1, 0, 3])
        assert not validate_cycle(g, [0, 2, 1])


class TestWitnessFromExactAlgorithm:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [True, False])
    def test_witness_weight_matches_value(self, seed, directed):
        g = erdos_renyi(24, 0.12, directed=directed, seed=seed)
        res = exact_mwc_congest(g, seed=seed, construct_witness=True)
        true = exact_mwc(g)
        assert res.value == true
        if true == INF:
            assert "witness" not in res.details
            return
        cyc = res.details["witness"]
        assert cyc is not None
        assert validate_cycle(g, cyc)
        assert cycle_weight(g, cyc) == true

    @pytest.mark.parametrize("seed", range(3))
    def test_witness_weighted(self, seed):
        g = erdos_renyi(20, 0.15, directed=True, weighted=True, max_weight=7,
                        seed=seed + 40)
        res = exact_mwc_congest(g, seed=seed, construct_witness=True)
        if res.value == INF:
            return
        cyc = res.details["witness"]
        assert cyc is not None and validate_cycle(g, cyc)
        assert cycle_weight(g, cyc) == res.value

    def test_witness_on_planted_instance(self):
        # The connectivity backbone may create a cycle shorter than the
        # planted one; whatever the optimum is, the witness must realize it.
        g = planted_mwc(30, cycle_len=5, directed=True, seed=2)
        true = exact_mwc(g)
        res = exact_mwc_congest(g, seed=0, construct_witness=True)
        assert res.value == true
        cyc = res.details["witness"]
        assert validate_cycle(g, cyc) and len(cyc) == true

    def test_witness_undirected_weighted(self):
        g = cycle_graph(6, weighted=True, weights=[2, 2, 2, 2, 2, 2])
        g.add_edge(0, 3, 1)  # creates two lighter 4-ish cycles of weight 7
        res = exact_mwc_congest(g, seed=0, construct_witness=True)
        assert res.value == 7
        cyc = res.details["witness"]
        assert validate_cycle(g, cyc) and cycle_weight(g, cyc) == 7


class TestWitnessFromApproxAlgorithm:
    """Witness construction for Algorithm 2 (2-approx directed MWC)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_witness_weight_equals_reported_value(self, seed):
        from repro.core.directed_mwc import directed_mwc_2approx

        g = erdos_renyi(30, 0.1, directed=True, seed=seed)
        true = exact_mwc(g)
        res = directed_mwc_2approx(g, seed=seed, construct_witness=True)
        if true == INF:
            assert res.value == INF
            return
        cyc = res.details.get("witness")
        assert cyc is not None
        assert validate_cycle(g, cyc)
        # The witness realizes the reported (<= 2-approx) value or better
        # (simplifying a closed walk can only shorten it).
        assert cycle_weight(g, cyc) <= res.value
        assert cycle_weight(g, cyc) >= true

    def test_witness_for_short_cycle_case(self):
        from repro.core.directed_mwc import directed_mwc_2approx
        from repro.graphs import planted_mwc

        g = planted_mwc(40, cycle_len=3, p=0.03, directed=True, seed=9)
        res = directed_mwc_2approx(g, seed=1, construct_witness=True)
        cyc = res.details.get("witness")
        assert cyc is not None and validate_cycle(g, cyc)
        assert cycle_weight(g, cyc) <= res.value


class TestWitnessFromWeightedAlgorithm:
    """Witness construction for the (2+eps) directed weighted algorithm."""

    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_witness_is_real_cycle(self, seed):
        from repro.core.weighted_mwc import directed_weighted_mwc_approx

        g = erdos_renyi(22, 0.14, directed=True, weighted=True, max_weight=7,
                        seed=seed + 11)
        true = exact_mwc(g)
        res = directed_weighted_mwc_approx(g, eps=0.5, seed=seed,
                                           construct_witness=True)
        if true == INF:
            assert res.value == INF
            return
        cyc = res.details.get("witness")
        assert cyc is not None
        assert validate_cycle(g, cyc)
        assert true <= cycle_weight(g, cyc) <= 2.5 * true + 1e-9

    def test_weighted_witness_planted(self):
        from repro.core.weighted_mwc import directed_weighted_mwc_approx

        g = planted_mwc(24, cycle_len=3, p=0.05, directed=True, weighted=True,
                        cycle_weight=1, background_weight=30, seed=6)
        res = directed_weighted_mwc_approx(g, eps=0.5, seed=2,
                                           construct_witness=True)
        cyc = res.details.get("witness")
        assert cyc is not None and validate_cycle(g, cyc)


class TestExtractAnchoredCycle:
    def test_basic_extraction(self):
        from repro.congest import CongestNetwork
        from repro.core.witness import extract_anchored_cycle

        g = cycle_graph(7, directed=True)
        net = CongestNetwork(g, seed=0)
        cyc = extract_anchored_cycle(net, 6, 0)  # path 0->..->6 + edge (6,0)
        assert cyc == list(range(7))

    def test_none_anchor(self):
        from repro.congest import CongestNetwork
        from repro.core.witness import extract_anchored_cycle

        net = CongestNetwork(cycle_graph(5, directed=True), seed=0)
        assert extract_anchored_cycle(net, 2, None) is None
        assert extract_anchored_cycle(net, 2, 2) is None

    def test_unreachable_anchor(self):
        from repro.congest import CongestNetwork
        from repro.core.witness import extract_anchored_cycle

        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        net = CongestNetwork(g, seed=0)
        assert extract_anchored_cycle(net, 2, 0) is None


class TestUndirectedWitnesses:
    """Witnesses for the girth and undirected weighted algorithms."""

    @pytest.mark.parametrize("seed", range(4))
    def test_girth_witness(self, seed):
        from repro.core.girth import girth_2approx

        g = erdos_renyi(30, 0.1, seed=seed + 20)
        true = exact_mwc(g)
        res = girth_2approx(g, seed=seed, construct_witness=True)
        if true == INF:
            assert res.value == INF
            return
        cyc = res.details.get("witness")
        assert cyc is not None
        assert validate_cycle(g, cyc)
        assert true <= cycle_weight(g, cyc) <= (2 - 1 / true) * true + 1e-9

    def test_girth_witness_pure_cycle(self):
        from repro.core.girth import girth_2approx

        g = cycle_graph(11)
        res = girth_2approx(g, seed=0, construct_witness=True)
        cyc = res.details["witness"]
        assert sorted(cyc) == list(range(11))
        assert cycle_weight(g, cyc) == 11

    @pytest.mark.parametrize("seed", range(3))
    def test_undirected_weighted_witness(self, seed):
        from repro.core.weighted_mwc import undirected_weighted_mwc_approx

        g = erdos_renyi(24, 0.14, weighted=True, max_weight=6, seed=seed + 31)
        true = exact_mwc(g)
        res = undirected_weighted_mwc_approx(g, eps=0.5, seed=seed,
                                             construct_witness=True)
        if true == INF:
            assert res.value == INF
            return
        cyc = res.details.get("witness")
        # Extraction can degenerate in rare tie cases (documented); when a
        # witness is produced it must be a real cycle in the right range.
        if cyc is not None:
            assert validate_cycle(g, cyc)
            assert true <= cycle_weight(g, cyc) <= 2.5 * true + 1e-9

    def test_undirected_weighted_witness_concrete(self):
        from repro.core.weighted_mwc import undirected_weighted_mwc_approx

        g = cycle_graph(8, weighted=True, weights=[2] * 8)
        g.add_edge(0, 4, 3)  # two 5-vertex cycles of weight 11
        res = undirected_weighted_mwc_approx(g, eps=0.5, seed=0,
                                             construct_witness=True)
        cyc = res.details.get("witness")
        assert cyc is not None and validate_cycle(g, cyc)
        assert cycle_weight(g, cyc) == 11
