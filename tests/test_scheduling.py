"""Tests for random-delay path scheduling ([24, 36])."""

import math

import pytest

from repro.congest import CongestNetwork
from repro.congest.primitives.scheduling import (
    Job,
    congestion_dilation,
    route_jobs,
)
from repro.graphs import Graph, cycle_graph, grid_graph
from repro.graphs.graph import GraphError


def path_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestJobBasics:
    def test_job_validation(self):
        with pytest.raises(GraphError):
            Job(path=(3,))

    def test_congestion_dilation(self):
        jobs = [Job((0, 1, 2)), Job((3, 1, 2)), Job((0, 1))]
        congestion, dilation = congestion_dilation(jobs)
        assert congestion == 2  # edge (1, 2) used twice
        assert dilation == 2

    def test_empty(self):
        assert congestion_dilation([]) == (0, 0)

    def test_path_must_follow_edges(self):
        net = CongestNetwork(cycle_graph(6))
        with pytest.raises(GraphError):
            route_jobs(net, [Job((0, 3))])


class TestRouting:
    def test_single_job_arrives_in_path_length(self):
        g = path_graph(10)
        net = CongestNetwork(g, seed=0)
        arrival = route_jobs(net, [Job(tuple(range(10)))], rho=1)
        assert arrival[0] >= 9  # nine hops, plus the unit delay

    def test_all_jobs_arrive(self):
        g = grid_graph(5, 5)
        net = CongestNetwork(g, seed=1)
        jobs = [Job((r * 5, r * 5 + 1, r * 5 + 2, r * 5 + 3, r * 5 + 4))
                for r in range(5)]
        arrival = route_jobs(net, jobs)
        assert all(a > 0 for a in arrival)

    def test_disjoint_paths_fully_parallel(self):
        """Congestion 1: all jobs finish in ~dilation + rho rounds."""
        g = grid_graph(6, 6)
        net = CongestNetwork(g, seed=2)
        jobs = [Job(tuple(range(r * 6, r * 6 + 6))) for r in range(6)]
        arrival = route_jobs(net, jobs, rho=1)
        assert max(arrival) <= 5 + 1 + 2

    def test_shared_edge_serializes_but_pipelines(self):
        """k jobs over one shared edge: ~congestion + dilation rounds,
        far below the k * dilation of sequential execution."""
        n, k = 12, 8
        g = path_graph(n)
        net = CongestNetwork(g, seed=3)
        jobs = [Job(tuple(range(n))) for _ in range(k)]
        congestion, dilation = congestion_dilation(jobs)
        arrival = route_jobs(net, jobs)
        bound = 3 * (congestion + dilation) + 10
        assert max(arrival) <= bound
        assert max(arrival) < k * dilation  # beats sequential

    @pytest.mark.parametrize("seed", range(3))
    def test_bound_congestion_plus_dilation_log(self, seed):
        """Empirical check of the O(congestion + dilation log n) bound."""
        g = grid_graph(6, 6)
        net = CongestNetwork(g, seed=seed)
        # Many jobs funneling through the grid's first row.
        jobs = []
        for r in range(1, 6):
            for c in range(3):
                start = r * 6 + c
                path = [start]
                # go up to row 0 then right along the shared row.
                for rr in range(r - 1, -1, -1):
                    path.append(rr * 6 + c)
                for cc in range(c + 1, 6):
                    path.append(cc)
                jobs.append(Job(tuple(path)))
        congestion, dilation = congestion_dilation(jobs)
        arrival = route_jobs(net, jobs)
        log_n = math.log2(net.n)
        assert max(arrival) <= 4 * (congestion + dilation * log_n) + 16

    def test_payloads_optional(self):
        g = path_graph(4)
        net = CongestNetwork(g, seed=0)
        arrival = route_jobs(net, [Job((0, 1, 2, 3), payload="hello")])
        assert arrival[0] > 0
