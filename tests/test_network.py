"""Tests for the CONGEST network simulator: accounting, locality, hosting."""

import pytest

from repro.congest import BandwidthExceeded, CongestNetwork, LocalityViolation
from repro.graphs import Graph
from repro.graphs.graph import GraphError


def line_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestConstruction:
    def test_rejects_disconnected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(GraphError):
            CongestNetwork(g)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            CongestNetwork(Graph(0))

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(GraphError):
            CongestNetwork(line_graph(2), bandwidth=0)

    def test_rejects_short_host_map(self):
        with pytest.raises(GraphError):
            CongestNetwork(line_graph(3), host=[0, 1])

    def test_directed_graph_has_bidirectional_links(self):
        g = Graph(2, directed=True)
        g.add_edge(0, 1)
        net = CongestNetwork(g)
        assert 0 in net.comm_neighbors(1)
        assert 1 in net.comm_neighbors(0)


class TestExchange:
    def test_basic_delivery(self):
        net = CongestNetwork(line_graph(3))
        inboxes = net.exchange({0: {1: [("hello", 1)]}})
        assert inboxes[1][0] == ["hello"]
        assert net.rounds == 1

    def test_locality_enforced(self):
        net = CongestNetwork(line_graph(3))
        with pytest.raises(LocalityViolation):
            net.exchange({0: {2: [("x", 1)]}})

    def test_invalid_step_leaves_network_untouched(self):
        # Regression: the whole outbox set is validated before any inbox is
        # built or any counter mutated, so a violation buried after valid
        # messages aborts the step atomically.
        net = CongestNetwork(line_graph(3))
        bad_step = {0: {1: [("ok", 1)]}, 1: {2: [("ok", 1)]},
                    2: {0: [("non-neighbor", 1)]}}
        with pytest.raises(LocalityViolation):
            net.exchange(bad_step)
        assert net.rounds == 0
        assert net.stats.steps == 0 and net.stats.messages == 0
        bad_words = {0: {1: [("ok", 1), ("negative", -1)]}}
        with pytest.raises(ValueError):
            net.exchange(bad_words)
        assert net.rounds == 0 and net.stats.words == 0
        # The network still works normally afterwards.
        inboxes = net.exchange({0: {1: [("hello", 1)]}})
        assert inboxes[1][0] == ["hello"]
        assert net.rounds == 1 and net.stats.messages == 1

    def test_round_charging_for_heavy_step(self):
        net = CongestNetwork(line_graph(2), bandwidth=1)
        net.exchange({0: {1: [(i, 1) for i in range(5)]}})
        assert net.rounds == 5  # 5 words over a 1-word link

    def test_round_charging_respects_bandwidth(self):
        net = CongestNetwork(line_graph(2), bandwidth=4)
        net.exchange({0: {1: [(i, 1) for i in range(5)]}})
        assert net.rounds == 2  # ceil(5/4)

    def test_strict_mode_raises_on_overload(self):
        net = CongestNetwork(line_graph(2), strict=True)
        with pytest.raises(BandwidthExceeded):
            net.exchange({0: {1: [(1, 1), (2, 1)]}})

    def test_strict_mode_allows_within_bandwidth(self):
        net = CongestNetwork(line_graph(2), bandwidth=2, strict=True)
        net.exchange({0: {1: [(1, 1), (2, 1)]}})
        assert net.rounds == 1

    def test_empty_step_costs_one_round(self):
        net = CongestNetwork(line_graph(2))
        net.exchange({})
        assert net.rounds == 1

    def test_per_direction_load_independent(self):
        net = CongestNetwork(line_graph(2), bandwidth=1, strict=True)
        # One word each way on the same link is fine.
        net.exchange({0: {1: [("a", 1)]}, 1: {0: [("b", 1)]}})
        assert net.rounds == 1

    def test_negative_word_size_rejected(self):
        net = CongestNetwork(line_graph(2))
        with pytest.raises(ValueError):
            net.exchange({0: {1: [("x", -1)]}})

    def test_message_order_preserved(self):
        net = CongestNetwork(line_graph(2), bandwidth=8)
        inboxes = net.exchange({0: {1: [(i, 1) for i in range(5)]}})
        assert inboxes[1][0] == list(range(5))


class TestHosting:
    def test_cohosted_messages_free(self):
        # Virtual vertices 1, 2 hosted on physical node of vertex 0.
        g = line_graph(3)
        net = CongestNetwork(g, host=[0, 0, 0], strict=True)
        net.exchange({0: {1: [(i, 1) for i in range(10)]}})
        assert net.rounds == 1
        assert net.stats.local_messages == 10

    def test_cross_host_messages_charged(self):
        g = line_graph(3)
        net = CongestNetwork(g, host=[0, 0, 1])
        net.exchange({1: {2: [(i, 1) for i in range(4)]}})
        assert net.rounds == 4


class TestStatsAndHelpers:
    def test_stats_accumulate(self):
        net = CongestNetwork(line_graph(3))
        net.exchange({0: {1: [("a", 1)]}})
        net.exchange({1: {2: [("b", 1), ("c", 1)]}})
        assert net.stats.messages == 3
        assert net.stats.words == 3
        assert net.stats.steps == 2
        assert net.stats.max_link_load == 2

    def test_charge_rounds(self):
        net = CongestNetwork(line_graph(2))
        net.charge_rounds(7)
        assert net.rounds == 7
        with pytest.raises(ValueError):
            net.charge_rounds(-1)

    def test_reset_accounting(self):
        net = CongestNetwork(line_graph(2))
        net.exchange({0: {1: [("a", 1)]}})
        net.reset_accounting()
        assert net.rounds == 0 and net.stats.steps == 0

    def test_node_rng_deterministic(self):
        net1 = CongestNetwork(line_graph(2), seed=3)
        net2 = CongestNetwork(line_graph(2), seed=3)
        assert net1.node_rng(1).integers(0, 100) == net2.node_rng(1).integers(0, 100)

    def test_run_quiescence(self):
        net = CongestNetwork(line_graph(4))

        def step(t, inboxes):
            if t == 0:
                return {0: {1: [("go", 1)]}}
            outboxes = {}
            for v, by_sender in inboxes.items():
                nxt = v + 1
                if nxt < 4:
                    outboxes[v] = {nxt: [("go", 1)]}
            return outboxes

        executed = net.run(step, max_steps=50)
        assert executed == 4  # 3 forwarding steps + 1 quiescent detection step
        assert net.rounds == 3
