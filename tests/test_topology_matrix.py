"""Algorithm x topology coverage matrix.

Every main algorithm, exercised on every structurally distinct workload
family (grid, ring-of-cliques, random regular, cycle+chords, planted,
dense), with the guarantee checked against ground truth each time. These
topologies stress different code paths: grids have large girth and small
degree; ring-of-cliques mixes local triangles with one global cycle; regular
graphs are expander-like (small diameter); cycles-with-chords have huge
eccentricities; dense graphs maximize congestion.
"""

import pytest

from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.girth import girth_2approx
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs import (
    complete_graph,
    cycle_with_chords,
    erdos_renyi,
    grid_graph,
    planted_mwc,
    random_regular,
    ring_of_cliques,
)
from repro.graphs.graph import INF
from repro.sequential import exact_mwc

UNDIRECTED_TOPOLOGIES = {
    "grid": lambda: grid_graph(5, 6),
    "ring_of_cliques": lambda: ring_of_cliques(5, 4),
    "regular": lambda: random_regular(24, 3, seed=1),
    "cycle_chords": lambda: cycle_with_chords(28, 4, seed=2),
    "dense": lambda: erdos_renyi(16, 0.5, seed=3),
}

DIRECTED_TOPOLOGIES = {
    "cycle_chords": lambda: cycle_with_chords(28, 4, directed=True, seed=2),
    "planted": lambda: planted_mwc(30, cycle_len=4, p=0.05, directed=True,
                                   seed=4),
    "dense": lambda: complete_graph(10, directed=True),
    "sparse": lambda: erdos_renyi(30, 0.08, directed=True, seed=5),
}

WEIGHTED_UNDIRECTED = {
    "grid": lambda: grid_graph(5, 5, weighted=True, max_weight=9, seed=1),
    "regular": lambda: random_regular(22, 3, weighted=True, max_weight=6,
                                      seed=2),
    "cycle_chords": lambda: cycle_with_chords(24, 4, weighted=True,
                                              max_weight=7, seed=3),
}

WEIGHTED_DIRECTED = {
    "planted": lambda: planted_mwc(22, cycle_len=3, p=0.08, directed=True,
                                   weighted=True, cycle_weight=2,
                                   background_weight=15, seed=4),
    "cycle_chords": lambda: cycle_with_chords(22, 4, directed=True,
                                              weighted=True, max_weight=6,
                                              seed=5),
}


@pytest.mark.parametrize("name", UNDIRECTED_TOPOLOGIES)
def test_girth_matrix(name):
    g = UNDIRECTED_TOPOLOGIES[name]()
    true = exact_mwc(g)
    res = girth_2approx(g, seed=7)
    assert true <= res.value <= (2 - 1 / true) * true + 1e-9, name


@pytest.mark.parametrize("name", DIRECTED_TOPOLOGIES)
def test_directed_2approx_matrix(name):
    g = DIRECTED_TOPOLOGIES[name]()
    true = exact_mwc(g)
    res = directed_mwc_2approx(g, seed=7)
    if true == INF:
        assert res.value == INF
    else:
        assert true <= res.value <= 2 * true, name


@pytest.mark.parametrize("name", WEIGHTED_UNDIRECTED)
def test_undirected_weighted_matrix(name):
    g = WEIGHTED_UNDIRECTED[name]()
    true = exact_mwc(g)
    res = undirected_weighted_mwc_approx(g, eps=0.5, seed=7)
    assert true - 1e-9 <= res.value <= 2.5 * true + 1e-9, name


@pytest.mark.parametrize("name", WEIGHTED_DIRECTED)
def test_directed_weighted_matrix(name):
    g = WEIGHTED_DIRECTED[name]()
    true = exact_mwc(g)
    res = directed_weighted_mwc_approx(g, eps=0.5, seed=7)
    assert true - 1e-9 <= res.value <= 2.5 * true + 1e-9, name


@pytest.mark.parametrize("name", list(UNDIRECTED_TOPOLOGIES) )
def test_exact_matrix_undirected(name):
    g = UNDIRECTED_TOPOLOGIES[name]()
    assert exact_mwc_congest(g, seed=7).value == exact_mwc(g), name


@pytest.mark.parametrize("name", list(DIRECTED_TOPOLOGIES))
def test_exact_matrix_directed(name):
    g = DIRECTED_TOPOLOGIES[name]()
    assert exact_mwc_congest(g, seed=7).value == exact_mwc(g), name
