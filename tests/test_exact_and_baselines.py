"""Tests for the exact CONGEST MWC algorithms and prior-work baselines."""

import pytest

from repro.core.baselines import exact_girth_congest, girth_prt
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.girth import girth_2approx
from repro.graphs import Graph, cycle_graph, cycle_with_chords, erdos_renyi
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_girth, exact_mwc


class TestExactMwcCongest:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [False, True])
    def test_unweighted_matches_sequential(self, seed, directed):
        g = erdos_renyi(28, 0.1, directed=directed, seed=seed)
        res = exact_mwc_congest(g, seed=seed)
        assert res.value == exact_mwc(g)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [False, True])
    def test_weighted_matches_sequential(self, seed, directed):
        g = erdos_renyi(22, 0.12, directed=directed, weighted=True,
                        max_weight=9, seed=seed + 30)
        res = exact_mwc_congest(g, seed=seed)
        assert res.value == exact_mwc(g)

    def test_zero_weight_edges_supported(self):
        g = Graph(4, directed=True, weighted=True)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 0)
        g.add_edge(2, 0, 1)
        g.add_edge(2, 3, 5)
        res = exact_mwc_congest(g, seed=0)
        assert res.value == 1

    def test_acyclic(self):
        g = Graph(5, directed=True)
        for i in range(4):
            g.add_edge(i, i + 1)
        assert exact_mwc_congest(g, seed=0).value == INF

    def test_rounds_linear_unweighted(self):
        g = cycle_graph(60, directed=True)
        res = exact_mwc_congest(g, seed=0)
        # n-source pipelined BFS: O(n + ecc) with a small constant.
        assert res.rounds <= 4 * g.n

    @pytest.mark.parametrize("seed", range(3))
    def test_undirected_weighted_ties(self, seed):
        # Uniform weights create many shortest-path ties; exactness must
        # survive tie-breaking in the SPT-edge exclusion.
        g = erdos_renyi(20, 0.2, weighted=True, max_weight=2, seed=seed + 60)
        res = exact_mwc_congest(g, seed=seed)
        assert res.value == exact_mwc(g)


class TestExactGirthBaseline:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_sequential(self, seed):
        g = erdos_renyi(30, 0.09, seed=seed)
        res = exact_girth_congest(g, seed=seed)
        assert res.value == exact_girth(g)

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            exact_girth_congest(cycle_graph(4, directed=True))


class TestPrtBaseline:
    @pytest.mark.parametrize("seed", range(4))
    def test_guarantee(self, seed):
        g = erdos_renyi(36, 0.08, seed=seed)
        true = exact_girth(g)
        res = girth_prt(g, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true <= res.value <= (2 - 1 / true) * true + 1e-9

    def test_large_girth_cycle(self):
        g = cycle_graph(48)
        res = girth_prt(g, seed=1)
        assert res.value == 48

    def test_doubling_recorded(self):
        g = cycle_graph(32)
        res = girth_prt(g, seed=0)
        assert len(res.details["guesses"]) >= 2

    def test_ours_beats_prt_on_large_girth(self):
        """The paper's improvement: sqrt(n) + D vs sqrt(n g) + D."""
        g = cycle_graph(128)  # girth = n: worst case for PRT
        ours = girth_2approx(g, seed=0)
        prt = girth_prt(g, seed=0)
        assert ours.value == 128 and prt.value == 128
        assert ours.rounds < prt.rounds

    def test_small_girth_prt_terminates_quickly(self):
        g = cycle_with_chords(40, 20, seed=2)
        res = girth_prt(g, seed=0)
        true = exact_girth(g)
        assert true <= res.value <= 2 * true
        assert len(res.details["guesses"]) <= 4
