"""Parity and fallback tests for the vectorized multi-wave kernel engine.

The contract under test (repro.congest.kernels): for any workload the
kernel accepts, the ported primitives must return dist/parent tables that
match the scalar path bit for bit — same values, same dict *insertion
order* (downstream phases iterate these dicts) — while rounds, messages,
words, NetworkStats, and phase buckets move identically. And the engine
must silently fall back to the scalar path whenever the batched exchange
is unsafe (fault plans, trace recorders, ``REPRO_BATCH=0``) or the
workload does not fit the dense representation (duplicate sources).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork, FaultPlan, FaultyNetwork
from repro.congest.batch import batching
from repro.congest.faults import LinkOutage
from repro.congest.kernels import (
    engaged_runs,
    kernel_path,
    kernels,
    kernels_enabled,
    run_wave_kernel,
)
from repro.congest.primitives.multi_bfs import multi_source_bfs
from repro.congest.primitives.waves import multi_source_wave
from repro.congest.trace import TraceRecorder
from repro.core.exact_mwc import apsp_weighted_on
from repro.graphs import cycle_with_chords
from repro.obs import observing
from tests.strategies import connected_graphs

pytestmark = pytest.mark.fast


def tables_snapshot(tables):
    """Dist/parent tables as ordered item lists: values AND insertion order."""
    known, parent = tables
    return ([list(d.items()) for d in known],
            None if parent is None else [list(d.items()) for d in parent])


def net_snapshot(net):
    s = net.stats
    return (net.rounds, s.steps, s.messages, s.words, s.local_messages,
            s.max_link_load, dict(s.link_load_histogram))


def phase_buckets(net):
    """Phase report minus the wall-clock field (the only nondeterminism)."""
    return {name: {k: v for k, v in bucket.items() if k != "seconds"}
            for name, bucket in net.phase_report().items()}


def run_both(g, fn):
    """Run ``fn(net)`` with the kernel on and off; return both observations.

    Both runs happen under metrics so phase buckets are compared too.
    """
    out = []
    for kernel_on in (False, True):
        with batching(True), kernels(kernel_on), observing():
            net = CongestNetwork(g, seed=0)
            before = engaged_runs()
            tables = fn(net)
            out.append((tables_snapshot(tables), net_snapshot(net),
                        phase_buckets(net), engaged_runs() - before))
    return out


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_multi_bfs_kernel_parity(data):
    """Property: hop-limited multi-source BFS is bit-identical under the
    kernel, on random directed graphs, source sets, limits, and directions."""
    g = data.draw(connected_graphs(min_n=4, max_n=16, directed=True))
    k = data.draw(st.integers(min_value=1, max_value=min(6, g.n)))
    sources = data.draw(st.lists(
        st.integers(min_value=0, max_value=g.n - 1),
        min_size=k, max_size=k, unique=True))
    h = data.draw(st.one_of(st.none(), st.integers(min_value=0, max_value=5)))
    reverse = data.draw(st.booleans())
    scalar, kernel = run_both(
        g, lambda net: multi_source_bfs(net, sources, h=h, reverse=reverse,
                                        record_parents=True))
    assert kernel[0] == scalar[0]   # dist/parent values + insertion order
    assert kernel[1] == scalar[1]   # rounds and every NetworkStats field
    assert kernel[2] == scalar[2]   # phase buckets
    assert scalar[3] == 0 and kernel[3] == 1


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_wave_kernel_parity(data):
    """Property: weight-limited waves are bit-identical under the kernel."""
    g = data.draw(connected_graphs(min_n=4, max_n=14, weighted=True,
                                   max_weight=5))
    k = data.draw(st.integers(min_value=1, max_value=min(5, g.n)))
    sources = data.draw(st.lists(
        st.integers(min_value=0, max_value=g.n - 1),
        min_size=k, max_size=k, unique=True))
    budget = data.draw(st.integers(min_value=1, max_value=3 * g.n))
    scalar, kernel = run_both(
        g, lambda net: multi_source_wave(net, sources, budget,
                                         record_parents=True))
    assert kernel[0] == scalar[0]
    assert kernel[1] == scalar[1]
    assert kernel[2] == scalar[2]
    assert scalar[3] == 0 and kernel[3] == 1


@settings(max_examples=20, deadline=None)
@given(connected_graphs(min_n=4, max_n=12, weighted=True, max_weight=6))
def test_apsp_weighted_kernel_parity(g):
    """Property: the n-source weighted APSP driver is bit-identical."""
    scalar, kernel = run_both(g, apsp_weighted_on)
    assert kernel[0] == scalar[0]
    assert kernel[1] == scalar[1]
    assert kernel[2] == scalar[2]
    assert scalar[3] == 0 and kernel[3] == 1


# ---------------------------------------------------------------------------
# Fallback: unsafe networks silently take the scalar path, same results.
# ---------------------------------------------------------------------------

def _reference(g, sources):
    with batching(True), kernels(False):
        net = CongestNetwork(g, seed=0)
        tables = multi_source_bfs(net, sources, record_parents=True)
        return tables_snapshot(tables), net_snapshot(net)


def test_faulty_network_falls_back_silently():
    """A non-zero fault plan (even one that never fires) disables the
    kernel; results are unchanged and no engagement is recorded."""
    g = cycle_with_chords(12, 3, seed=1)
    sources = [0, 4, 7]
    ref = _reference(g, sources)
    plan = FaultPlan(link_outages=(LinkOutage(0, 1, start=10**9),))
    with batching(True), kernels(True):
        net = FaultyNetwork(g, plan=plan, seed=0)
        assert not kernel_path(net)
        before = engaged_runs()
        tables = multi_source_bfs(net, sources, record_parents=True)
        assert engaged_runs() == before
    assert (tables_snapshot(tables), net_snapshot(net)) == ref


def test_trace_recorder_falls_back_silently():
    """A TraceRecorder monkey-patches ``exchange``; the kernel (and the
    batched path under it) must defer to the hook."""
    g = cycle_with_chords(12, 3, seed=1)
    sources = [0, 4, 7]
    ref = _reference(g, sources)
    with batching(True), kernels(True):
        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net) as trace:
            assert not kernel_path(net)
            before = engaged_runs()
            tables = multi_source_bfs(net, sources, record_parents=True)
            assert engaged_runs() == before
    assert (tables_snapshot(tables), net_snapshot(net)) == ref
    assert len(trace.events) > 0


def test_zero_plan_faulty_network_engages():
    """A zero plan is fully transparent, so the kernel may (and does) run."""
    g = cycle_with_chords(12, 3, seed=1)
    with batching(True), kernels(True):
        net = FaultyNetwork(g, plan=FaultPlan(), seed=0)
        assert kernel_path(net)
        before = engaged_runs()
        tables = multi_source_bfs(net, [0, 4, 7], record_parents=True)
        assert engaged_runs() == before + 1
    assert (tables_snapshot(tables),
            net_snapshot(net)) == _reference(g, [0, 4, 7])


def test_duplicate_sources_guard_falls_back():
    """Duplicate sources re-emit in the scalar path; the dense kernel
    cannot represent that and must decline, with identical results."""
    g = cycle_with_chords(12, 3, seed=1)
    sources = [0, 4, 4]
    with batching(True), kernels(True):
        net = CongestNetwork(g, seed=0)
        assert run_wave_kernel(net, sources, cap=100, unit_weight=True,
                               timeout="unused") is None
        before = engaged_runs()
        tables = multi_source_bfs(net, sources, record_parents=True)
        assert engaged_runs() == before
    with batching(True), kernels(False):
        ref_net = CongestNetwork(g, seed=0)
        ref = multi_source_bfs(ref_net, sources, record_parents=True)
    assert tables_snapshot(tables) == tables_snapshot(ref)
    assert net_snapshot(net) == net_snapshot(ref_net)


# ---------------------------------------------------------------------------
# Gates: environment variable, context manager, batching dependency.
# ---------------------------------------------------------------------------

def test_env_var_gate(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "0")
    assert not kernels_enabled()
    monkeypatch.setenv("REPRO_KERNELS", "1")
    assert kernels_enabled()
    monkeypatch.delenv("REPRO_KERNELS")
    assert kernels_enabled()  # default on


def test_context_manager_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "0")
    with kernels(True):
        assert kernels_enabled()
        with kernels(False):
            assert not kernels_enabled()
        assert kernels_enabled()
    assert not kernels_enabled()


def test_kernel_path_requires_batching():
    g = cycle_with_chords(8, 2, seed=0)
    net = CongestNetwork(g, seed=0)
    with batching(False), kernels(True):
        assert not kernel_path(net)
    with batching(True), kernels(False):
        assert not kernel_path(net)
    with batching(True), kernels(True):
        assert kernel_path(net)


def test_kernels_off_still_correct_end_to_end():
    """REPRO_KERNELS=0 semantics: the engine off is pure fallback, not a
    different algorithm — spot-check one workload end to end."""
    g = cycle_with_chords(16, 4, seed=2)
    sources = [0, 5, 9]
    outs = []
    for on in (False, True):
        with batching(True), kernels(on):
            net = CongestNetwork(g, seed=0)
            outs.append((tables_snapshot(
                multi_source_bfs(net, sources, record_parents=True)),
                net_snapshot(net)))
    assert outs[0] == outs[1]
