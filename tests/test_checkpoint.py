"""Tests for round-granular checkpoint/resume (repro.congest.checkpoint).

The tentpole acceptance criterion: a simulation killed at an arbitrary
round and resumed from its latest checkpoint produces a report
byte-identical to the uninterrupted run — same value, rounds, messages,
words, and phase buckets — on all three engines, with the runtime
sanitizer armed.
"""

import pickle

import pytest

from repro import cache
from repro.congest import CongestNetwork, FaultPlan, FaultyNetwork, RoundBudgetExceeded
from repro.congest.batch import batching
from repro.congest.checkpoint import (
    CHECKPOINT_KIND,
    SCHEMA,
    CheckpointError,
    CheckpointManager,
    Snapshot,
    capture,
    network_fingerprint,
    restore,
    run_key_digest,
)
from repro.congest.kernels import kernels
from repro.congest.sanitize import sanitizing
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.graphs import erdos_renyi
from repro.graphs.generators import random_weighted


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Checkpoint blobs land in a per-test cache root, never the repo's."""
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    yield


def phases_modulo_seconds(details):
    """Phase buckets with the wall-clock field scrubbed (non-deterministic)."""
    phases = details.get("phases")
    if phases is None:
        return None
    return {name: {k: v for k, v in bucket.items() if k != "seconds"}
            for name, bucket in phases.items()}


def kill_and_resume(g, seed, kill_at, run_key, interval=4):
    """Run under a round budget until it dies, then resume to completion."""
    ck = CheckpointManager(run_key, interval=interval)
    ck.clear()
    net = CongestNetwork(g, seed=seed, max_rounds=kill_at)
    with pytest.raises(RoundBudgetExceeded):
        exact_mwc_congest_on(net, checkpoint=ck)
    ck2 = CheckpointManager(run_key, interval=interval)
    net2 = CongestNetwork(g, seed=seed)
    return exact_mwc_congest_on(net2, checkpoint=ck2)


class TestKillResumeBitIdentity:
    """Killed-and-resumed == uninterrupted, bit for bit."""

    @pytest.mark.parametrize("name,graph", [
        ("undirected-weighted", random_weighted(36, 0.15, 9, seed=5)),
        ("directed-weighted", erdos_renyi(30, 0.12, directed=True,
                                          weighted=True, max_weight=7, seed=2)),
        ("undirected-unweighted", erdos_renyi(34, 0.12, seed=4)),
    ])
    @pytest.mark.parametrize("frac", [4, 2])
    def test_graph_classes(self, name, graph, frac):
        with sanitizing(True):
            base = exact_mwc_congest_on(CongestNetwork(graph, seed=11))
            kill_at = max(1, base.rounds // frac)
            res = kill_and_resume(graph, 11, kill_at, f"kr-{name}-{frac}")
        assert res.value == base.value
        assert res.rounds == base.rounds
        assert res.stats == base.stats
        assert res.details["checkpoint"]["resumed_stage"] is not None
        assert (phases_modulo_seconds(res.details)
                == phases_modulo_seconds(base.details))

    @pytest.mark.parametrize("engine,batch,kernel", [
        ("dict", False, False),
        ("batch", True, False),
        ("kernel", True, True),
    ])
    def test_all_three_engines(self, engine, batch, kernel):
        g = random_weighted(32, 0.15, 9, seed=7)
        with sanitizing(True), batching(batch), kernels(kernel):
            base = exact_mwc_congest_on(CongestNetwork(g, seed=3))
            kill_at = max(1, base.rounds // 3)
            res = kill_and_resume(g, 3, kill_at, f"kr-eng-{engine}")
        assert (res.value, res.rounds, res.stats) == (
            base.value, base.rounds, base.stats)
        assert (phases_modulo_seconds(res.details)
                == phases_modulo_seconds(base.details))

    def test_resume_not_limited_by_killed_runs_budget(self):
        # max_rounds is a policy of the current run, not accounting state:
        # the resumed (unbounded) network must not inherit the old budget.
        g = random_weighted(30, 0.16, 8, seed=1)
        base = exact_mwc_congest_on(CongestNetwork(g, seed=0))
        ck = CheckpointManager("kr-budget", interval=4)
        ck.clear()
        with pytest.raises(RoundBudgetExceeded):
            exact_mwc_congest_on(
                CongestNetwork(g, seed=0, max_rounds=max(1, base.rounds // 2)),
                checkpoint=ck)
        net2 = CongestNetwork(g, seed=0)
        res = exact_mwc_congest_on(
            net2, checkpoint=CheckpointManager("kr-budget", interval=4))
        assert net2.max_rounds is None
        assert res.rounds == base.rounds

    def test_fresh_run_with_manager_matches_plain(self):
        g = random_weighted(28, 0.18, 6, seed=9)
        plain = exact_mwc_congest_on(CongestNetwork(g, seed=5))
        ck = CheckpointManager("fresh", interval=8)
        ck.clear()
        res = exact_mwc_congest_on(CongestNetwork(g, seed=5), checkpoint=ck)
        assert (res.value, res.rounds, res.stats) == (
            plain.value, plain.rounds, plain.stats)
        assert res.details["checkpoint"]["resumed_stage"] is None
        assert res.details["checkpoint"]["saved"] >= 1
        # complete() dropped the blob: nothing left to resume.
        assert CheckpointManager("fresh").load() is None


class TestCompatibilityGuards:
    def test_fingerprint_mismatch_on_different_graph(self):
        g1 = erdos_renyi(20, 0.2, seed=1)
        g2 = erdos_renyi(20, 0.2, seed=2)
        net1 = CongestNetwork(g1, seed=0)
        snapshot = capture(net1, "post-apsp")
        with pytest.raises(CheckpointError, match="different run"):
            restore(CongestNetwork(g2, seed=0), snapshot)

    def test_fingerprint_mismatch_on_different_seed(self):
        g = erdos_renyi(20, 0.2, seed=1)
        snapshot = capture(CongestNetwork(g, seed=0), "post-apsp")
        with pytest.raises(CheckpointError, match="seed"):
            restore(CongestNetwork(g, seed=1), snapshot)

    def test_fingerprint_mismatch_on_network_class(self):
        g = erdos_renyi(20, 0.2, seed=1)
        snapshot = capture(FaultyNetwork(g, FaultPlan(), seed=0), "post-apsp")
        with pytest.raises(CheckpointError, match="class"):
            restore(CongestNetwork(g, seed=0), snapshot)

    def test_schema_mismatch_rejected_and_healed(self):
        g = erdos_renyi(12, 0.3, seed=1)
        net = CongestNetwork(g, seed=0)
        snapshot = capture(net, "post-apsp")
        snapshot.schema = SCHEMA + 1
        with pytest.raises(CheckpointError, match="schema"):
            restore(net, snapshot)
        # A stale-schema blob on disk reads as a miss and is dropped.
        ck = CheckpointManager("stale")
        cache.store_blob(CHECKPOINT_KIND, run_key_digest("stale"),
                         pickle.dumps(snapshot))
        assert ck.load() is None
        assert cache.load_blob(CHECKPOINT_KIND, run_key_digest("stale")) is None

    def test_corrupted_blob_reads_as_miss(self):
        ck = CheckpointManager("garbled")
        cache.store_blob(CHECKPOINT_KIND, run_key_digest("garbled"),
                         b"\x80\x04 this is not a pickle")
        assert ck.load() is None

    def test_engine_change_between_checkpoint_and_resume_raises(self):
        # Checkpoint taken by the kernel engine; resuming under the dict
        # engine must refuse rather than silently mix message schedules.
        g = erdos_renyi(34, 0.12, seed=4)
        with kernels(True):
            base = exact_mwc_congest_on(CongestNetwork(g, seed=11))
            ck = CheckpointManager("eng-switch", interval=2)
            ck.clear()
            with pytest.raises(RoundBudgetExceeded):
                exact_mwc_congest_on(
                    CongestNetwork(g, seed=11, max_rounds=max(1, base.rounds // 4)),
                    checkpoint=ck)
        assert ck.load().stage == "wave-kernel"
        with batching(False), kernels(False):
            with pytest.raises(CheckpointError, match="stage"):
                exact_mwc_congest_on(
                    CongestNetwork(g, seed=11),
                    checkpoint=CheckpointManager("eng-switch"))


class TestSnapshotRoundTrip:
    def test_restore_is_exact_for_counters_state_and_rng(self):
        g = random_weighted(16, 0.3, 5, seed=2)
        net = CongestNetwork(g, seed=7)
        for _ in range(5):
            net.exchange({0: {u: [("probe", net.rng.integers(100))]
                              for u in net.comm_neighbors_sorted(0)}})
        net.state[3]["mark"] = {"deep": [1, 2, 3]}
        snapshot = capture(net, "post-apsp", payload={"loop": 5})
        twin = CongestNetwork(g, seed=7)
        restore(twin, snapshot)
        assert twin.rounds == net.rounds
        assert twin.stats == net.stats
        assert twin.state == net.state
        assert twin.rng.bit_generator.state == net.rng.bit_generator.state
        # Deep copy: mutating the twin must not reach back into the source.
        twin.state[3]["mark"]["deep"].append(4)
        assert net.state[3]["mark"]["deep"] == [1, 2, 3]

    def test_faulty_network_restore_replays_identical_faults(self):
        g = erdos_renyi(14, 0.3, seed=3)
        plan = FaultPlan(drop_rate=0.3, duplicate_rate=0.1)
        source = FaultyNetwork(g, plan, seed=9)
        for _ in range(10):
            source.exchange({0: {1: [("x", 1)]}})
        snapshot = capture(source, "mid")
        twin = FaultyNetwork(g, plan, seed=9)
        restore(twin, snapshot)
        assert twin.fault_stats == source.fault_stats
        for net in (source, twin):
            for _ in range(25):
                net.exchange({0: {1: [("x", 1)]}})
        assert twin.fault_stats == source.fault_stats
        assert twin.rounds == source.rounds
        assert twin.stats == source.stats

    def test_fingerprint_covers_bandwidth(self):
        g = erdos_renyi(10, 0.4, seed=0)
        a = network_fingerprint(CongestNetwork(g, seed=0))
        b = network_fingerprint(CongestNetwork(g, seed=0, bandwidth=4))
        assert a != b


class TestManagerPolicy:
    def test_interval_zero_disables_cadence_but_not_save_now(self):
        g = erdos_renyi(10, 0.4, seed=0)
        net = CongestNetwork(g, seed=0)
        ck = CheckpointManager("manual", interval=0)
        ck.clear()
        assert not ck.due(net)
        assert not ck.maybe(net, "s", lambda: None)
        ck.save_now(net, "s")
        assert ck.saved == 1
        assert ck.load().stage == "s"
        ck.clear()

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckpointManager("bad", interval=-1)

    def test_maybe_respects_cadence(self):
        g = erdos_renyi(10, 0.4, seed=0)
        net = CongestNetwork(g, seed=0)
        ck = CheckpointManager("cadence", interval=3)
        ck.clear()
        saves = 0
        nbr = net.comm_neighbors_sorted(0)[0]
        for _ in range(12):
            net.exchange({0: {nbr: [("t", 1)]}})
            if ck.maybe(net, "s", lambda: None):
                saves += 1
        # First due() call arms the schedule; every 3 rounds after saves.
        assert saves == 3
        assert ck.load().seq == ck.seq
        ck.clear()

    def test_take_resume_is_one_shot(self):
        g = erdos_renyi(10, 0.4, seed=0)
        net = CongestNetwork(g, seed=0)
        ck = CheckpointManager("oneshot", interval=0)
        ck.clear()
        ck.save_now(net, "s", payload={"i": 2})
        ck2 = CheckpointManager("oneshot")
        twin = CongestNetwork(g, seed=0)
        assert ck2.resume(twin) == "s"
        assert ck2.pending_stage == "s"
        assert ck2.take_resume("s") == {"i": 2}
        assert ck2.pending_stage is None
        assert ck2.take_resume("s") is None
        ck.clear()

    def test_keep_on_success(self):
        g = erdos_renyi(10, 0.4, seed=0)
        net = CongestNetwork(g, seed=0)
        ck = CheckpointManager("keeper", interval=0, keep_on_success=True)
        ck.clear()
        ck.save_now(net, "s")
        ck.complete()
        assert ck.load() is not None
        ck.clear()

    def test_snapshot_is_a_plain_picklable_dataclass(self):
        g = erdos_renyi(10, 0.4, seed=0)
        snapshot = capture(CongestNetwork(g, seed=0), "s")
        clone = pickle.loads(pickle.dumps(snapshot))
        assert isinstance(clone, Snapshot)
        assert clone.fingerprint == snapshot.fingerprint
