"""Tests for distance summaries and congestion analysis."""

import pytest

from repro.analysis.congestion import load_histogram_ascii, summarize
from repro.congest import CongestNetwork
from repro.congest.primitives import multi_source_bfs
from repro.core.distances import distance_summary
from repro.graphs import Graph, cycle_graph, erdos_renyi, grid_graph
from repro.graphs.graph import GraphError, INF
from repro.sequential import distances


def sequential_summary(g):
    ecc = []
    for v in range(g.n):
        d = distances(g, v)
        ecc.append(max(d))
    finite = [e for e in ecc]
    return ecc, min(finite), max(finite)


class TestDistanceSummary:
    @pytest.mark.parametrize("seed", range(3))
    def test_unweighted_exact(self, seed):
        g = erdos_renyi(20, 0.15, seed=seed)
        res = distance_summary(g, seed=seed)
        ecc, radius, diameter = sequential_summary(g)
        assert res.eccentricity == ecc
        assert res.radius == radius and res.diameter == diameter

    def test_directed_unreachable_gives_infinite(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        res = distance_summary(g, seed=0)
        assert res.eccentricity[0] == 2
        assert res.eccentricity[2] == INF
        assert res.diameter == INF
        assert res.radius == 2

    @pytest.mark.parametrize("seed", range(2))
    def test_weighted_exact(self, seed):
        g = erdos_renyi(16, 0.2, weighted=True, max_weight=7, seed=seed)
        res = distance_summary(g, seed=seed)
        ecc, radius, diameter = sequential_summary(g)
        assert res.eccentricity == [float(e) for e in ecc]
        assert res.details["mode"] == "exact-weighted"

    def test_weighted_approx_bounds(self):
        g = erdos_renyi(16, 0.2, weighted=True, max_weight=7, seed=5)
        eps = 0.5
        res = distance_summary(g, seed=0, approx_eps=eps)
        ecc, radius, diameter = sequential_summary(g)
        assert radius <= res.radius <= (1 + eps) * radius + 1e-9
        assert diameter <= res.diameter <= (1 + eps) * diameter + 1e-9

    def test_cycle_known_values(self):
        g = cycle_graph(10)
        res = distance_summary(g, seed=0)
        assert res.radius == 5 and res.diameter == 5

    def test_approx_validation(self):
        g = erdos_renyi(10, 0.3, weighted=True, max_weight=3, seed=1)
        with pytest.raises(GraphError):
            distance_summary(g, approx_eps=0)


class TestCongestionAnalysis:
    def test_summarize_empty(self):
        net = CongestNetwork(cycle_graph(4))
        s = summarize(net.stats)
        assert s.steps == 0 and s.max_load == 0

    def test_summarize_counts_overloads(self):
        net = CongestNetwork(cycle_graph(4), bandwidth=1)
        net.exchange({0: {1: [("a", 1)]}})
        net.exchange({0: {1: [(i, 1) for i in range(5)]}})
        s = summarize(net.stats, bandwidth=1)
        assert s.steps == 2
        assert s.max_load == 5
        assert s.overloaded_steps == 1
        assert s.overload_fraction == 0.5

    def test_histogram_renders(self):
        g = grid_graph(4, 4)
        net = CongestNetwork(g)
        multi_source_bfs(net, [0, 5, 10, 15])
        text = load_histogram_ascii(net.stats)
        assert "load" in text and "#" in text

    def test_histogram_empty(self):
        net = CongestNetwork(cycle_graph(4))
        assert "no steps" in load_histogram_ascii(net.stats)

    def test_str_summary(self):
        net = CongestNetwork(cycle_graph(4))
        net.exchange({0: {1: [("a", 1)]}})
        assert "steps=1" in str(summarize(net.stats))
