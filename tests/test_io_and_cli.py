"""Tests for edge-list I/O and the CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError
from repro.graphs.io import load_edgelist, save_edgelist


class TestEdgeListIO:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_roundtrip(self, tmp_path, directed, weighted):
        g = erdos_renyi(16, 0.2, directed=directed, weighted=weighted,
                        max_weight=9, seed=1)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert load_edgelist(path) == g

    def test_roundtrip_via_file_objects(self):
        g = cycle_graph(5)
        buf = io.StringIO()
        save_edgelist(g, buf)
        buf.seek(0)
        assert load_edgelist(buf) == g

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            load_edgelist(io.StringIO("0 1\n"))

    def test_malformed_header_rejected(self):
        with pytest.raises(GraphError):
            load_edgelist(io.StringIO("%repro n=2 directed\n"))

    def test_missing_field_rejected(self):
        with pytest.raises(GraphError):
            load_edgelist(io.StringIO("%repro n=2 directed=0\n"))

    def test_comments_and_blank_lines_skipped(self):
        text = "%repro n=3 directed=0 weighted=0\n# c\n\n0 1\n% c\n1 2\n"
        g = load_edgelist(io.StringIO(text))
        assert g.m == 2

    def test_bad_edge_line_rejected(self):
        text = "%repro n=3 directed=0 weighted=0\n0 1 2 3\n"
        with pytest.raises(GraphError):
            load_edgelist(io.StringIO(text))

    def test_weight_on_unweighted_rejected(self):
        text = "%repro n=3 directed=0 weighted=0\n0 1 5\n"
        with pytest.raises(GraphError):
            load_edgelist(io.StringIO(text))


@pytest.fixture
def graph_file(tmp_path):
    g = erdos_renyi(24, 0.12, directed=True, seed=2)
    path = tmp_path / "g.txt"
    save_edgelist(g, path)
    return str(path)


class TestCli:
    def test_mwc_exact_with_witness(self, graph_file, capsys):
        assert main(["mwc", graph_file, "--algorithm", "exact",
                     "--witness"]) == 0
        out = capsys.readouterr().out
        assert "mwc value" in out and "congest rounds" in out

    def test_mwc_auto_directed(self, graph_file, capsys):
        assert main(["mwc", graph_file]) == 0
        assert "algorithm: 2approx" in capsys.readouterr().out

    def test_mwc_auto_girth(self, tmp_path, capsys):
        path = tmp_path / "u.txt"
        save_edgelist(cycle_graph(12), path)
        assert main(["mwc", str(path)]) == 0
        out = capsys.readouterr().out
        assert "algorithm: girth-approx" in out
        assert "mwc value: 12" in out

    def test_mwc_weighted_auto(self, tmp_path, capsys):
        g = erdos_renyi(16, 0.2, weighted=True, max_weight=5, seed=4)
        path = tmp_path / "w.txt"
        save_edgelist(g, path)
        assert main(["mwc", str(path), "--eps", "0.5"]) == 0
        assert "weighted-approx" in capsys.readouterr().out

    def test_apsp(self, graph_file, capsys):
        assert main(["apsp", graph_file]) == 0
        assert "reachable pairs" in capsys.readouterr().out

    def test_max_rounds_budget_aborts_cleanly(self, graph_file, capsys):
        assert main(["mwc", graph_file, "--algorithm", "exact",
                     "--max-rounds", "3"]) == 3
        err = capsys.readouterr().err
        assert "round budget" in err and "budget is 3" in err

    def test_max_rounds_budget_loose_enough_passes(self, graph_file, capsys):
        assert main(["mwc", graph_file, "--algorithm", "exact",
                     "--max-rounds", "100000"]) == 0
        assert "mwc value" in capsys.readouterr().out

    def test_max_rounds_applies_to_apsp(self, graph_file, capsys):
        assert main(["apsp", graph_file, "--max-rounds", "2"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_generate_then_consume(self, tmp_path, capsys):
        out = tmp_path / "gen.txt"
        assert main(["generate", str(out), "--type", "cycle", "-n", "10",
                     "--directed"]) == 0
        g = load_edgelist(out)
        assert g.n == 10 and g.directed

    def test_generate_planted(self, tmp_path):
        out = tmp_path / "p.txt"
        assert main(["generate", str(out), "--type", "planted", "-n", "30",
                     "--directed", "--cycle-len", "5"]) == 0
        assert load_edgelist(out).n == 30

    def test_table_renders(self, capsys, tmp_path):
        # Point at an empty results dir: all rows shown unmeasured.
        assert main(["table", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "T1-R2-UB" in out and "O~(n^{4/5} + D)" in out

    def test_table_with_results(self, capsys, tmp_path):
        payload = {"exp_id": "T1-R6-UB", "rows": [{"value": 3}],
                   "fit": {"exponent": 0.51, "constant": 1, "r_squared": 0.99}}
        with open(tmp_path / "T1-R6-UB.json", "w") as f:
            json.dump(payload, f)
        assert main(["table", "--results", str(tmp_path)]) == 0
        assert "n^0.51" in capsys.readouterr().out

    @pytest.mark.parametrize("family", ["directed", "undirected-weighted",
                                        "alpha-directed", "alpha-undirected",
                                        "girth"])
    def test_verify_lb_families(self, family, capsys):
        assert main(["verify-lb", "--family", family, "-m", "4"]) == 0
        assert "gap property verified" in capsys.readouterr().out

    def test_verify_lb_intersecting(self, capsys):
        assert main(["verify-lb", "--family", "directed", "-m", "4",
                     "--intersecting"]) == 0
        out = capsys.readouterr().out
        assert "mwc: 4" in out


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       directed=st.booleans(), weighted=st.booleans())
def test_property_io_roundtrip(seed, directed, weighted):
    g = erdos_renyi(12, 0.25, directed=directed, weighted=weighted,
                    max_weight=20, seed=seed)
    buf = io.StringIO()
    save_edgelist(g, buf)
    buf.seek(0)
    assert load_edgelist(buf) == g


class TestReportGeneration:
    def _payload(self):
        return {
            "exp_id": "T1-R6-UB",
            "rows": [
                {"n": 64, "rounds": 89, "value": 4.0, "true_value": 4.0,
                 "extra": {"sigma": 12}},
                {"n": 128, "rounds": 122, "value": 5.0, "true_value": 5.0,
                 "extra": {}},
            ],
            "fit": {"exponent": 0.496, "constant": 1.0, "r_squared": 0.987},
            "corrected_fit": {"exponent": 0.301, "constant": 1.0,
                              "r_squared": 0.954, "polylog_correction": 1.0},
            "notes": "demo",
        }

    def test_render_report(self, tmp_path):
        from repro.analysis.report import render_report
        with open(tmp_path / "T1-R6-UB.json", "w") as f:
            json.dump(self._payload(), f)
        text = render_report(str(tmp_path))
        assert "T1-R6-UB" in text
        assert "0.496" in text and "0.301" in text
        assert "| 64 | 89 | 1.000 | sigma=12 |" in text
        assert "note: demo" in text

    def test_empty_directory(self, tmp_path):
        from repro.analysis.report import render_report
        assert "No persisted results" in render_report(str(tmp_path))

    def test_cli_report_to_file(self, tmp_path):
        with open(tmp_path / "T1-R6-UB.json", "w") as f:
            json.dump(self._payload(), f)
        out = tmp_path / "report.md"
        assert main(["report", "--results", str(tmp_path),
                     "--out", str(out)]) == 0
        assert "fitted exponent" in out.read_text()

    def test_cli_report_stdout(self, tmp_path, capsys):
        assert main(["report", "--results", str(tmp_path)]) == 0
        assert "auto-generated" in capsys.readouterr().out
