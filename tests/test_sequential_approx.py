"""Tests for sequential approximation references + distributed cross-checks."""

import pytest

from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.girth import girth_2approx
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_girth, exact_mwc
from repro.sequential.approx import (
    itai_rodeh_girth,
    sampled_girth_estimate,
    two_approx_directed_mwc,
)


class TestItaiRodeh:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_roots_exact(self, seed):
        g = erdos_renyi(22, 0.15, seed=seed)
        assert itai_rodeh_girth(g) == exact_girth(g)

    @pytest.mark.parametrize("seed", range(5))
    def test_subset_never_undershoots(self, seed):
        g = erdos_renyi(24, 0.12, seed=seed + 10)
        true = exact_girth(g)
        est = itai_rodeh_girth(g, roots=[0, 5, 9])
        assert est >= true

    def test_root_on_cycle_bound(self):
        g = cycle_graph(15)
        for w in range(15):
            assert itai_rodeh_girth(g, roots=[w]) == 15

    def test_forest(self):
        g = Graph(5)
        for i in range(1, 5):
            g.add_edge(i, (i - 1) // 2)
        assert itai_rodeh_girth(g) == INF

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            itai_rodeh_girth(cycle_graph(4, directed=True))


class TestSampledGirth:
    @pytest.mark.parametrize("seed", range(5))
    def test_within_guarantee(self, seed):
        g = erdos_renyi(26, 0.12, seed=seed)
        true = exact_girth(g)
        est = sampled_girth_estimate(g, seed=seed)
        if true == INF:
            assert est == INF
        else:
            assert true <= est <= (2 - 1 / true) * true + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_agrees_with_distributed(self, seed):
        """Sequential oracle and distributed §4 satisfy the same contract."""
        g = erdos_renyi(28, 0.1, seed=seed + 50)
        true = exact_girth(g)
        seq = sampled_girth_estimate(g, seed=seed)
        dist = girth_2approx(g, seed=seed).value
        for est in (seq, dist):
            if true == INF:
                assert est == INF
            else:
                assert true <= est <= (2 - 1 / true) * true + 1e-9


class TestSequentialDirected2Approx:
    @pytest.mark.parametrize("seed", range(5))
    def test_within_two(self, seed):
        g = erdos_renyi(24, 0.12, directed=True, seed=seed)
        true = exact_mwc(g)
        est = two_approx_directed_mwc(g, seed=seed)
        if true == INF:
            assert est == INF
        else:
            assert true <= est <= 2 * true

    @pytest.mark.parametrize("seed", range(3))
    def test_agrees_with_distributed(self, seed):
        g = erdos_renyi(26, 0.1, directed=True, seed=seed + 70)
        true = exact_mwc(g)
        seq = two_approx_directed_mwc(g, seed=seed)
        dist = directed_mwc_2approx(g, seed=seed).value
        for est in (seq, dist):
            if true == INF:
                assert est == INF
            else:
                assert true <= est <= 2 * true

    def test_rejects_undirected(self):
        with pytest.raises(GraphError):
            two_approx_directed_mwc(cycle_graph(5))
