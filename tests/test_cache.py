"""Tests for the content-addressed ground-truth / graph disk cache."""

import json
import os

import pytest

from repro import cache
from repro.graphs import cycle_graph, erdos_renyi
from repro.graphs.graph import INF, Graph
from repro.sequential import exact_mwc, k_source_distances


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own empty cache directory and fresh counters."""
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    cache.counters["hits"] = cache.counters["misses"] = 0
    cache.counters["quarantined"] = 0
    yield


def test_graph_digest_is_content_addressed():
    a = Graph(4, weighted=True)
    a.add_edge(0, 1, 2)
    a.add_edge(1, 2, 3)
    b = Graph(4, weighted=True)
    b.add_edge(1, 2, 3)  # same edges, different insertion order
    b.add_edge(0, 1, 2)
    assert cache.graph_digest(a) == cache.graph_digest(b)
    c = Graph(4, weighted=True)
    c.add_edge(0, 1, 2)
    c.add_edge(1, 2, 4)  # one weight differs
    assert cache.graph_digest(a) != cache.graph_digest(c)
    # Structure flags are part of the identity, not just the edge list.
    d = Graph(4, directed=True, weighted=True)
    d.add_edge(0, 1, 2)
    d.add_edge(1, 2, 3)
    assert cache.graph_digest(a) != cache.graph_digest(d)


def test_cached_exact_mwc_hits_on_second_call():
    g = cycle_graph(6)
    want = exact_mwc(g)
    assert cache.cached_exact_mwc(g) == want
    assert cache.counters == {"hits": 0, "misses": 1, "quarantined": 0}
    assert cache.cached_exact_mwc(g) == want
    assert cache.counters == {"hits": 1, "misses": 1, "quarantined": 0}


def test_cached_exact_mwc_roundtrips_infinity():
    g = Graph(3)  # acyclic: MWC is +inf, which JSON must survive
    assert cache.cached_exact_mwc(g) == INF
    assert cache.cached_exact_mwc(g) == INF
    assert cache.counters["hits"] == 1


def test_cached_k_source_distances_restores_int_keys():
    g = erdos_renyi(16, 0.3, seed=3)
    sources = [0, 4, 9]
    want = k_source_distances(g, sources)
    first = cache.cached_k_source_distances(g, sources)
    again = cache.cached_k_source_distances(g, sources)
    assert first == want
    assert again == want  # decoded from JSON: keys must be ints again
    assert all(isinstance(s, int) for s in again)
    assert cache.counters["hits"] == 1
    # Different source sets are distinct entries on the same graph.
    other = cache.cached_k_source_distances(g, [1, 2])
    assert set(other) == {1, 2}
    assert cache.counters["misses"] == 2


def test_cached_graph_roundtrip_equality():
    key = "er|12|5|0.3"
    built = []

    def build():
        built.append(True)
        return erdos_renyi(12, 0.3, seed=5, weighted=True, max_weight=9)

    g1 = cache.cached_graph(key, build)
    g2 = cache.cached_graph(key, build)
    assert len(built) == 1  # second call decoded from disk
    assert g2.n == g1.n and g2.directed == g1.directed
    assert g2.weighted == g1.weighted
    assert sorted(g2.edges()) == sorted(g1.edges())
    assert cache.graph_digest(g2) == cache.graph_digest(g1)


def test_disable_env_bypasses_disk(monkeypatch):
    monkeypatch.setenv(cache.CACHE_ENV, "0")
    g = cycle_graph(5)
    assert cache.cached_exact_mwc(g) == exact_mwc(g)
    assert cache.cached_exact_mwc(g) == exact_mwc(g)
    assert cache.counters == {"hits": 0, "misses": 0, "quarantined": 0}
    assert not os.listdir(cache.cache_root())


def test_corrupt_or_mismatched_entry_recomputes():
    g = cycle_graph(7)
    cache.cached_exact_mwc(g)
    path = os.path.join(cache.cache_root(), "mwc",
                        f"{cache.graph_digest(g)}.json")
    with open(path, "w") as f:
        f.write("{not json")
    assert cache.cached_exact_mwc(g) == exact_mwc(g)
    assert cache.counters["misses"] == 2
    # An entry recorded under a different key (digest-scheme change) is
    # also treated as a miss rather than served.
    with open(path, "w") as f:
        json.dump({"schema": 1, "key": "stale", "value": 0}, f)
    assert cache.cached_exact_mwc(g) == exact_mwc(g)
    assert cache.counters["misses"] == 3


def test_info_and_clear():
    cache.cached_exact_mwc(cycle_graph(4))
    cache.cached_exact_girth(erdos_renyi(10, 0.4, seed=1))
    stats = cache.info()
    assert stats["enabled"]
    assert stats["kinds"]["mwc"]["entries"] == 1
    assert stats["kinds"]["girth"]["entries"] == 1
    assert stats["total_bytes"] > 0
    assert cache.clear() == 2
    assert cache.info()["kinds"] == {}


def test_quarantine_self_heal_keeps_post_mortem_copy():
    g = cycle_graph(7)
    cache.cached_exact_mwc(g)
    path = os.path.join(cache.cache_root(), "mwc",
                        f"{cache.graph_digest(g)}.json")
    with open(path, "w") as f:
        f.write("{truncated mid-wri")
    cache.counters["quarantined"] = 0
    assert cache.cached_exact_mwc(g) == exact_mwc(g)
    # The damaged file was set aside, not deleted, and the entry re-stored.
    assert cache.counters["quarantined"] == 1
    with open(path + ".corrupt") as f:
        assert f.read().startswith("{truncated")
    with open(path) as f:
        assert json.load(f)["key"] == cache.graph_digest(g)


class TestBlobs:
    def test_roundtrip_and_drop(self):
        assert cache.load_blob("checkpoint", "k") is None
        path = cache.store_blob("checkpoint", "k", b"\x00\x01binary\xff")
        assert path is not None and path.endswith("k.bin")
        assert cache.load_blob("checkpoint", "k") == b"\x00\x01binary\xff"
        assert cache.drop_blob("checkpoint", "k") is True
        assert cache.drop_blob("checkpoint", "k") is False
        assert cache.load_blob("checkpoint", "k") is None

    def test_store_leaves_no_tmp_files(self):
        cache.store_blob("checkpoint", "k", b"data")
        directory = os.path.join(cache.cache_root(), "checkpoint")
        assert os.listdir(directory) == ["k.bin"]

    def test_overwrite_is_atomic_latest_wins(self):
        cache.store_blob("checkpoint", "k", b"old " * 10000)
        cache.store_blob("checkpoint", "k", b"new")
        assert cache.load_blob("checkpoint", "k") == b"new"

    def test_concurrent_writers_never_leave_torn_blob(self):
        # Racing writers each rename a private pid-unique tmp file;
        # whichever rename lands last must leave one *complete* payload.
        import multiprocessing
        payloads = [bytes([i]) * 4096 for i in range(4)]
        procs = [multiprocessing.Process(target=_race_writer, args=(p,))
                 for p in payloads]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        final = cache.load_blob("checkpoint", "race")
        assert final in payloads
        directory = os.path.join(cache.cache_root(), "checkpoint")
        assert os.listdir(directory) == ["race.bin"]  # no stray tmp files

    def test_failed_write_keeps_previous_blob(self):
        cache.store_blob("checkpoint", "k", b"good")

        def broken_replace(src, dst):
            raise OSError("disk full")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(cache.os, "replace", broken_replace)
            assert cache.store_blob("checkpoint", "k", b"half") is None
        assert cache.load_blob("checkpoint", "k") == b"good"


def _race_writer(data):
    for _ in range(25):
        cache.store_blob("checkpoint", "race", data)
