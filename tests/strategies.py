"""Shared hypothesis strategies for randomized graph/algorithm testing."""

import numpy as np
from hypothesis import strategies as st

from repro.graphs import erdos_renyi


@st.composite
def connected_graphs(draw, min_n=6, max_n=24, directed=False, weighted=False,
                     max_weight=8):
    """A connected random graph with drawn size, density and seed."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    p = draw(st.floats(min_value=0.05, max_value=0.35))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return erdos_renyi(n, p, directed=directed, weighted=weighted,
                       max_weight=max_weight, seed=seed)


def algorithm_seeds():
    return st.integers(min_value=0, max_value=10_000)


def outboxes_for(g, rng, max_words=3):
    """One legal random outbox dict for an exchange step on graph ``g``.

    Messages carry 1..max_words words so word totals genuinely exceed
    message counts (the conformance suite asserts words >= messages).
    """
    outboxes = {}
    for u in range(g.n):
        neighbors = list(g.neighbors(u))
        if not neighbors or rng.random() < 0.4:
            continue
        chosen = rng.choice(neighbors, size=min(2, len(neighbors)),
                            replace=False)
        outboxes[u] = {
            int(v): [((u, int(v), i), int(rng.integers(1, max_words + 1)))
                     for i in range(int(rng.integers(1, 4)))]
            for v in chosen
        }
    return outboxes


@st.composite
def message_plans(draw, g, min_steps=1, max_steps=5):
    """A multi-step exchange plan: one outbox dict per synchronous step."""
    steps = draw(st.integers(min_value=min_steps, max_value=max_steps))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    return [outboxes_for(g, rng) for _ in range(steps)]


@st.composite
def phase_scripts(draw, g, min_steps=2, max_steps=6):
    """A message plan where every step carries a random phase context.

    Each entry is ``(phase_path, outboxes)`` with ``phase_path`` a (possibly
    empty) tuple of phase names to nest the step under — exercising scoped,
    unscoped, and hierarchically nested attribution in one plan.
    """
    names = st.sampled_from(["wave", "detect", "combine", "probe"])
    steps = draw(st.integers(min_value=min_steps, max_value=max_steps))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    script = []
    for _ in range(steps):
        depth = draw(st.integers(min_value=0, max_value=2))
        path = tuple(draw(names) for _ in range(depth))
        script.append((path, outboxes_for(g, rng)))
    return script
