"""Shared hypothesis strategies for randomized graph/algorithm testing."""

from hypothesis import strategies as st

from repro.graphs import erdos_renyi


@st.composite
def connected_graphs(draw, min_n=6, max_n=24, directed=False, weighted=False,
                     max_weight=8):
    """A connected random graph with drawn size, density and seed."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    p = draw(st.floats(min_value=0.05, max_value=0.35))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return erdos_renyi(n, p, directed=directed, weighted=weighted,
                       max_weight=max_weight, seed=seed)


def algorithm_seeds():
    return st.integers(min_value=0, max_value=10_000)
