"""Tests for fixed-length directed cycle detection."""

import pytest

from repro.congest import CongestNetwork
from repro.core.cycle_detection import (
    detect_two_cycle_on,
    has_cycle_of_length_at_most,
    shortest_cycle_within,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_mwc


class TestShortestCycleWithin:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exact_when_q_large(self, seed):
        g = erdos_renyi(24, 0.1, directed=True, seed=seed)
        true = exact_mwc(g)
        res = shortest_cycle_within(g, q=g.n, seed=seed)
        assert res.value == true

    def test_q_truncates(self):
        g = cycle_graph(10, directed=True)
        assert shortest_cycle_within(g, q=9, seed=0).value == INF
        assert shortest_cycle_within(g, q=10, seed=0).value == 10

    def test_finds_exactly_q(self):
        g = cycle_graph(6, directed=True)
        g.add_edge(0, 3)  # creates a 4-cycle 0->3->4->5->0
        assert shortest_cycle_within(g, q=4, seed=0).value == 4
        assert shortest_cycle_within(g, q=3, seed=0).value == INF

    def test_rejects_bad_inputs(self):
        with pytest.raises(GraphError):
            shortest_cycle_within(cycle_graph(5), q=3)
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 0, 2)
        with pytest.raises(GraphError):
            shortest_cycle_within(g, q=3)
        with pytest.raises(GraphError):
            shortest_cycle_within(cycle_graph(5, directed=True), q=1)

    def test_rounds_linear_in_n_plus_q(self):
        g = cycle_graph(40, directed=True)
        res = shortest_cycle_within(g, q=6, seed=0)
        assert res.rounds <= 2 * (g.n + 6)

    def test_boolean_wrapper(self):
        g = cycle_graph(8, directed=True)
        assert has_cycle_of_length_at_most(g, 8)
        assert not has_cycle_of_length_at_most(g, 7)


class TestTwoCycleDetection:
    def test_detects(self):
        g = Graph(4, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        net = CongestNetwork(g, seed=0)
        found, rounds = detect_two_cycle_on(net)
        assert found
        assert rounds <= 4 * g.undirected_diameter() + 10

    def test_negative(self):
        g = cycle_graph(6, directed=True)
        net = CongestNetwork(g, seed=0)
        found, _ = detect_two_cycle_on(net)
        assert not found

    def test_rejects_undirected(self):
        net = CongestNetwork(cycle_graph(5), seed=0)
        with pytest.raises(GraphError):
            detect_two_cycle_on(net)
