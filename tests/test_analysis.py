"""Tests for the analysis utilities (fitting, crossovers, Table 1 view)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    TABLE1_CLAIMS,
    crossover_point,
    fit_exponent,
    geometric_sizes,
    render_table,
)


class TestFitExponent:
    def test_recovers_known_power_law(self):
        ns = [10, 20, 40, 80, 160]
        rounds = [3 * n ** 0.8 for n in ns]
        fit = fit_exponent(ns, rounds)
        assert abs(fit.exponent - 0.8) < 1e-9
        assert abs(fit.constant - 3) < 1e-6
        assert fit.r_squared > 0.999999

    def test_polylog_correction_removes_log_factor(self):
        ns = [64, 128, 256, 512, 1024]
        rounds = [n ** 0.5 * math.log2(n) ** 2 for n in ns]
        raw = fit_exponent(ns, rounds)
        corrected = fit_exponent(ns, rounds, polylog_correction=2.0)
        assert raw.exponent > 0.8           # logs inflate the raw slope
        assert abs(corrected.exponent - 0.5) < 1e-9

    def test_predict(self):
        fit = fit_exponent([10, 100], [20, 200])
        assert abs(fit.predict(1000) - 2000) < 1e-6

    def test_matches_tolerance(self):
        fit = fit_exponent([10, 100], [10 ** 0.8, 100 ** 0.8])
        assert fit.matches(0.8)
        assert fit.matches(1.0, tol=0.25)
        assert not fit.matches(1.2, tol=0.25)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_exponent([10], [5])
        with pytest.raises(ValueError):
            fit_exponent([10, 0], [5, 5])
        with pytest.raises(ValueError):
            fit_exponent([10, 20], [5, -1])

    @settings(max_examples=40, deadline=None)
    @given(
        exponent=st.floats(min_value=0.1, max_value=2.0),
        constant=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_property_exact_recovery(self, exponent, constant):
        ns = [16, 32, 64, 128]
        rounds = [constant * n ** exponent for n in ns]
        fit = fit_exponent(ns, rounds)
        assert abs(fit.exponent - exponent) < 1e-6


class TestCrossover:
    def test_finds_first_win(self):
        xs = [1, 2, 3, 4]
        assert crossover_point(xs, [10, 8, 4, 2], [5, 6, 7, 8]) == 3

    def test_none_when_never_wins(self):
        assert crossover_point([1, 2], [9, 9], [1, 1]) is None

    def test_immediate_win(self):
        assert crossover_point([1, 2], [1, 1], [9, 9]) == 1


class TestGeometricSizes:
    def test_endpoints_and_monotone(self):
        sizes = geometric_sizes(32, 512, 5)
        assert sizes[0] == 32 and sizes[-1] == 512
        assert sizes == sorted(set(sizes))

    def test_single(self):
        assert geometric_sizes(10, 100, 1) == [10]


class TestTable1:
    def test_claims_cover_every_bench(self):
        assert len(TABLE1_CLAIMS) == 13
        for row in TABLE1_CLAIMS.values():
            assert row.bench.endswith(".py")
            assert 0 < row.claimed_exponent <= 1.0

    def test_render_without_measurements(self):
        out = render_table()
        assert "Directed MWC" in out and "Thm 1.2.A" in out

    def test_render_with_measurements(self):
        out = render_table({"T1-R6-UB": {"exponent": 0.496, "ratio_ok": True},
                            "T6-A": {"note": "exact"},
                            "T1-R1-LB": {"ratio_ok": False}})
        assert "n^0.50" in out
        assert "ratio ok" in out
        assert "RATIO FAIL" in out
        assert "exact" in out
