"""Tests for the fault-injection subsystem (repro.congest.faults)."""

import pytest

from repro.congest import (
    CongestNetwork,
    Corrupted,
    FaultPlan,
    FaultStats,
    FaultyNetwork,
    LinkOutage,
    NodeCrash,
    RoundBudgetExceeded,
    round_budget,
)
from repro.congest.node import BfsProgram, MinAggregationProgram, run_programs
from repro.congest.primitives import bfs, broadcast
from repro.core.directed_mwc import directed_mwc_2approx_on
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.core.girth import girth_2approx_on
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError


def line_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(GraphError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(GraphError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(GraphError):
            FaultPlan(corrupt_rate=2.0)

    def test_outage_interval_sane(self):
        with pytest.raises(GraphError):
            LinkOutage(0, 1, start=5, end=5)
        with pytest.raises(GraphError):
            LinkOutage(0, 0, start=0, end=3)
        with pytest.raises(GraphError):
            LinkOutage(0, 1, start=-1, end=3)

    def test_crash_schedule_sane(self):
        with pytest.raises(GraphError):
            NodeCrash(0, at_round=-1)
        with pytest.raises(GraphError):
            NodeCrash(0, at_round=5, recover_round=5)
        with pytest.raises(GraphError):
            FaultPlan(crashes=(NodeCrash(1), NodeCrash(1, at_round=9)))

    def test_plan_rejects_out_of_graph_vertices(self):
        g = line_graph(3)
        with pytest.raises(GraphError):
            FaultyNetwork(g, FaultPlan(crashes=(NodeCrash(7),)))
        with pytest.raises(GraphError):
            FaultyNetwork(g, FaultPlan(link_outages=(LinkOutage(0, 9),)))

    def test_is_zero(self):
        assert FaultPlan().is_zero()
        assert not FaultPlan(drop_rate=0.01).is_zero()
        assert not FaultPlan(crashes=(NodeCrash(0),)).is_zero()

    def test_with_drop_rate_helper(self):
        plan = FaultPlan(corrupt_rate=0.1).with_drop_rate(0.25)
        assert plan.drop_rate == 0.25 and plan.corrupt_rate == 0.1


class TestNoFaultTransparency:
    """Acceptance: zero plan => byte-identical results and round counts."""

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_mwc_weighted(self, seed):
        g = erdos_renyi(20, 0.18, weighted=True, max_weight=9, seed=seed)
        plain = exact_mwc_congest_on(CongestNetwork(g, seed=seed))
        faulty = exact_mwc_congest_on(FaultyNetwork(g, FaultPlan(), seed=seed))
        assert plain.value == faulty.value
        assert plain.rounds == faulty.rounds
        assert plain.stats == faulty.stats

    def test_directed_2approx(self):
        g = erdos_renyi(24, 0.12, directed=True, seed=4)
        plain = directed_mwc_2approx_on(CongestNetwork(g, seed=1))
        faulty = directed_mwc_2approx_on(FaultyNetwork(g, seed=1))
        assert plain.value == faulty.value
        assert plain.rounds == faulty.rounds

    def test_girth_2approx(self):
        g = erdos_renyi(24, 0.14, seed=6)
        plain = girth_2approx_on(CongestNetwork(g, seed=2))
        faulty = girth_2approx_on(FaultyNetwork(g, seed=2))
        assert plain.value == faulty.value
        assert plain.rounds == faulty.rounds

    def test_primitives_and_programs(self):
        g = erdos_renyi(18, 0.2, seed=1)
        plain, faulty = CongestNetwork(g, seed=0), FaultyNetwork(g, seed=0)
        assert bfs(plain, 0) == bfs(faulty, 0)
        assert broadcast(plain, {0: [1, 2, 3]}) == broadcast(faulty, {0: [1, 2, 3]})
        assert plain.rounds == faulty.rounds
        p1 = run_programs(CongestNetwork(g, seed=0),
                          [BfsProgram(0) for _ in range(g.n)])
        p2 = run_programs(FaultyNetwork(g, seed=0),
                          [BfsProgram(0) for _ in range(g.n)])
        assert p1 == p2

    def test_zero_plan_records_no_fault_stats(self):
        net = FaultyNetwork(line_graph(4), FaultPlan(), seed=0)
        bfs(net, 0)
        assert net.fault_stats == FaultStats()


class TestDeterminism:
    """Acceptance: same graph + seed + plan => identical FaultStats/rounds."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_identical_fault_stats_across_runs(self, seed):
        g = erdos_renyi(20, 0.18, weighted=True, max_weight=6, seed=2)
        plan = FaultPlan(drop_rate=0.2, duplicate_rate=0.1, corrupt_rate=0.05)
        runs = []
        for _ in range(2):
            net = FaultyNetwork(g, plan, seed=seed)
            from repro.congest.primitives import reliable_bfs
            dist, _ = reliable_bfs(net, 0)
            runs.append((dist, net.rounds, net.fault_stats))
        assert runs[0] == runs[1]

    def test_different_seeds_give_different_faults(self):
        g = erdos_renyi(20, 0.2, seed=2)
        plan = FaultPlan(drop_rate=0.3)
        stats = []
        for seed in (0, 1):
            net = FaultyNetwork(g, plan, seed=seed)
            from repro.congest.primitives import reliable_bfs
            reliable_bfs(net, 0)
            stats.append(net.fault_stats)
        assert stats[0] != stats[1]

    def test_fault_rng_independent_of_algorithm_rng(self):
        # Consuming net.rng must not perturb the fault stream.
        g = line_graph(6)
        plan = FaultPlan(drop_rate=0.5)
        net1 = FaultyNetwork(g, plan, seed=9)
        net2 = FaultyNetwork(g, plan, seed=9)
        net2.rng.random(1000)
        for net in (net1, net2):
            for _ in range(20):
                net.exchange({0: {1: [("x", 1)]}})
        assert net1.fault_stats == net2.fault_stats


class TestDropDuplicateCorrupt:
    def test_all_drops_when_rate_is_one(self):
        net = FaultyNetwork(line_graph(3), FaultPlan(drop_rate=1.0), seed=0)
        inboxes = net.exchange({0: {1: [("a", 1), ("b", 1)]}})
        assert inboxes == {}
        assert net.fault_stats.dropped_messages == 2
        assert net.fault_stats.dropped_words == 2
        assert net.fault_stats.delivered_messages == 0
        # Dropped traffic consumes no bandwidth: empty step, 1 round.
        assert net.rounds == 1 and net.stats.words == 0

    def test_duplicates_delivered_twice(self):
        net = FaultyNetwork(line_graph(3), FaultPlan(duplicate_rate=1.0), seed=0)
        inboxes = net.exchange({0: {1: [("a", 1)]}})
        assert inboxes[1][0] == ["a", "a"]
        assert net.fault_stats.duplicated_messages == 1
        assert net.fault_stats.delivered_messages == 2
        assert net.stats.words == 2  # duplicates do consume bandwidth

    def test_corruption_wraps_payload(self):
        net = FaultyNetwork(line_graph(3), FaultPlan(corrupt_rate=1.0), seed=0)
        inboxes = net.exchange({0: {1: [("payload", 1)]}})
        (got,) = inboxes[1][0]
        assert isinstance(got, Corrupted)
        assert got.original == "payload"
        assert net.fault_stats.corrupted_messages == 1

    def test_drop_rate_statistics_plausible(self):
        net = FaultyNetwork(line_graph(2), FaultPlan(drop_rate=0.25), seed=3)
        for _ in range(400):
            net.exchange({0: {1: [("m", 1)]}})
        frac = net.fault_stats.dropped_messages / net.fault_stats.attempted_messages
        assert 0.15 < frac < 0.35

    def test_faults_do_not_mask_locality_violations(self):
        from repro.congest import LocalityViolation
        net = FaultyNetwork(line_graph(3), FaultPlan(drop_rate=1.0), seed=0)
        with pytest.raises(LocalityViolation):
            net.exchange({0: {2: [("x", 1)]}})


class TestLinkOutages:
    def test_outage_window(self):
        plan = FaultPlan(link_outages=(LinkOutage(0, 1, start=2, end=4),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        delivered = []
        for _ in range(6):  # rounds 0..5, one per exchange
            inboxes = net.exchange({0: {1: [("m", 1)]}})
            delivered.append(bool(inboxes))
        assert delivered == [True, True, False, False, True, True]
        assert net.fault_stats.outage_messages == 2

    def test_symmetric_outage_covers_both_directions(self):
        plan = FaultPlan(link_outages=(LinkOutage(0, 1, start=0, end=None),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        assert net.exchange({1: {0: [("m", 1)]}}) == {}

    def test_directed_outage_leaves_reverse_direction(self):
        plan = FaultPlan(link_outages=(
            LinkOutage(0, 1, start=0, end=None, symmetric=False),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        assert net.exchange({0: {1: [("m", 1)]}}) == {}
        assert net.exchange({1: {0: [("m", 1)]}})[0][1] == ["m"]

    def test_outage_only_affects_named_link(self):
        plan = FaultPlan(link_outages=(LinkOutage(0, 1, start=0, end=None),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        assert net.exchange({1: {2: [("m", 1)]}})[2][1] == ["m"]


class TestCrashes:
    def test_crashed_node_neither_sends_nor_receives(self):
        plan = FaultPlan(crashes=(NodeCrash(1, at_round=0),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        assert net.is_crashed(1) and not net.is_crashed(0)
        assert net.live_nodes() == [0, 2]
        inboxes = net.exchange({0: {1: [("to-dead", 1)]},
                                1: {2: [("from-dead", 1)]}})
        assert inboxes == {}
        assert net.fault_stats.suppressed_messages == 2

    def test_recovery_restores_traffic(self):
        plan = FaultPlan(crashes=(NodeCrash(1, at_round=0, recover_round=3),))
        net = FaultyNetwork(line_graph(3), plan, seed=0)
        assert net.exchange({0: {1: [("m", 1)]}}) == {}  # round 0: down
        net.charge_rounds(2)  # jump past the recovery round
        assert net.exchange({0: {1: [("m", 1)]}})[1][0] == ["m"]

    def test_run_programs_skips_crashed_and_quiesces_on_live(self):
        g = cycle_graph(6)
        plan = FaultPlan(crashes=(NodeCrash(3, at_round=0),))
        net = FaultyNetwork(g, plan, seed=0)
        values = [float(v + 10) for v in range(6)]
        results = run_programs(
            net, [MinAggregationProgram(values[v]) for v in range(6)],
            max_rounds=200)
        # Live nodes converge around the dead node; 3's program never ran
        # past setup so it keeps its own value.
        assert all(r == 10.0 for v, r in enumerate(results) if v != 3)
        assert results[3] == 13.0

    def test_crashed_source_degrades_bfs_gracefully(self):
        # The cycle is cut at the dead node: the wave still reaches every
        # live node the long way around.
        g = cycle_graph(8)
        plan = FaultPlan(crashes=(NodeCrash(4, at_round=0),))
        net = FaultyNetwork(g, plan, seed=0)
        results = run_programs(net, [BfsProgram(0) for _ in range(8)],
                               max_rounds=100)
        assert results[4] is None
        assert results[3] == 3 and results[5] == 3  # rerouted, not 4's +-1


class TestRoundBudget:
    def test_network_budget_enforced_on_exchange(self):
        net = CongestNetwork(line_graph(2), max_rounds=3)
        for _ in range(3):
            net.exchange({0: {1: [("m", 1)]}})
        with pytest.raises(RoundBudgetExceeded):
            net.exchange({0: {1: [("m", 1)]}})

    def test_network_budget_enforced_on_charge(self):
        net = CongestNetwork(line_graph(2), max_rounds=5)
        with pytest.raises(RoundBudgetExceeded):
            net.charge_rounds(6)

    def test_ambient_budget_context(self):
        with round_budget(2):
            net = CongestNetwork(line_graph(2))
        assert net.max_rounds == 2
        outside = CongestNetwork(line_graph(2))
        assert outside.max_rounds is None

    def test_run_raises_without_quiescence(self):
        net = CongestNetwork(line_graph(2))
        with pytest.raises(RoundBudgetExceeded):
            net.run(lambda t, inbox: {0: {1: [("m", 1)]}}, max_steps=5)

    def test_budget_error_is_a_runtime_error(self):
        assert issubclass(RoundBudgetExceeded, RuntimeError)


class TestAccounting:
    def test_reset_accounting_clears_fault_stats(self):
        net = FaultyNetwork(line_graph(2), FaultPlan(drop_rate=1.0), seed=0)
        net.exchange({0: {1: [("m", 1)]}})
        assert net.fault_stats.dropped_messages == 1
        net.reset_accounting()
        assert net.fault_stats == FaultStats()
        assert net.rounds == 0

    def test_stats_partition_attempts(self):
        plan = FaultPlan(drop_rate=0.3,
                         crashes=(NodeCrash(2, at_round=0),))
        net = FaultyNetwork(line_graph(4), plan, seed=1)
        for _ in range(50):
            net.exchange({0: {1: [("a", 1)]}, 1: {2: [("b", 1)]},
                          3: {2: [("c", 1)]}})
        s = net.fault_stats
        # delivered counts duplicates; with duplicate_rate=0 the attempted
        # traffic splits exactly into lost + delivered.
        assert s.attempted_messages == s.lost_messages() + s.delivered_messages
        assert s.suppressed_messages == 100  # both messages into node 2

    def test_as_dict_roundtrip(self):
        stats = FaultStats(dropped_messages=3, dropped_words=4)
        d = stats.as_dict()
        assert d["dropped_messages"] == 3 and d["delivered_words"] == 0
