"""Tests for the §4 girth algorithm (Theorem 1.3.B, Corollary 4.1)."""

import math

import pytest

from repro.congest import CongestNetwork
from repro.core.girth import GirthParams, girth_2approx, hop_limited_girth_on
from repro.graphs import (
    Graph,
    cycle_graph,
    cycle_with_chords,
    erdos_renyi,
    grid_graph,
    random_regular,
    ring_of_cliques,
)
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_girth


def assert_guarantee(g, res, seed_info=""):
    true = exact_girth(g)
    if true == INF:
        assert res.value == INF, seed_info
    else:
        bound = (2 - 1 / true) * true
        assert true <= res.value <= bound + 1e-9, (true, res.value, seed_info)


class TestGirthApproximation:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(40, 0.07, seed=seed)
        res = girth_2approx(g, seed=seed)
        assert_guarantee(g, res, f"seed={seed}")

    @pytest.mark.parametrize("n", [9, 16, 30, 51])
    def test_single_cycle_exact(self, n):
        g = cycle_graph(n)
        res = girth_2approx(g, seed=1)
        assert res.value == n

    def test_triangle_in_big_graph(self):
        g = cycle_graph(40)
        g.add_edge(0, 2)  # creates a triangle
        res = girth_2approx(g, seed=2)
        assert 3 <= res.value <= 5  # (2 - 1/3) * 3 = 5

    @pytest.mark.parametrize("seed", range(3))
    def test_chordal_cycles(self, seed):
        g = cycle_with_chords(36, num_chords=6, seed=seed)
        res = girth_2approx(g, seed=seed)
        assert_guarantee(g, res)

    def test_grid(self):
        g = grid_graph(6, 6)
        res = girth_2approx(g, seed=3)
        assert 4 <= res.value <= 7  # girth 4, bound (2-1/4)*4 = 7

    def test_ring_of_cliques(self):
        g = ring_of_cliques(5, 4)
        res = girth_2approx(g, seed=4)
        assert 3 <= res.value <= 5

    @pytest.mark.parametrize("seed", range(3))
    def test_regular_expanders(self, seed):
        g = random_regular(40, 3, seed=seed)
        res = girth_2approx(g, seed=seed)
        assert_guarantee(g, res)

    def test_tree_reports_inf(self):
        g = Graph(7)
        for i in range(1, 7):
            g.add_edge(i, (i - 1) // 2)
        res = girth_2approx(g, seed=0)
        assert res.value == INF

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            girth_2approx(cycle_graph(5, directed=True), seed=0)

    def test_rejects_weighted(self):
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 2)
        g.add_edge(0, 2, 2)
        with pytest.raises(GraphError):
            girth_2approx(g, seed=0)

    @pytest.mark.parametrize("seed", range(8))
    def test_guarantee_across_seeds(self, seed):
        g = erdos_renyi(34, 0.08, seed=99)
        res = girth_2approx(g, seed=seed)
        assert_guarantee(g, res, f"alg seed={seed}")


class TestGirthRounds:
    @pytest.mark.slow
    def test_rounds_scale_like_sqrt_n_on_bounded_diameter(self):
        """Measured rounds grow ~sqrt(n) on constant-diameter graphs."""
        rounds = []
        for n in (64, 256):
            g = random_regular(n, max(3, int(math.log2(n))), seed=1)
            res = girth_2approx(g, seed=1)
            rounds.append(res.rounds)
        # Quadrupling n should roughly double rounds (plus lower-order terms);
        # assert well below linear growth.
        assert rounds[1] < 3.2 * rounds[0]

    def test_round_breakdown_recorded(self):
        g = erdos_renyi(30, 0.1, seed=5)
        res = girth_2approx(g, seed=5)
        assert res.details["sigma"] == GirthParams().sigma(30)
        assert res.rounds == res.details["rounds_total"]


class TestHopLimitedGirth:
    def test_budget_excludes_long_cycles(self):
        # Two cycles: a 4-cycle and a 20-cycle sharing vertex 0.
        g = Graph(23)
        for i in range(19):
            g.add_edge(i, i + 1)
        g.add_edge(19, 0)
        g.add_edge(0, 20)
        g.add_edge(20, 21)
        g.add_edge(21, 22)
        g.add_edge(22, 0)
        net = CongestNetwork(g, seed=0)
        value, _, _ = hop_limited_girth_on(net, budget=6)
        assert 4 <= value <= 7

    def test_budget_too_small_finds_nothing(self):
        g = cycle_graph(20)
        net = CongestNetwork(g, seed=0)
        value, _, _ = hop_limited_girth_on(net, budget=3)
        assert value == INF

    def test_weight_graph_override(self):
        g = cycle_graph(6)
        heavy = Graph(6, weighted=True)
        for u, v, _ in g.edges():
            heavy.add_edge(u, v, 3)
        net = CongestNetwork(g, seed=0)
        value, _, _ = hop_limited_girth_on(net, budget=20, weight_graph=heavy)
        assert value == 18

    def test_per_vertex_candidates_sound(self):
        g = cycle_with_chords(24, 5, seed=7)
        true = exact_girth(g)
        net = CongestNetwork(g, seed=0)
        _, best, _ = hop_limited_girth_on(net, budget=g.n)
        assert all(b >= true for b in best)
