"""API quality gates: docstrings on every public item, lazy exports work.

Keeps the "documentation on every public item" deliverable machine-checked
rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.cli",
    "repro.harness",
    "repro.analysis.complexity",
    "repro.analysis.congestion",
    "repro.analysis.tables",
    "repro.congest.network",
    "repro.congest.node",
    "repro.congest.primitives.aggregation",
    "repro.congest.primitives.bfs",
    "repro.congest.primitives.broadcast",
    "repro.congest.primitives.convergecast",
    "repro.congest.primitives.flood",
    "repro.congest.primitives.multi_bfs",
    "repro.congest.primitives.trees",
    "repro.congest.primitives.waves",
    "repro.core.approx_sssp",
    "repro.core.apsp",
    "repro.core.baselines",
    "repro.core.cycle_detection",
    "repro.core.directed_mwc",
    "repro.core.distances",
    "repro.core.exact_mwc",
    "repro.core.girth",
    "repro.core.ksource",
    "repro.core.restricted_bfs",
    "repro.core.results",
    "repro.core.sampling",
    "repro.core.weighted_mwc",
    "repro.core.witness",
    "repro.graphs.generators",
    "repro.graphs.graph",
    "repro.graphs.io",
    "repro.graphs.properties",
    "repro.graphs.scaling",
    "repro.graphs.stretch",
    "repro.lowerbounds.constructions",
    "repro.lowerbounds.protocol",
    "repro.lowerbounds.set_disjointness",
    "repro.lowerbounds.verification",
    "repro.sequential.mwc",
    "repro.sequential.shortest_paths",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_and_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        assert obj.__doc__ and obj.__doc__.strip(), (
            f"{module_name}.{name} lacks a docstring")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                assert meth.__doc__ and meth.__doc__.strip(), (
                    f"{module_name}.{name}.{meth_name} lacks a docstring")


def test_all_lazy_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_thing


def test_every_package_module_importable():
    import repro as pkg
    count = 0
    for info in pkgutil.walk_packages(pkg.__path__, prefix="repro."):
        importlib.import_module(info.name)
        count += 1
    assert count >= 30
