"""End-to-end reduction tests: deciding disjointness by computing MWC.

These close the loop of the lower-bound proofs in the forward direction:
running a correct (approximation) algorithm on the reduction instance and
thresholding at the gap midpoint decides set disjointness — so any such
algorithm inherits the Ω(k)-bit communication requirement.
"""

import pytest

from repro.core.directed_mwc import directed_mwc_2approx_on
from repro.lowerbounds import (
    alpha_approx_directed_family,
    directed_mwc_family,
    random_disjoint,
    random_intersecting,
    undirected_weighted_family,
)
from repro.lowerbounds.protocol import solve_disjointness_via_mwc


class TestExactSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_directed_family_decided_correctly(self, seed):
        for maker in (random_disjoint, random_intersecting):
            inst = directed_mwc_family(5, maker(25, seed=seed))
            outcome = solve_disjointness_via_mwc(inst, seed=seed)
            assert outcome["correct"], (seed, maker.__name__)

    @pytest.mark.parametrize("seed", range(4))
    def test_undirected_weighted_family(self, seed):
        for maker in (random_disjoint, random_intersecting):
            inst = undirected_weighted_family(4, maker(16, seed=seed))
            outcome = solve_disjointness_via_mwc(inst, seed=seed)
            assert outcome["correct"]

    @pytest.mark.parametrize("seed", range(3))
    def test_alpha_family_with_exact(self, seed):
        for maker in (random_disjoint, random_intersecting):
            inst = alpha_approx_directed_family(6, 6, 4.0, maker(6, seed=seed))
            outcome = solve_disjointness_via_mwc(inst, seed=seed)
            assert outcome["correct"]

    def test_traffic_reported(self):
        inst = directed_mwc_family(6, random_disjoint(36, seed=0))
        outcome = solve_disjointness_via_mwc(inst, seed=0)
        assert outcome["bits_crossed"] > 0
        assert outcome["k_bits"] == 36


@pytest.mark.slow
class TestApproximateSolverOnAlphaFamily:
    """A 2-approximation decides the alpha = 8 family (gap ratio > 8 > 2):
    exactly the inapproximability direction of Theorem 1.2.B."""

    @pytest.mark.parametrize("seed", range(3))
    def test_two_approx_decides_large_gap(self, seed):
        for maker in (random_disjoint, random_intersecting):
            inst = alpha_approx_directed_family(6, 6, 8.0, maker(6, seed=seed))
            # yes = 10, no = 81; a 2-approx outputs <= 20 on yes-instances
            # and >= 81 on no-instances: threshold 45.5 separates them.
            outcome = solve_disjointness_via_mwc(
                inst, runner=directed_mwc_2approx_on, seed=seed)
            assert outcome["correct"], (seed, maker.__name__)

    def test_two_approx_cannot_be_trusted_on_ratio_two_family(self):
        """On the (2-eps) family the 2-approx value range straddles the
        threshold: the reduction (correctly) does not apply — this is why
        Theorem 1.2.A stops at (2-eps)."""
        inst = directed_mwc_family(5, random_intersecting(25, seed=1))
        # yes-instance value may legitimately be anywhere in [4, 8]: a value
        # of 8 would be declared 'disjoint'. We only assert the solver runs
        # and reports a value within the 2-approx envelope.
        outcome = solve_disjointness_via_mwc(
            inst, runner=directed_mwc_2approx_on, seed=1)
        assert 4 <= outcome["value"] <= 8
