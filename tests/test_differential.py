"""Differential testing: every distributed algorithm vs sequential truth.

Each algorithm runs on seeded graph families under eight simulator
configurations — scalar dict exchange, batched exchange, the vectorized
kernel engine on top of batching, the first three again with metrics
instrumentation enabled, under a TraceRecorder, and on a zero-plan
FaultyNetwork. All configurations must be bit-for-bit identical in results
AND round counts, and must match the sequential ground truth. This pins
down the core contract of the observability layer and the fast paths:
instrumentation, trace capture, the fault harness, and both exchange fast
paths are pure observers/accelerators.
"""

import contextlib

import pytest

from repro.congest import CongestNetwork
from repro.congest.batch import batching
from repro.congest.kernels import kernels
from repro.congest.faults import FaultPlan, FaultyNetwork
from repro.congest.trace import TraceRecorder
from repro.core.directed_mwc import directed_mwc_2approx_on
from repro.core.exact_mwc import (
    apsp_unweighted_on,
    apsp_weighted_on,
    exact_mwc_congest_on,
)
from repro.core.girth import girth_2approx_on
from repro.core.ksource import k_source_bfs_on, k_source_sssp_on
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs import (
    cycle_with_chords,
    erdos_renyi,
    grid_graph,
    random_weighted,
)
from repro.obs import observing
from repro.sequential import (
    all_pairs_shortest_paths,
    exact_girth,
    exact_mwc,
    k_source_distances,
)

pytestmark = pytest.mark.fast

INF = float("inf")

CONFIGS = ("scalar", "batched", "kernels", "scalar-metrics",
           "batched-metrics", "kernels-metrics", "traced", "faulty")


@contextlib.contextmanager
def configured_network(g, config, seed=0):
    """A network plus ambient simulator state for one matrix cell.

    The kernel gate is pinned in every cell: off unless the cell is a
    ``kernels`` one, so the ``batched`` cells exercise the batch-only path
    rather than silently riding the (default-on) kernel engine.
    """
    with contextlib.ExitStack() as stack:
        stack.enter_context(
            batching(config.startswith(("batched", "kernels"))))
        stack.enter_context(kernels(config.startswith("kernels")))
        if config.endswith("metrics"):
            stack.enter_context(observing())
        if config == "faulty":
            net = FaultyNetwork(g, plan=FaultPlan(), seed=seed)
        else:
            net = CongestNetwork(g, seed=seed)
        if config == "traced":
            stack.enter_context(TraceRecorder(net))
        yield net


def _dist_table(dist, n, sources):
    return tuple(tuple(dist[v].get(u, INF) for u in sources)
                 for v in range(n))


def _run_exact_mwc(net):
    return exact_mwc_congest_on(net).value


def _check_exact_mwc(g, value):
    assert value == exact_mwc(g)


def _run_girth(net):
    return girth_2approx_on(net).value


def _check_girth(g, value):
    gt = exact_girth(g)
    assert gt <= value <= 2 * gt


def _run_directed_mwc(net):
    return directed_mwc_2approx_on(net).value


def _check_directed_mwc(g, value):
    gt = exact_mwc(g)
    assert gt <= value <= 2 * gt


KSOURCE_SOURCES = (0, 3, 7)


def _run_ksource(net):
    res = k_source_bfs_on(net, list(KSOURCE_SOURCES))
    return _dist_table(res.dist, net.n, KSOURCE_SOURCES)


def _check_ksource(g, table):
    ref = k_source_distances(g, list(KSOURCE_SOURCES))
    for v in range(g.n):
        for j, u in enumerate(KSOURCE_SOURCES):
            assert table[v][j] == ref[u][v], (u, v)


SSSP_EPS = 0.5


def _run_ksource_sssp(net):
    res = k_source_sssp_on(net, list(KSOURCE_SOURCES), eps=SSSP_EPS)
    return _dist_table(res.dist, net.n, KSOURCE_SOURCES)


def _check_ksource_sssp(g, table):
    ref = k_source_distances(g, list(KSOURCE_SOURCES))
    for v in range(g.n):
        for j, u in enumerate(KSOURCE_SOURCES):
            assert ref[u][v] <= table[v][j] <= (1 + SSSP_EPS) * ref[u][v], (u, v)


def _run_apsp_unweighted(net):
    dist, _ = apsp_unweighted_on(net)
    return _dist_table(dist, net.n, range(net.n))


def _run_apsp_weighted(net):
    dist, _ = apsp_weighted_on(net)
    return _dist_table(dist, net.n, range(net.n))


def _check_apsp(g, table):
    ref = all_pairs_shortest_paths(g)
    for u in range(g.n):
        for v in range(g.n):
            assert table[v][u] == ref[u][v], (u, v)


CASES = {
    "exact-mwc/weighted":
        (lambda: random_weighted(12, 0.3, 6, seed=3),
         _run_exact_mwc, _check_exact_mwc),
    "exact-mwc/chords":
        (lambda: cycle_with_chords(12, 3, seed=1),
         _run_exact_mwc, _check_exact_mwc),
    "exact-mwc/grid":
        (lambda: grid_graph(3, 4),
         _run_exact_mwc, _check_exact_mwc),
    "exact-mwc/directed":
        (lambda: random_weighted(10, 0.35, 5, directed=True, seed=5),
         _run_exact_mwc, _check_exact_mwc),
    "girth-2approx":
        (lambda: erdos_renyi(14, 0.2, seed=2),
         _run_girth, _check_girth),
    "directed-mwc-2approx":
        (lambda: erdos_renyi(12, 0.2, directed=True, seed=7),
         _run_directed_mwc, _check_directed_mwc),
    "ksource-bfs":
        (lambda: erdos_renyi(16, 0.18, directed=True, seed=4),
         _run_ksource, _check_ksource),
    "ksource-sssp":
        (lambda: random_weighted(14, 0.22, 7, seed=9),
         _run_ksource_sssp, _check_ksource_sssp),
    "apsp-unweighted":
        (lambda: erdos_renyi(12, 0.2, directed=True, seed=6),
         _run_apsp_unweighted, _check_apsp),
    "apsp-weighted":
        (lambda: random_weighted(10, 0.3, 6, seed=8),
         _run_apsp_weighted, _check_apsp),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_all_configs_agree_and_match_ground_truth(case):
    factory, run, check = CASES[case]
    g = factory()
    outcomes = {}
    for config in CONFIGS:
        with configured_network(g, config) as net:
            outcome = run(net)
            outcomes[config] = (outcome, net.rounds, net.stats.messages,
                                net.stats.words)
            if net.metrics_active:
                report = net.phase_report()
                assert sum(b["rounds"] for b in report.values()) == net.rounds
        check(g, outcome)
    baseline = outcomes["scalar"]
    for config, observed in outcomes.items():
        assert observed == baseline, config


AMBIENT_CONFIGS = ("scalar", "batched", "kernels", "scalar-metrics",
                   "batched-metrics", "kernels-metrics")

WEIGHTED_APPROX = {
    "undirected": (lambda: random_weighted(16, 0.2, 8, seed=11),
                   undirected_weighted_mwc_approx),
    "directed": (lambda: random_weighted(14, 0.25, 8, directed=True, seed=12),
                 directed_weighted_mwc_approx),
}


@pytest.mark.parametrize("kind", sorted(WEIGHTED_APPROX))
def test_weighted_approx_mwc_agrees_across_ambient_configs(kind):
    """The (2+eps) solvers build their own network, so the matrix axis is
    the ambient state: exchange path x metrics instrumentation."""
    factory, solve = WEIGHTED_APPROX[kind]
    g = factory()
    gt = exact_mwc(g)
    outcomes = {}
    for config in AMBIENT_CONFIGS:
        with contextlib.ExitStack() as stack:
            stack.enter_context(
                batching(config.startswith(("batched", "kernels"))))
            stack.enter_context(kernels(config.startswith("kernels")))
            if config.endswith("metrics"):
                stack.enter_context(observing())
            res = solve(g, seed=0)
        outcomes[config] = (res.value, res.rounds, res.stats.messages,
                            res.stats.words)
        assert gt <= res.value <= (2 + 0.5) * gt or (gt == INF
                                                     and res.value == INF)
    baseline = outcomes["scalar"]
    for config, observed in outcomes.items():
        assert observed == baseline, config


@pytest.mark.parametrize("config", CONFIGS)
def test_faulty_zero_plan_is_fully_transparent(config):
    """A second axis on one workload: fault bookkeeping under every config
    still records that nothing was dropped or duplicated."""
    g = cycle_with_chords(12, 3, seed=1)
    with configured_network(g, config) as net:
        exact_mwc_congest_on(net)
        if isinstance(net, FaultyNetwork):
            assert net.fault_stats.dropped_messages == 0
            assert net.fault_stats.duplicated_messages == 0
