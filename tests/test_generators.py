"""Tests for workload generators: connectivity, shape, planted structure."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    cycle_with_chords,
    erdos_renyi,
    grid_graph,
    planted_mwc,
    random_regular,
    ring_of_cliques,
)
from repro.graphs.graph import GraphError
from repro.sequential import exact_mwc


class TestErdosRenyi:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_connected_and_typed(self, directed, weighted):
        g = erdos_renyi(40, 0.05, directed=directed, weighted=weighted,
                        max_weight=9, seed=1)
        assert g.n == 40
        assert g.directed == directed and g.weighted == weighted
        assert g.is_connected()

    def test_weights_in_range(self):
        g = erdos_renyi(30, 0.2, weighted=True, max_weight=5, seed=2)
        assert all(1 <= w <= 5 for _, _, w in g.edges())

    def test_reproducible_with_seed(self):
        a = erdos_renyi(25, 0.1, seed=7)
        b = erdos_renyi(25, 0.1, seed=7)
        assert a == b

    def test_bad_probability_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5, seed=0)

    def test_density_scales_with_p(self):
        sparse = erdos_renyi(60, 0.02, seed=3, ensure_connected=False)
        dense = erdos_renyi(60, 0.4, seed=3, ensure_connected=False)
        assert dense.m > sparse.m


class TestStructuredGenerators:
    def test_cycle_graph_is_single_cycle(self):
        g = cycle_graph(7)
        assert g.m == 7
        assert exact_mwc(g) == 7

    def test_directed_cycle(self):
        g = cycle_graph(5, directed=True)
        assert exact_mwc(g) == 5

    def test_cycle_too_short_rejected(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_cycle_with_chords_reduces_girth(self):
        g = cycle_with_chords(30, num_chords=15, seed=4)
        assert exact_mwc(g) < 30

    def test_grid_dimensions(self):
        g = grid_graph(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5
        assert exact_mwc(g) == 4

    def test_random_regular_degree(self):
        g = random_regular(20, 3, seed=5)
        assert all(g.out_degree(v) == 3 for v in range(g.n))
        assert g.is_connected()

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 4)
        assert g.n == 16
        assert g.is_connected()
        assert exact_mwc(g) == 3

    def test_ring_of_cliques_validation(self):
        with pytest.raises(GraphError):
            ring_of_cliques(2, 4)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.m == 10
        gd = complete_graph(4, directed=True)
        assert gd.m == 12


class TestPlantedMwc:
    def test_planted_cycle_is_mwc_directed(self):
        g = planted_mwc(40, cycle_len=4, p=0.0, directed=True, seed=6)
        assert exact_mwc(g) == 4

    def test_planted_cycle_weighted(self):
        g = planted_mwc(30, cycle_len=5, p=0.0, directed=True, weighted=True,
                        cycle_weight=2, background_weight=50, seed=7)
        assert exact_mwc(g) == 10

    def test_planted_respects_bounds(self):
        with pytest.raises(GraphError):
            planted_mwc(10, cycle_len=11, seed=0)
        with pytest.raises(GraphError):
            planted_mwc(10, cycle_len=1, directed=True, seed=0)

    def test_planted_connected_with_background(self):
        g = planted_mwc(50, cycle_len=6, p=0.02, directed=True, seed=8)
        assert g.is_connected()
        assert exact_mwc(g) <= 6


class TestExtraGenerators:
    def test_barbell_structure(self):
        from repro.graphs import barbell_graph
        g = barbell_graph(4, 5)
        assert g.is_connected()
        assert exact_mwc(g) == 3
        assert g.undirected_diameter() >= 5

    def test_barbell_validation(self):
        from repro.graphs import barbell_graph
        with pytest.raises(GraphError):
            barbell_graph(2, 3)
        with pytest.raises(GraphError):
            barbell_graph(4, 0)

    def test_barbell_short_bridge(self):
        from repro.graphs import barbell_graph
        g = barbell_graph(3, 1)
        assert g.is_connected() and g.n == 6

    def test_layered_digraph_cycles_span_layers(self):
        from repro.graphs import layered_digraph
        g = layered_digraph(6, 4, back_edges=5, seed=3)
        assert g.directed and g.is_connected()
        mwc = exact_mwc(g)
        assert mwc == float("inf") or mwc >= 2

    def test_layered_digraph_no_back_edges_maybe_acyclic(self):
        from repro.graphs import layered_digraph
        # The connectivity backbone can still create cycles; only check shape.
        g = layered_digraph(4, 3, back_edges=0, seed=1)
        assert g.n == 12

    def test_layered_validation(self):
        from repro.graphs import layered_digraph
        with pytest.raises(GraphError):
            layered_digraph(1, 4, 0)

    def test_caveman(self):
        from repro.graphs import caveman_graph
        g = caveman_graph(4, 5, rewire=3, seed=2)
        assert g.is_connected()
        assert exact_mwc(g) == 3
