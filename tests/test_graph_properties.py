"""Tests for structural graph property helpers."""

import networkx as nx
import pytest

from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError
from repro.graphs.properties import (
    bridges,
    degree_statistics,
    has_directed_cycle,
    is_dag,
    strongly_connected_components,
)


class TestDegreeStatistics:
    def test_cycle(self):
        stats = degree_statistics(cycle_graph(6))
        assert stats["min"] == stats["max"] == 2
        assert stats["density"] == pytest.approx(6 / 15)

    def test_empty(self):
        assert degree_statistics(Graph(0))["mean"] == 0.0


class TestDag:
    def test_chain_is_dag(self):
        g = Graph(4, directed=True)
        for i in range(3):
            g.add_edge(i, i + 1)
        assert is_dag(g)
        assert not has_directed_cycle(g)

    def test_cycle_is_not_dag(self):
        assert not is_dag(cycle_graph(5, directed=True))
        assert has_directed_cycle(cycle_graph(5, directed=True))

    def test_rejects_undirected(self):
        with pytest.raises(GraphError):
            is_dag(cycle_graph(4))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(20, 0.08, directed=True, seed=seed,
                        ensure_connected=False)
        assert is_dag(g) == nx.is_directed_acyclic_graph(g.to_networkx())


class TestScc:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(18, 0.12, directed=True, seed=seed)
        ours = sorted(tuple(c) for c in strongly_connected_components(g))
        theirs = sorted(tuple(sorted(c)) for c in
                        nx.strongly_connected_components(g.to_networkx()))
        assert ours == theirs

    def test_single_cycle_one_component(self):
        sccs = strongly_connected_components(cycle_graph(7, directed=True))
        assert len(sccs) == 1 and len(sccs[0]) == 7

    def test_rejects_undirected(self):
        with pytest.raises(GraphError):
            strongly_connected_components(cycle_graph(4))


class TestBridges:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(18, 0.1, seed=seed)
        ours = set(bridges(g))
        theirs = {(min(u, v), max(u, v))
                  for u, v in nx.bridges(g.to_networkx())}
        assert ours == theirs

    def test_cycle_has_none(self):
        assert bridges(cycle_graph(8)) == []

    def test_tree_is_all_bridges(self):
        g = Graph(5)
        for i in range(1, 5):
            g.add_edge(i, (i - 1) // 2)
        assert len(bridges(g)) == 4

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            bridges(cycle_graph(4, directed=True))
