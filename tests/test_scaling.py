"""Property tests for the scaling lemma (§5.1 / [41]) and stretched graphs."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork
from repro.congest.primitives import multi_source_wave
from repro.congest.primitives.bfs import bfs
from repro.graphs import Graph, StretchedGraph, erdos_renyi, scaled_graph
from repro.graphs.graph import INF, GraphError
from repro.graphs.scaling import (
    hop_budget,
    num_scales,
    scale_index_for_weight,
    scale_ladder,
    scale_weight,
    unscale_value,
)


class TestScaleArithmetic:
    def test_hop_budget(self):
        assert hop_budget(10, 1.0) == 30
        assert hop_budget(10, 0.5) == 50
        with pytest.raises(ValueError):
            hop_budget(10, 0)

    def test_scale_weight_monotone_in_scale(self):
        w = 37
        vals = [scale_weight(w, i, h=10, eps=0.5) for i in range(10)]
        assert vals == sorted(vals, reverse=True)

    def test_scale_index(self):
        assert scale_index_for_weight(1) == 0
        assert scale_index_for_weight(2) == 1
        assert scale_index_for_weight(3) == 2
        assert scale_index_for_weight(8) == 3
        assert scale_index_for_weight(0) == 0

    def test_num_scales_covers_max_path(self):
        h, W = 16, 100
        assert 2 ** (num_scales(h, W) - 1) >= h * W

    def test_zero_weight_maps_to_zero_then_clamped_to_one_in_graph(self):
        assert scale_weight(0, 3, 10, 0.5) == 0
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 0)
        gs = scaled_graph(g, i=3, h=10, eps=0.5)
        assert gs.weight(0, 1) == 1


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=12),
    eps=st.sampled_from([0.25, 0.5, 1.0]),
)
def test_property_scaling_lemma_forward(weights, eps):
    """An h-hop path of weight w(P) fits in h* at scale i* = ceil(log2 w(P))."""
    h = len(weights)
    wp = sum(weights)
    i_star = scale_index_for_weight(wp)
    scaled = sum(max(1, scale_weight(w, i_star, h, eps)) for w in weights)
    assert scaled <= hop_budget(h, eps) + h  # +h slack for the max(1, .) lift


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=12),
    eps=st.sampled_from([0.25, 0.5, 1.0]),
)
def test_property_scaling_lemma_backward(weights, eps):
    """Unscaling a path's scaled weight overestimates by at most (1+eps) at i*."""
    h = len(weights)
    wp = sum(weights)
    i_star = scale_index_for_weight(wp)
    scaled = sum(max(1, scale_weight(w, i_star, h, eps)) for w in weights)
    estimate = unscale_value(scaled, i_star, h, eps)
    assert estimate >= wp * (1 - 1e-9)  # never underestimates
    assert estimate <= (1 + eps) * wp + eps * h  # (1+eps) up to the unit lift


class TestScaleLadder:
    def test_ladder_clamps_weights(self):
        g = erdos_renyi(10, 0.3, weighted=True, max_weight=50, seed=0)
        h, eps = 4, 0.5
        budget = hop_budget(h, eps)
        for i, gi in scale_ladder(g, h, eps):
            assert gi.max_weight() <= budget + 1

    def test_ladder_covers_mwc_scale(self):
        g = erdos_renyi(12, 0.3, weighted=True, max_weight=9, seed=1)
        scales = [i for i, _ in scale_ladder(g, h=5, eps=0.5)]
        assert scale_index_for_weight(5 * 9) in scales


class TestStretchedGraph:
    def test_rejects_unweighted(self):
        with pytest.raises(GraphError):
            StretchedGraph(Graph(2))

    def test_structure(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 3)
        sg = StretchedGraph(g)
        assert sg.graph.n == 2 + 2  # two internal vertices
        assert sg.graph.m == 3
        assert sg.host[2] == 0 and sg.host[3] == 0

    def test_rejects_zero_weight(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 0)
        with pytest.raises(GraphError):
            StretchedGraph(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_wave_equals_bfs_on_materialized_stretch(self, seed):
        """The unit-speed wave is round-for-round the stretched-graph BFS."""
        g = erdos_renyi(10, 0.25, directed=True, weighted=True, max_weight=4,
                        seed=seed)
        budget = 9
        # Wave on the weighted graph.
        net = CongestNetwork(g)
        known, _ = multi_source_wave(net, [0], budget=budget)
        # BFS on the materialized stretched graph, hop-limited to budget.
        sg = StretchedGraph(g)
        snet = CongestNetwork(sg.graph, host=sg.host)
        sdist, _ = bfs(snet, 0, h=budget)
        for v in range(g.n):
            expected = sdist[v] if sdist[v] != INF else INF
            assert known[v].get(0, INF) == expected

    def test_stretch_hosting_saves_bandwidth(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 5)
        sg = StretchedGraph(g)
        snet = CongestNetwork(sg.graph, host=sg.host, strict=True)
        bfs(snet, 0, h=5)  # all but the final hop are host-local: no overload
        assert snet.stats.local_messages > 0
