"""Tests for Algorithm 2/3: 2-approx directed unweighted MWC (Thm 1.2.C)."""

import math

import pytest

from repro.congest import CongestNetwork
from repro.core.directed_mwc import DirectedMwcParams, directed_mwc_2approx
from repro.core.ksource import k_source_bfs_on
from repro.core.restricted_bfs import (
    RestrictedBfsParams,
    build_rv,
    membership_test,
    partition_sample,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi, planted_mwc
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_mwc, k_source_distances


class TestReverseKSource:
    @pytest.mark.parametrize("seed", range(3))
    def test_reverse_mode_gives_distance_to_sources(self, seed):
        g = erdos_renyi(30, 0.1, directed=True, seed=seed)
        net = CongestNetwork(g, seed=seed)
        sources = [0, 7, 13]
        res = k_source_bfs_on(net, sources, reverse=True)
        ref = k_source_distances(g, sources, reverse=True)
        for v in range(g.n):
            for s in sources:
                assert res.distance(s, v) == ref[s][v]


class TestRvConstruction:
    def test_partition_covers_sample(self):
        import numpy as np
        rng = np.random.default_rng(0)
        S = list(range(10))
        parts = partition_sample(S, 3, rng)
        flat = sorted(x for p in parts for x in p)
        assert flat == S
        assert len(parts) == 3

    def test_rv_bounded_by_beta(self):
        import numpy as np
        rng = np.random.default_rng(1)
        g = erdos_renyi(30, 0.15, directed=True, seed=2)
        ref = k_source_distances(g, range(g.n))
        S = [0, 3, 6, 9, 12, 15]
        parts = partition_sample(S, 3, rng)
        pair = {(s, t): ref[s][t] for s in S for t in S}
        d_v_to = {s: ref[0 + 1][s] for s in S}  # placeholder vertex 1
        d_to_v = {s: ref[s][1] for s in S}
        rv = build_rv(1, parts, d_v_to, d_to_v, pair, rng)
        assert len(rv) <= len(parts)
        assert all(t in S for t in rv)

    def test_membership_symmetric_vertex_always_in_own_p(self):
        # v itself satisfies the test against any t: d(v,t)+2*0 <= d(t,v)+2d(v,t)
        # rearranges to 0 <= d(t,v) + d(v,t), always true.
        d_u_to = {5: 7.0}
        d_to_u = {5: 3.0}
        assert membership_test(0, 0, [5], {5: 7.0}, d_u_to, d_to_u)


class TestDirectedMwcApproximation:
    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_on_random_digraphs(self, seed):
        g = erdos_renyi(40, 0.06, directed=True, seed=seed)
        true = exact_mwc(g)
        res = directed_mwc_2approx(g, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true <= res.value <= 2 * true, (true, res.value)

    @pytest.mark.parametrize("seed", range(3))
    def test_ratio_on_denser_digraphs(self, seed):
        g = erdos_renyi(36, 0.15, directed=True, seed=seed + 50)
        true = exact_mwc(g)
        res = directed_mwc_2approx(g, seed=seed)
        assert true <= res.value <= 2 * true

    def test_single_long_cycle_exact(self):
        # The whole graph is one long cycle: it passes through sampled
        # vertices, so the algorithm computes it exactly (case 1).
        g = cycle_graph(60, directed=True)
        res = directed_mwc_2approx(g, seed=1)
        assert res.value == 60

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_short_cycle(self, seed):
        g = planted_mwc(50, cycle_len=3, p=0.02, directed=True, seed=seed)
        true = exact_mwc(g)
        res = directed_mwc_2approx(g, seed=seed)
        assert true <= res.value <= 2 * true

    def test_two_cycle(self):
        g = Graph(4, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        res = directed_mwc_2approx(g, seed=0)
        assert 2 <= res.value <= 4

    def test_acyclic_reports_inf(self):
        g = Graph(5, directed=True)
        for i in range(4):
            g.add_edge(i, i + 1)
        res = directed_mwc_2approx(g, seed=0)
        assert res.value == INF

    def test_rejects_undirected(self):
        with pytest.raises(GraphError):
            directed_mwc_2approx(cycle_graph(5), seed=0)

    def test_rejects_weighted(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 2)
        g.add_edge(2, 0, 2)
        with pytest.raises(GraphError):
            directed_mwc_2approx(g, seed=0)

    def test_details_populated(self):
        g = erdos_renyi(30, 0.1, directed=True, seed=3)
        res = directed_mwc_2approx(g, seed=0)
        for key in ("h", "sample_size", "rounds_ksource", "rounds_short_cycles",
                    "overflow_count", "rounds_total"):
            assert key in res.details
        assert res.rounds == res.details["rounds_total"]


class TestParamsAndAblation:
    def test_param_scaling(self):
        p = DirectedMwcParams()
        assert p.h(1024) == math.ceil(1024 ** 0.6)
        assert 0 < p.sample_probability(1024) <= 1

    def test_caps_disabled_still_correct(self):
        g = erdos_renyi(30, 0.12, directed=True, seed=4)
        true = exact_mwc(g)
        params = DirectedMwcParams(enforce_caps=False)
        res = directed_mwc_2approx(g, seed=2, params=params)
        assert true <= res.value <= 2 * true
        assert res.details["overflow_count"] == 0

    def test_restricted_params_for_n(self):
        p = RestrictedBfsParams.for_n(1000)
        assert p.h == math.ceil(1000 ** 0.6)
        assert p.rho == math.ceil(1000 ** 0.8)
        assert p.cap >= 2 and p.beta >= 2


class TestSeedStability:
    def test_deterministic_given_seed(self):
        g = erdos_renyi(30, 0.1, directed=True, seed=9)
        a = directed_mwc_2approx(g, seed=5)
        b = directed_mwc_2approx(g, seed=5)
        assert a.value == b.value and a.rounds == b.rounds

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_never_violate_guarantee(self, seed):
        g = erdos_renyi(28, 0.1, directed=True, seed=123)
        true = exact_mwc(g)
        res = directed_mwc_2approx(g, seed=seed)
        assert true <= res.value <= 2 * true
