"""Smoke tests keeping every example runnable end to end."""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "deadlock_detection.py",
    "network_cycle_monitor.py",
    "landmark_routing.py",
    pytest.param("paper_table.py", marks=pytest.mark.slow),
    "lower_bound_tour.py",
])
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
