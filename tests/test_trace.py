"""Tests for the execution trace recorder."""

import pytest

from repro.congest import CongestNetwork
from repro.congest.primitives import bfs, broadcast
from repro.congest.trace import Trace, TraceRecorder
from repro.graphs import cycle_graph, grid_graph


class TestRecorder:
    def test_records_bfs_wave(self):
        g = cycle_graph(10)
        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net) as trace:
            bfs(net, 0)
        assert trace.steps == net.stats.steps
        total_words = sum(ev.words for ev in trace.events)
        assert total_words == net.stats.words

    def test_detach_restores(self):
        net = CongestNetwork(cycle_graph(5), seed=0)
        rec = TraceRecorder(net)
        with rec:
            pass
        assert net.exchange == rec._original_exchange

    def test_truncation(self):
        g = grid_graph(4, 4)
        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net, max_events=3) as trace:
            broadcast(net, {0: list(range(5))})
        assert trace.truncated
        assert len(trace.events) == 3

    def test_exceptions_propagate_and_detach(self):
        net = CongestNetwork(cycle_graph(5), seed=0)
        rec = TraceRecorder(net)
        with pytest.raises(RuntimeError):
            with rec:
                raise RuntimeError("boom")
        assert net.exchange == rec._original_exchange


class TestFaultInteraction:
    """A traced FaultyNetwork records what the wire carried, not attempts."""

    def test_records_delivered_not_dropped(self):
        from repro.congest import FaultPlan, FaultyNetwork

        g = cycle_graph(3)
        net = FaultyNetwork(g, FaultPlan(drop_rate=1.0), seed=0)
        with TraceRecorder(net) as trace:
            net.exchange({0: {1: [("doomed", 1)]}})
        assert trace.steps == 1
        assert trace.events == []  # everything was dropped pre-wire
        assert net.fault_stats.dropped_messages == 1

    def test_partial_drops_trace_survivors_only(self):
        from repro.congest import FaultPlan, FaultyNetwork
        from repro.congest.primitives import reliable_bfs

        g = cycle_graph(10)
        net = FaultyNetwork(g, FaultPlan(drop_rate=0.4), seed=3)
        with TraceRecorder(net) as trace:
            reliable_bfs(net, 0)
        traced_words = sum(ev.words for ev in trace.events)
        # The trace matches the delivery-side stats exactly and excludes
        # every dropped word.
        assert traced_words == net.stats.words
        assert net.fault_stats.dropped_words > 0
        attempted = net.fault_stats.attempted_words
        assert traced_words == attempted - net.fault_stats.dropped_words \
            + net.fault_stats.duplicated_words

    def test_truncation_still_flags(self):
        from repro.congest import FaultPlan, FaultyNetwork
        from repro.congest.primitives import reliable_bfs

        g = grid_graph(4, 4)
        net = FaultyNetwork(g, FaultPlan(drop_rate=0.2), seed=1)
        with TraceRecorder(net, max_events=3) as trace:
            reliable_bfs(net, 0)
        assert trace.truncated
        assert len(trace.events) == 3

    def test_detach_restores_faulty_delivery(self):
        from repro.congest import FaultPlan, FaultyNetwork

        net = FaultyNetwork(cycle_graph(5), FaultPlan(drop_rate=0.5), seed=0)
        rec = TraceRecorder(net)
        with rec:
            pass
        assert net.deliver == rec._original_exchange


class TestTraceAnalysis:
    def _traced_bfs(self):
        g = cycle_graph(12)
        net = CongestNetwork(g, seed=0)
        with TraceRecorder(net) as trace:
            bfs(net, 0)
        return trace

    def test_busiest_links(self):
        trace = self._traced_bfs()
        links = trace.busiest_links(top=3)
        assert len(links) == 3
        assert links[0][1] >= links[-1][1]

    def test_words_per_step(self):
        trace = self._traced_bfs()
        volumes = trace.words_per_step()
        assert len(volumes) == trace.steps
        assert sum(volumes) == sum(ev.words for ev in trace.events)

    def test_timeline_renders(self):
        trace = self._traced_bfs()
        text = trace.timeline_ascii()
        assert "step" in text and "#" in text

    def test_empty_trace(self):
        assert Trace().timeline_ascii() == "(empty trace)"
        assert Trace().busiest_links() == []
