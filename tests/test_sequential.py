"""Tests for sequential reference algorithms (the repo's ground truth)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import (
    all_pairs_shortest_paths,
    bfs_distances,
    dijkstra,
    exact_girth,
    exact_mwc,
    hop_limited_distances,
    mwc_through_vertex,
    shortest_cycle_through_edge,
)
from repro.sequential.mwc import has_cycle, mwc_witness
from repro.sequential.shortest_paths import weight_limited_distances


def random_graph(seed, n=24, p=0.12, directed=False, weighted=False, max_weight=8):
    return erdos_renyi(n, p, directed=directed, weighted=weighted,
                       max_weight=max_weight, seed=seed)


class TestShortestPaths:
    @pytest.mark.parametrize("seed", range(5))
    def test_bfs_matches_networkx(self, seed):
        g = random_graph(seed, directed=True)
        dist = bfs_distances(g, 0)
        nxd = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        for v in range(g.n):
            assert dist[v] == nxd.get(v, INF)

    @pytest.mark.parametrize("seed", range(5))
    def test_dijkstra_matches_networkx(self, seed):
        g = random_graph(seed, directed=True, weighted=True)
        dist = dijkstra(g, 0)
        nxd = nx.single_source_dijkstra_path_length(g.to_networkx(), 0)
        for v in range(g.n):
            assert dist[v] == nxd.get(v, INF)

    def test_reverse_bfs(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert bfs_distances(g, 2, reverse=True) == [2, 1, 0]

    def test_hop_limit_truncates(self):
        g = Graph(4, directed=True)
        for i in range(3):
            g.add_edge(i, i + 1)
        assert bfs_distances(g, 0, h=2)[3] == INF
        assert bfs_distances(g, 0, h=3)[3] == 3

    def test_hop_limited_weighted_prefers_fewer_hops(self):
        # 0->1->2 each weight 1 (2 hops, weight 2); 0->2 weight 5 (1 hop).
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(0, 2, 5)
        assert hop_limited_distances(g, 0, h=1)[2] == 5
        assert hop_limited_distances(g, 0, h=2)[2] == 2

    def test_weight_limited(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 4)
        g.add_edge(1, 2, 4)
        wl = weight_limited_distances(g, 0, limit=5)
        assert wl[1] == 4 and wl[2] == INF

    def test_apsp_shape(self):
        g = random_graph(0, n=12)
        mat = all_pairs_shortest_paths(g)
        assert len(mat) == 12 and all(mat[v][v] == 0 for v in range(12))


class TestExactMwc:
    def test_acyclic_directed(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert exact_mwc(g) == INF
        assert not has_cycle(g)

    def test_tree_undirected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert exact_mwc(g) == INF

    def test_two_cycle_directed(self):
        g = Graph(2, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert exact_mwc(g) == 2

    def test_triangle(self):
        g = cycle_graph(3)
        assert exact_mwc(g) == 3
        assert exact_girth(g) == 3

    def test_weighted_undirected_prefers_light_long_cycle(self):
        # Triangle of total weight 30 vs 5-cycle of total weight 5.
        g = Graph(8, weighted=True)
        g.add_edge(0, 1, 10)
        g.add_edge(1, 2, 10)
        g.add_edge(2, 0, 10)
        for i in range(3, 8):
            g.add_edge(i, 3 + (i - 2) % 5, 1)
        g.add_edge(0, 3, 1)  # connect components
        assert exact_mwc(g) == 5

    def test_undirected_no_backtracking_on_multi_path(self):
        # Two vertices joined by two parallel 2-paths: cycle of length 4.
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(0, 3)
        g.add_edge(3, 2)
        assert exact_mwc(g) == 4

    def test_girth_rejects_directed(self):
        with pytest.raises(ValueError):
            exact_girth(Graph(3, directed=True))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_girth(self, seed):
        g = random_graph(seed, n=20, p=0.15)
        expected = nx.girth(g.to_networkx())
        got = exact_girth(g)
        assert got == (INF if expected == float("inf") else expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_directed_weighted_mwc_brute_force(self, seed):
        g = random_graph(seed, n=10, p=0.2, directed=True, weighted=True)
        expected = _brute_force_mwc(g)
        assert exact_mwc(g) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_undirected_weighted_mwc_brute_force(self, seed):
        g = random_graph(seed, n=9, p=0.25, weighted=True)
        expected = _brute_force_mwc(g)
        assert exact_mwc(g) == expected


def _brute_force_mwc(g):
    """Exponential-time MWC via networkx simple cycle enumeration."""
    gnx = g.to_networkx()
    best = INF
    for cyc in nx.simple_cycles(gnx):
        if len(cyc) < (2 if g.directed else 3):
            continue
        w = 0
        ok = True
        for i in range(len(cyc)):
            u, v = cyc[i], cyc[(i + 1) % len(cyc)]
            if gnx.has_edge(u, v):
                w += gnx[u][v]["weight"]
            else:
                ok = False
                break
        if ok:
            best = min(best, w)
    return best


class TestCycleHelpers:
    def test_shortest_cycle_through_edge_directed(self):
        g = cycle_graph(5, directed=True)
        assert shortest_cycle_through_edge(g, 0, 1) == 5

    def test_shortest_cycle_through_edge_undirected_avoids_edge(self):
        g = cycle_graph(5)
        assert shortest_cycle_through_edge(g, 0, 1) == 5

    def test_mwc_through_vertex_directed(self):
        g = Graph(5, directed=True)
        # Two cycles through 0: 0->1->0 (len 2) and 0->2->3->0 (len 3).
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(0, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 0)
        g.add_edge(4, 0)  # connectivity
        assert mwc_through_vertex(g, 0) == 2
        assert mwc_through_vertex(g, 3) == 3

    def test_mwc_through_vertex_undirected(self):
        g = cycle_graph(6)
        g.add_edge(0, 2)
        assert mwc_through_vertex(g, 1) == 3
        assert mwc_through_vertex(g, 4) == 5

    def test_witness_is_valid_cycle(self):
        g = cycle_graph(6, directed=True)
        weight, cyc = mwc_witness(g)
        assert weight == 6
        assert cyc is not None and len(set(cyc)) == len(cyc)

    def test_witness_none_when_acyclic(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        weight, cyc = mwc_witness(g)
        assert weight == INF and cyc is None


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=6, max_value=16))
def test_property_mwc_lower_bounded_by_any_cycle_edge_bound(seed, n):
    """MWC is <= weight of the cycle closed through any single edge."""
    g = erdos_renyi(n, 0.3, directed=True, weighted=True, max_weight=6, seed=seed)
    mwc = exact_mwc(g)
    for u, v, w in g.edges():
        assert mwc <= shortest_cycle_through_edge(g, u, v)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_girth_unchanged_by_relabeling(seed):
    g = erdos_renyi(14, 0.2, seed=seed)
    mwc = exact_mwc(g)
    # Relabel vertices by a rotation; MWC is invariant.
    perm = [(v + 5) % g.n for v in range(g.n)]
    h = Graph(g.n)
    for u, v, _ in g.edges():
        h.add_edge(perm[u], perm[v])
    assert exact_mwc(h) == mwc
