"""Tests with W = poly(n) weights (the paper's weight-range convention).

The paper assumes integer weights in {0, ..., W} with W = poly(n) and a
Θ(log n)-bit bandwidth (an O(log(nW)) factor for general W); these tests
exercise the weighted machinery at W ~ n^2, where the scale ladder is at
its longest.
"""

import pytest

from repro.core.apsp import apsp_approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.ksource import k_source_sssp
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs import erdos_renyi
from repro.graphs.graph import INF
from repro.graphs.scaling import num_scales
from repro.sequential import all_pairs_shortest_paths, exact_mwc


def big_weight_graph(n, seed, directed=False):
    return erdos_renyi(n, 0.15, directed=directed, weighted=True,
                       max_weight=n * n, seed=seed)


class TestScaleLadderLength:
    def test_num_scales_grows_logarithmically(self):
        assert num_scales(10, 100) < num_scales(10, 10_000)
        # log2(h * W) + 1 scales.
        assert num_scales(16, 1 << 20) == 25


class TestExactWithLargeWeights:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("directed", [False, True])
    def test_exact_mwc(self, seed, directed):
        g = big_weight_graph(16, seed, directed=directed)
        assert exact_mwc_congest(g, seed=seed).value == exact_mwc(g)


class TestApproxWithLargeWeights:
    @pytest.mark.parametrize("seed", range(2))
    def test_undirected_weighted_mwc(self, seed):
        g = big_weight_graph(18, seed)
        true = exact_mwc(g)
        res = undirected_weighted_mwc_approx(g, eps=0.5, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true - 1e-6 <= res.value <= 2.5 * true + 1e-6
        # The ladder really is longer at large W.
        assert res.details["num_scales"] >= 10

    @pytest.mark.parametrize("seed", range(2))
    def test_directed_weighted_mwc(self, seed):
        g = big_weight_graph(14, seed, directed=True)
        true = exact_mwc(g)
        res = directed_weighted_mwc_approx(g, eps=0.5, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true - 1e-6 <= res.value <= 2.5 * true + 1e-6

    def test_apsp_approx_large_w(self):
        g = big_weight_graph(14, 5)
        res = apsp_approx(g, eps=0.5, seed=0)
        ref = all_pairs_shortest_paths(g)
        for u in range(g.n):
            for v in range(g.n):
                true = ref[u][v]
                got = res.distance(u, v)
                if true == INF:
                    assert got == INF
                else:
                    assert true - 1e-6 <= got <= 1.5 * true + 1e-6

    def test_ksource_sssp_large_w(self):
        g = big_weight_graph(16, 7, directed=True)
        sources = [0, 5, 10]
        res = k_source_sssp(g, sources, eps=0.5, seed=0)
        ref = all_pairs_shortest_paths(g)
        for u in sources:
            for v in range(g.n):
                true = ref[u][v]
                got = res.distance(u, v)
                if true != INF:
                    assert true - 1e-6 <= got <= 1.5 * true + 1e-6
