"""congestlint: every rule catches its fixture and stays silent on the twin.

Fixture pairs live inline as source snippets run through ``lint_source``
with paths chosen to land in the right path class (core algorithm,
simulator core, ...). The suite ends with the whole-repo gate: linting
``src/repro`` must produce zero non-baselined findings.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    diff_baseline,
    lint_source,
    load_baseline,
    run_lint,
    save_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default fixture path: an algorithm module (not simulator core).
ALGO = "src/repro/core/algo.py"


def findings_of(source, path=ALGO, rules=None):
    active, _ = lint_source(textwrap.dedent(source), path=path, rules=rules)
    return active


def rule_ids(source, path=ALGO, rules=None):
    return sorted({f.rule for f in findings_of(source, path, rules)})


class TestCL001CrossNodeState:
    def test_catches_network_access_in_node_program(self):
        src = """
            class Probe(NodeProgram):
                def on_round(self, view, inbox):
                    return {u: [net.state[u]["d"]] for u in view.neighbors}
        """
        assert "CL001" in rule_ids(src)

    def test_catches_module_level_mutable_global(self):
        src = """
            SHARED = {}

            class Probe(NodeProgram):
                def on_round(self, view, inbox):
                    SHARED[view.vertex] = inbox
                    return {}
        """
        assert "CL001" in rule_ids(src)

    def test_clean_twin_uses_only_local_view(self):
        src = """
            class Probe(NodeProgram):
                def on_round(self, view, inbox):
                    self.best = min(self.best, *inbox.get(0, [self.best]))
                    return {u: [(self.best, 1)] for u in view.neighbors}
        """
        assert "CL001" not in rule_ids(src)


class TestCL002AccountingBypass:
    def test_catches_direct_round_write(self):
        assert "CL002" in rule_ids("net.rounds += 5\n")

    def test_catches_stats_counter_write(self):
        assert "CL002" in rule_ids("net.stats.words = 0\n")

    def test_catches_record_step_and_raw_inbox(self):
        src = """
            net.stats.record_step(3)
            fake = BatchedInbox([0], [1], ["x"])
        """
        ids = [f.rule for f in findings_of(src)]
        assert ids.count("CL002") == 2

    def test_reads_are_fine_and_core_is_exempt(self):
        assert "CL002" not in rule_ids("total = net.stats.words\n")
        assert "CL002" not in rule_ids(
            "self.rounds += 1\n", path="src/repro/congest/network.py")


class TestCL003Nondeterminism:
    def test_catches_stdlib_random(self):
        assert "CL003" in rule_ids("import random\nx = random.randint(0, 9)\n")
        assert "CL003" in rule_ids("from random import shuffle\n")

    def test_catches_numpy_global_rng_and_unseeded_default_rng(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert "CL003" in rule_ids(src)
        assert "CL003" in rule_ids(
            "import numpy as np\nrng = np.random.default_rng()\n")

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(seed)\n"
        assert "CL003" not in rule_ids(src)

    def test_catches_wall_clock_in_algorithm(self):
        assert "CL003" in rule_ids("import time\nt = time.perf_counter()\n")

    def test_wall_clock_ok_in_obs_layer(self):
        assert "CL003" not in rule_ids(
            "import time\nt = time.perf_counter()\n",
            path="src/repro/obs/phases.py")

    def test_catches_set_iteration_feeding_send(self):
        src = """
            def step(net, out):
                for v in net.comm_neighbors(u):
                    out.send(u, v, payload)
        """
        assert "CL003" in rule_ids(src)

    def test_catches_comprehension_over_set(self):
        src = "msgs = {u: [(p, w)] for u in net.comm_neighbors(v)}\n"
        assert "CL003" in rule_ids(src)

    def test_sorted_iteration_is_clean(self):
        src = """
            def step(net, out):
                for v in sorted(net.comm_neighbors(u)):
                    out.send(u, v, payload)
                for v in net.comm_neighbors_sorted(u):
                    out.send(u, v, payload)
        """
        assert "CL003" not in rule_ids(src)

    def test_set_iteration_without_emission_is_clean(self):
        src = """
            def tally(net):
                count = 0
                for v in net.comm_neighbors(u):
                    count += 1
                return count
        """
        assert "CL003" not in rule_ids(src)


class TestCL004UnboundedPayload:
    def test_catches_container_send_without_words(self):
        src = """
            def step(out, vec):
                out.send(u, v, [1, 2, 3])
                out.send(u, v, dict(vec))
        """
        found = [f for f in findings_of(src) if f.rule == "CL004"]
        assert len(found) == 2

    def test_catches_container_tuple_charged_one_word(self):
        assert "CL004" in rule_ids("msg = ({1: 2, 3: 4}, 1)\n")

    def test_explicit_words_and_scalar_tuples_are_clean(self):
        src = """
            def step(out, vec):
                out.send(u, v, vec, max(1, len(vec)))
                out.send(u, v, dict(vec), words=len(vec))
                msg = ((u, depth), 1)
        """
        assert "CL004" not in rule_ids(src)


class TestCL005PhaseContract:
    def test_catches_unscoped_traffic_in_core_module(self):
        src = """
            def algo(net, outboxes):
                net.charge_rounds(3)
                return net.exchange(outboxes)
        """
        found = [f for f in findings_of(src) if f.rule == "CL005"]
        assert len(found) == 2

    def test_module_with_phase_scope_is_clean(self):
        src = """
            def algo(net, outboxes):
                with net.phase("probe"):
                    return net.exchange(outboxes)
        """
        assert "CL005" not in rule_ids(src)

    def test_rule_only_applies_to_core(self):
        src = "inboxes = net.exchange(outboxes)\n"
        assert "CL005" not in rule_ids(
            src, path="src/repro/congest/primitives/flood.py")


class TestCL006ExceptionSwallowing:
    def test_catches_bare_except_and_swallowed_exception(self):
        src = """
            try:
                risky()
            except:
                pass
            try:
                risky()
            except Exception:
                pass
        """
        found = [f for f in findings_of(src) if f.rule == "CL006"]
        assert len(found) == 2

    def test_named_handler_is_clean(self):
        src = """
            try:
                risky()
            except ValueError:
                recover()
        """
        assert "CL006" not in rule_ids(src)


class TestCL007InboxMutation:
    def test_catches_pop_del_and_assignment(self):
        src = """
            inbox.pop(u)
            del inboxes[v]
            inboxes[v] = []
        """
        found = [f for f in findings_of(src) if f.rule == "CL007"]
        assert len(found) == 3

    def test_reading_is_clean_and_core_is_exempt(self):
        assert "CL007" not in rule_ids("msgs = inboxes.get(v, {})\n")
        assert "CL007" not in rule_ids(
            "inboxes.setdefault(v, {})\n",
            path="src/repro/congest/network.py")


class TestCL008EngineGate:
    def test_catches_ungated_batched_exchange(self):
        src = """
            def step(net, batch):
                return net.exchange_batched(batch)
        """
        assert "CL008" in rule_ids(src)

    def test_gated_or_fallback_is_clean(self):
        src = """
            def gated(net, batch):
                if fast_path(net):
                    return net.exchange_batched(batch)
                return net.exchange(batch.to_outboxes())
        """
        assert "CL008" not in rule_ids(src)


class TestSuppressions:
    def test_inline_disable_mutes_one_rule(self):
        src = "net.rounds += 1  # congestlint: disable=CL002\n"
        active, muted = lint_source(src, path=ALGO)
        assert not active
        assert [f.rule for f in muted] == ["CL002"]

    def test_disable_all_and_other_rule_stays(self):
        src = "net.rounds += 1  # congestlint: disable=all\n"
        active, _ = lint_source(src, path=ALGO)
        assert not active
        src = "net.rounds += 1  # congestlint: disable=CL003\n"
        active, _ = lint_source(src, path=ALGO)
        assert [f.rule for f in active] == ["CL002"]

    def test_disable_file_in_header(self):
        src = ('"""Mod.\n\n# congestlint: disable-file=CL002\n"""\n'
               "net.rounds += 1\n")
        active, muted = lint_source(src, path=ALGO)
        assert not active and len(muted) == 1


class TestBaseline:
    def test_roundtrip_and_diff(self, tmp_path):
        src = "net.rounds += 1\nnet.stats.words = 0\n"
        active, _ = lint_source(src, path=ALGO)
        assert len(active) == 2
        path = str(tmp_path / "baseline.json")
        save_baseline(path, active)
        baseline = load_baseline(path)
        new, stale = diff_baseline(active, baseline)
        assert not new and not stale
        # Fixing one makes its entry stale; a fresh finding is new.
        new, stale = diff_baseline(active[:1], baseline)
        assert not new and len(stale) == 1
        save_baseline(path, [])
        new, _ = diff_baseline(active, load_baseline(path))
        assert len(new) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}


class TestWholeRepo:
    def test_src_repro_has_zero_non_baselined_findings(self):
        report = run_lint([os.path.join(REPO_ROOT, "src", "repro")],
                          root=REPO_ROOT)
        assert not report.errors
        baseline = load_baseline(os.path.join(REPO_ROOT, ".congestlint.json"))
        new, _ = diff_baseline(report.findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        assert report.files_checked > 50

    def test_fixed_modules_are_individually_clean(self):
        for rel in ("src/repro/congest/primitives/flood.py",
                    "src/repro/core/girth.py",
                    "src/repro/core/cycle_detection.py",
                    "src/repro/core/distances.py"):
            report = run_lint([os.path.join(REPO_ROOT, rel)], root=REPO_ROOT)
            assert not report.findings, rel


class TestCli:
    def run_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)

    @pytest.mark.slow
    def test_default_run_is_clean_exit_zero(self):
        proc = self.run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    @pytest.mark.slow
    def test_json_format_and_fail_on_new_gate(self):
        proc = self.run_cli("--format", "json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        proc = self.run_cli("--fail-on-new")
        assert proc.returncode == 0
        assert "0 new finding(s)" in proc.stdout

    @pytest.mark.slow
    def test_findings_exit_one_and_rule_filter(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("net.rounds += 1\n")
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert "CL002" in proc.stdout
        proc = self.run_cli("--rules", "CL003", str(bad))
        assert proc.returncode == 0
        proc = self.run_cli("--rules", "CL999", str(bad))
        assert proc.returncode == 2

    @pytest.mark.slow
    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rid in ("CL001", "CL004", "CL008"):
            assert rid in proc.stdout


class TestFixRegressions:
    """The violations congestlint surfaced were fixed *bit-identically*.

    Counters below were captured on the seed revision (before the
    sorted-iteration and phase-scope fixes) and must never move: sorting
    a frozenset emission loop reorders sends within a step but not the
    message multiset, link loads, or grouped-inbox sender order.
    """

    def _graphs(self):
        from repro.graphs import erdos_renyi
        return (erdos_renyi(40, 0.12, seed=3),
                erdos_renyi(36, 0.12, directed=True, seed=5))

    def _engines(self):
        import contextlib
        from repro.congest.batch import batching
        from repro.congest.kernels import kernels

        def scope(batch, kernel):
            stack = contextlib.ExitStack()
            stack.enter_context(batching(batch))
            stack.enter_context(kernels(kernel))
            return stack
        return [("dict", lambda: scope(False, False)),
                ("batch", lambda: scope(True, False)),
                ("kernel", lambda: scope(True, True))]

    def test_bfs_flood_unchanged_on_every_engine(self):
        from repro.congest.network import CongestNetwork
        from repro.congest.primitives.flood import build_bfs_tree
        g, _ = self._graphs()
        for name, scope in self._engines():
            with scope():
                net = CongestNetwork(g, seed=1)
                tree = build_bfs_tree(net, 0)
            got = (net.rounds, net.stats.messages, net.stats.words,
                   tuple(tree.parent[:8]))
            assert got == (6, 110, 110, (-1, 0, 4, 5, 21, 0, 4, 5)), name

    def test_girth_sketch_exchange_unchanged(self):
        from repro.core.girth import girth_2approx
        g, _ = self._graphs()
        for name, scope in self._engines():
            with scope():
                res = girth_2approx(g, seed=2)
            got = (res.value, res.rounds, res.stats.messages,
                   res.stats.words)
            assert got == (3.0, 77, 6260, 16820), name

    def test_restricted_bfs_vector_exchange_unchanged(self):
        from repro.core.directed_mwc import directed_mwc_2approx
        _, gd = self._graphs()
        for name, scope in self._engines():
            with scope():
                res = directed_mwc_2approx(gd, seed=2)
            got = (res.value, res.rounds, res.stats.messages,
                   res.stats.words)
            assert got == (2, 890, 32646, 44374), name

    def test_phase_scope_fixes_unchanged_and_attributed(self):
        from repro.congest.network import CongestNetwork
        from repro.core.cycle_detection import (
            detect_two_cycle_on,
            shortest_cycle_within,
        )
        from repro.core.distances import distance_summary
        from repro.obs import observing
        g, gd = self._graphs()

        res = shortest_cycle_within(gd, 6, seed=0)
        assert (res.value, res.rounds, res.stats.messages) == (2, 44, 7182)

        net = CongestNetwork(gd, seed=0)
        found, rounds = detect_two_cycle_on(net)
        assert (found, rounds, net.stats.messages, net.stats.words) \
            == (True, 9, 392, 392)

        summary = distance_summary(g, seed=0)
        assert (summary.radius, summary.diameter, summary.rounds,
                summary.stats.messages) == (3.0, 4.0, 107, 10936)

        # The new phase scopes actually attribute the traffic.
        with observing():
            net = CongestNetwork(gd, seed=0, metrics=True)
            detect_two_cycle_on(net)
            assert "two-cycle-probe" in net.phase_report()
