"""Machine checks of the paper's structural lemmas on random instances.

These tests verify, against exact sequential distances, the facts the
algorithms' correctness proofs rest on:

* **Fact 1** (Lemma 5.1 of [13]): if C is a minimum weight cycle through v
  and y and ``d(y,t) + 2 d(v,y) >= d(t,y) + 2 d(v,t)``, then some cycle
  through t and v has weight at most 2 w(C).
* **Lemma 3.2**: P(v) induces a connected subgraph of the shortest-path
  out-tree rooted at v — i.e. every vertex on a shortest path to a member
  of P(v) is itself in P(v).
* **Lemma 3.3 (ii)**: sum_v |P(v)| = sum_u |P^{-1}(u)|, so few vertices can
  be bottlenecks when the P(v) are small.
* The girth candidate inequality of §4: a BFS candidate
  ``d(w,x) + d(w,y) + 1`` over a non-backtracking edge never undershoots
  the girth, and when w lies on a minimum cycle it is exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.restricted_bfs import build_rv, membership_test, partition_sample
from repro.graphs import Graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import (
    bfs_distances,
    distances,
    exact_girth,
    exact_mwc,
    k_source_distances,
)
from repro.sequential.mwc import mwc_through_vertex


def cycles_through_pair(g: Graph, a: int, b: int) -> float:
    """Weight of the lightest directed cycle through both a and b (exact).

    min over simple structures d(a,b) + d(b,a); for the Fact 1 check this
    closed-walk value is exactly the quantity "minimum weight cycle
    containing t and v" is compared against in the paper's usage (the walk
    contains a cycle and the proof's inequality chain bounds the walk).
    """
    return distances(g, a)[b] + distances(g, b)[a]


class TestFact1:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fact1_on_random_digraphs(self, seed):
        g = erdos_renyi(16, 0.25, directed=True, seed=seed)
        if exact_mwc(g) == INF:
            return
        d = k_source_distances(g, range(g.n))
        for v in range(g.n):
            w_c_v = mwc_through_vertex(g, v)
            if w_c_v == INF:
                continue
            for y in range(g.n):
                if y == v:
                    continue
                # Only pairs where some minimum cycle through v contains y:
                # approximated by checking the closed walk through v and y
                # equals w(C); Fact 1's hypothesis needs y on the cycle.
                if d[v][y] + d[y][v] != w_c_v:
                    continue
                for t in range(g.n):
                    if t in (v, y):
                        continue
                    if any(d[a][b] == INF for a, b in
                           [(y, t), (v, y), (t, y), (v, t)]):
                        continue
                    if d[y][t] + 2 * d[v][y] >= d[t][y] + 2 * d[v][t]:
                        through_tv = cycles_through_pair(g, t, v)
                        assert through_tv <= 2 * w_c_v + 1e-9, (
                            seed, v, y, t, through_tv, w_c_v)


def compute_pv(g: Graph, v: int, rv, d):
    """P(v) by Definition 3.1 from exact distances."""
    out = []
    for y in range(g.n):
        ok = True
        for t in rv:
            lhs = d[y][t] + 2 * d[v][y]
            rhs = d[t][y] + 2 * d[v][t]
            if not lhs <= rhs:
                ok = False
                break
        if ok:
            out.append(y)
    return out


class TestLemma32:
    @pytest.mark.parametrize("seed", range(8))
    def test_pv_connected_in_shortest_path_tree(self, seed):
        g = erdos_renyi(18, 0.2, directed=True, seed=seed)
        rng = np.random.default_rng(seed)
        d = k_source_distances(g, range(g.n))
        S = sorted(rng.choice(g.n, size=6, replace=False).tolist())
        parts = partition_sample(S, 3, rng)
        pair = {(s, t): d[s][t] for s in S for t in S}
        for v in range(g.n):
            d_v_to = {s: d[v][s] for s in S}
            d_to_v = {s: d[s][v] for s in S}
            rv = build_rv(v, parts, d_v_to, d_to_v, pair, rng)
            pv = set(compute_pv(g, v, rv, d))
            # Lemma 3.2: every z on a shortest v->y path with y in P(v) is
            # in P(v). Check via the distance identity d(v,y)=d(v,z)+d(z,y).
            for y in pv:
                if d[v][y] == INF:
                    continue
                for z in range(g.n):
                    if d[v][z] == INF or d[z][y] == INF:
                        continue
                    if d[v][z] + d[z][y] == d[v][y]:
                        assert z in pv, (seed, v, y, z, rv)


class TestLemma33Counting:
    @pytest.mark.parametrize("seed", range(4))
    def test_double_counting_identity(self, seed):
        g = erdos_renyi(16, 0.25, directed=True, seed=seed)
        rng = np.random.default_rng(seed)
        d = k_source_distances(g, range(g.n))
        S = sorted(rng.choice(g.n, size=5, replace=False).tolist())
        parts = partition_sample(S, 2, rng)
        pair = {(s, t): d[s][t] for s in S for t in S}
        pvs = []
        for v in range(g.n):
            rv = build_rv(v, parts, {s: d[v][s] for s in S},
                          {s: d[s][v] for s in S}, pair, rng)
            pvs.append(set(compute_pv(g, v, rv, d)))
        p_inv = [sum(1 for v in range(g.n) if u in pvs[v]) for u in range(g.n)]
        assert sum(len(p) for p in pvs) == sum(p_inv)


class TestMembershipAgainstDefinition:
    @pytest.mark.parametrize("seed", range(6))
    def test_membership_test_matches_definition(self, seed):
        g = erdos_renyi(15, 0.25, directed=True, seed=seed)
        rng = np.random.default_rng(seed)
        d = k_source_distances(g, range(g.n))
        S = sorted(rng.choice(g.n, size=4, replace=False).tolist())
        for v in range(g.n):
            rv = list(S[:2])
            d_y_to_R = {t: d[v][t] for t in rv}
            for u in range(g.n):
                if d[v][u] == INF:
                    continue
                got = membership_test(
                    u, d[v][u], rv, d_y_to_R,
                    {t: d[u][t] for t in S}, {t: d[t][u] for t in S},
                )
                expected = all(
                    d[u][t] + 2 * d[v][u] <= d[t][u] + 2 * d[v][t]
                    for t in rv
                )
                assert got == expected, (seed, v, u)


class TestGirthCandidates:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_candidates_never_undershoot(self, seed):
        g = erdos_renyi(14, 0.25, seed=seed)
        girth = exact_girth(g)
        if girth == INF:
            return
        for w in range(g.n):
            dist = bfs_distances(g, w)
            # Parent assignment: smallest-id neighbor one level up.
            parent = {}
            for v in range(g.n):
                if dist[v] not in (0, INF):
                    parent[v] = min(
                        u for u in g.neighbors(v) if dist[u] == dist[v] - 1)
            for x, y, _ in g.edges():
                if dist[x] == INF or dist[y] == INF:
                    continue
                if parent.get(x) == y or parent.get(y) == x:
                    continue
                assert dist[x] + dist[y] + 1 >= girth

    @pytest.mark.parametrize("n", [5, 8, 13])
    def test_candidate_exact_when_source_on_cycle(self, n):
        from repro.graphs import cycle_graph
        g = cycle_graph(n)
        for w in range(n):
            dist = bfs_distances(g, w)
            parent = {}
            for v in range(g.n):
                if dist[v] != 0:
                    parent[v] = min(
                        u for u in g.neighbors(v) if dist[u] == dist[v] - 1)
            candidates = [
                dist[x] + dist[y] + 1
                for x, y, _ in g.edges()
                if parent.get(x) != y and parent.get(y) != x
            ]
            # Exactly the antipodal meeting edge(s) survive; candidate = n.
            assert candidates and min(candidates) == n
