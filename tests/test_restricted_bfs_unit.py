"""Direct unit tests of the Algorithm 3 machinery (restricted BFS).

Complements the end-to-end Algorithm 2 tests: here the subroutine is driven
in isolation with exact distance inputs so each mechanism — restriction to
P(v), phase scheduling, overflow detection, weighted traversal — can be
observed directly.
"""

import pytest

from repro.congest import CongestNetwork
from repro.core.restricted_bfs import (
    RestrictedBfsParams,
    restricted_bfs,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import exact_mwc, k_source_distances


def exact_inputs(g, S):
    """Exact distance inputs as Algorithm 2 would provide them."""
    d = k_source_distances(g, range(g.n))
    d_from_s = [{s: d[s][v] for s in S if d[s][v] != INF} for v in range(g.n)]
    d_to_s = [{s: d[v][s] for s in S if d[v][s] != INF} for v in range(g.n)]
    pair = {(s, t): d[s][t] for s in S for t in S if d[s][t] != INF}
    return d_from_s, d_to_s, pair


def run(g, S, seed=0, **kw):
    net = CongestNetwork(g, seed=seed)
    d_from_s, d_to_s, pair = exact_inputs(g, S)
    params = kw.pop("params", None) or RestrictedBfsParams(
        h=g.n, rho=max(4, g.n // 2), cap=8, beta=2)
    return net, restricted_bfs(net, S, d_from_s, d_to_s, pair, params, **kw)


class TestBasicDiscovery:
    def test_finds_short_cycle_without_samples_on_it(self):
        # Triangle 0-1-2 plus a tail; sample only the tail so the triangle
        # must be found by the restricted BFS itself.
        g = Graph(6, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        net, out = run(g, S=[5])
        assert min(out.mu) == 3

    def test_acyclic_graph_finds_nothing(self):
        g = Graph(5, directed=True)
        for i in range(4):
            g.add_edge(i, i + 1)
        net, out = run(g, S=[4])
        assert min(out.mu) == INF

    @pytest.mark.parametrize("seed", range(4))
    def test_mu_values_are_real_cycle_weights(self, seed):
        g = erdos_renyi(20, 0.15, directed=True, seed=seed)
        true = exact_mwc(g)
        net, out = run(g, S=[0, 5], seed=seed)
        finite = [m for m in out.mu if m != INF]
        for m in finite:
            assert m >= true  # every recorded value is a closed directed walk

    def test_rv_size_bounded_by_beta(self):
        g = erdos_renyi(24, 0.2, directed=True, seed=1)
        net, out = run(g, S=list(range(0, 24, 4)))
        assert all(len(rv) <= 2 for rv in out.rv)  # beta = 2


class TestOverflowMachinery:
    def test_small_cap_triggers_overflow_on_hub(self):
        # Star-of-cycles through a hub: the hub is in P(v) for everyone.
        n = 24
        g = Graph(n, directed=True)
        for v in range(1, n):
            g.add_edge(0, v)
            g.add_edge(v, 0)
        params = RestrictedBfsParams(h=n, rho=8, cap=2, beta=2)
        net, out = run(g, S=[1], params=params)
        assert out.details["overflow_count"] >= 1
        # Correctness survives: 2-cycles through the hub still found via the
        # overflow BFS (weight 2).
        assert min(out.mu) == 2

    def test_caps_disabled_no_overflow(self):
        n = 24
        g = Graph(n, directed=True)
        for v in range(1, n):
            g.add_edge(0, v)
            g.add_edge(v, 0)
        params = RestrictedBfsParams(h=n, rho=8, cap=2, beta=2)
        net, out = run(g, S=[1], params=params, enforce_caps=False)
        assert out.details["overflow_count"] == 0
        assert min(out.mu) == 2


class TestWeightedTraversal:
    def test_scaled_weights_delay_and_weight_cycles(self):
        g = cycle_graph(5, directed=True)
        heavy = g.with_weights(lambda u, v, w: 3)
        params = RestrictedBfsParams(h=20, rho=8, cap=8, beta=2)
        net = CongestNetwork(g, seed=0)
        d_from_s, d_to_s, pair = exact_inputs(heavy, [0])
        out = restricted_bfs(net, [0], d_from_s, d_to_s, pair, params,
                             weight_graph=heavy, trunc=20)
        assert min(out.mu) == 15  # 5 edges of scaled weight 3

    def test_budget_excludes_heavy_cycles(self):
        g = cycle_graph(5, directed=True)
        heavy = g.with_weights(lambda u, v, w: 3)
        params = RestrictedBfsParams(h=10, rho=8, cap=8, beta=2)
        net = CongestNetwork(g, seed=0)
        d_from_s, d_to_s, pair = exact_inputs(heavy, [0])
        out = restricted_bfs(net, [0], d_from_s, d_to_s, pair, params,
                             weight_graph=heavy, trunc=10)
        assert min(out.mu) == INF  # cycle weight 15 > budget 10


class TestPhaseAccounting:
    def test_rounds_bounded_by_phase_budget(self):
        g = erdos_renyi(24, 0.15, directed=True, seed=2)
        params = RestrictedBfsParams(h=10, rho=12, cap=4, beta=2)
        net, _ = run(g, S=[0, 6], params=params)
        # (h + rho) phases, each at most ~cap * message words rounds, plus
        # the neighbor exchange and overflow BFS.
        phase_budget = (10 + 12) * (4 * 8) + 20 * g.n
        assert net.rounds <= phase_budget

    def test_distances_consistent_with_graph(self):
        g = erdos_renyi(18, 0.2, directed=True, seed=3)
        d = k_source_distances(g, range(g.n))
        net, out = run(g, S=[0])
        for v in range(g.n):
            for y, dist_yv in out.dist[v].items():
                assert dist_yv >= d[y][v]  # restricted => never shorter
