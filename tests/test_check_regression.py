"""The benchmark regression gate actually gates.

Exercises ``benchmarks/check_regression.py`` in its file-vs-file mode: a
clean copy of the committed baseline passes, an injected 25% round-count
regression (or a 3x wall-clock blowup, or a silently vanished sweep point)
exits non-zero, and unusable inputs exit with the usage code.
"""

import copy
import json
import os
import sys

import pytest

BENCHMARKS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")
BASELINE = os.path.join(BENCHMARKS, "results", "BENCH_SIMCORE.json")
RESILIENCE_BASELINE = os.path.join(BENCHMARKS, "results",
                                   "BENCH_RESILIENCE.json")

if BENCHMARKS not in sys.path:
    sys.path.insert(0, BENCHMARKS)

import check_regression  # noqa: E402

pytestmark = pytest.mark.fast


@pytest.fixture()
def baseline_payload():
    with open(BASELINE) as f:
        return json.load(f)


def _write(tmp_path, name, payload):
    path = str(tmp_path / name)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


def test_committed_baseline_passes_against_itself(tmp_path, baseline_payload,
                                                  capsys):
    fresh = _write(tmp_path, "fresh.json", baseline_payload)
    assert check_regression.main(["--fresh", fresh]) == 0
    out = capsys.readouterr().out
    assert "all checks passed" in out
    assert "FAIL" not in out


def test_injected_25pct_round_regression_fails(tmp_path, baseline_payload,
                                               capsys):
    regressed = copy.deepcopy(baseline_payload)
    victim = regressed["rows"][0]
    victim["rounds"] = int(round(victim["rounds"] * 1.25))
    fresh = _write(tmp_path, "regressed.json", regressed)
    assert check_regression.main(["--fresh", fresh]) == 1
    out = capsys.readouterr().out
    assert "FAIL: rounds" in out


def test_regression_within_tolerance_passes(tmp_path, baseline_payload):
    drifted = copy.deepcopy(baseline_payload)
    victim = drifted["rows"][0]
    victim["rounds"] = int(round(victim["rounds"] * 1.25))
    fresh = _write(tmp_path, "drifted.json", drifted)
    assert check_regression.main(
        ["--fresh", fresh, "--max-round-drift", "0.5"]) == 0


def test_wall_clock_blowup_fails(tmp_path, baseline_payload, capsys):
    slow = copy.deepcopy(baseline_payload)
    for row in slow["rows"]:
        for field in list(row.get("extra", {})):
            if field.endswith("_seconds"):
                row["extra"][field] = float(row["extra"][field]) * 3.0
    fresh = _write(tmp_path, "slow.json", slow)
    assert check_regression.main(["--fresh", fresh]) == 1
    assert "FAIL: wall clock" in capsys.readouterr().out


def test_missing_sweep_point_fails(tmp_path, baseline_payload, capsys):
    truncated = copy.deepcopy(baseline_payload)
    truncated["rows"] = truncated["rows"][1:]
    fresh = _write(tmp_path, "truncated.json", truncated)
    assert check_regression.main(["--fresh", fresh]) == 1
    assert "missing baseline points" in capsys.readouterr().out


def test_missing_files_exit_with_usage_code(tmp_path, baseline_payload):
    fresh = _write(tmp_path, "fresh.json", baseline_payload)
    assert check_regression.main(
        ["--baseline", str(tmp_path / "nope.json"), "--fresh", fresh]) == 2
    assert check_regression.main(
        ["--fresh", str(tmp_path / "nope.json")]) == 2


def test_resilience_suite_passes_and_gates(tmp_path, capsys):
    with open(RESILIENCE_BASELINE) as f:
        payload = json.load(f)
    fresh = _write(tmp_path, "fresh.json", payload)
    assert check_regression.main(
        ["--suite", "resilience", "--fresh", fresh]) == 0
    assert "all checks passed" in capsys.readouterr().out
    regressed = copy.deepcopy(payload)
    regressed["rows"][0]["rounds"] = int(
        round(regressed["rows"][0]["rounds"] * 1.25))
    bad = _write(tmp_path, "regressed.json", regressed)
    assert check_regression.main(
        ["--suite", "resilience", "--fresh", bad]) == 1
    assert "FAIL: rounds" in capsys.readouterr().out


def test_all_suite_rejects_single_file_overrides(tmp_path, baseline_payload,
                                                 capsys):
    fresh = _write(tmp_path, "fresh.json", baseline_payload)
    assert check_regression.main(["--suite", "all", "--fresh", fresh]) == 2
    assert "single suite" in capsys.readouterr().err


def test_row_indexing_and_wall_totals(baseline_payload):
    rows = check_regression.rows_by_key(baseline_payload)
    assert rows, "committed baseline has no rows"
    for (workload, n), row in rows.items():
        assert row["n"] == n
        assert row["extra"]["workload"] == workload
    assert check_regression.wall_seconds(baseline_payload) > 0.0
