"""Tests for §5: (2+eps)-approximate weighted MWC (Thms 1.4.C, 1.2.D)."""

import pytest

from repro.core.weighted_mwc import directed_weighted_mwc_approx, undirected_weighted_mwc_approx
from repro.graphs import Graph, cycle_graph, erdos_renyi, planted_mwc
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_mwc

EPS = 0.5


def check(g, res, eps=EPS, slack=1e-6):
    true = exact_mwc(g)
    if true == INF:
        assert res.value == INF
    else:
        assert true - slack <= res.value <= (2 + eps) * true + slack, (
            true, res.value)
    return true


class TestUndirectedWeighted:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = erdos_renyi(30, 0.1, weighted=True, max_weight=8, seed=seed)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=seed)
        check(g, res)

    def test_weighted_cycle_exact_family(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        g = cycle_graph(8, weighted=True, weights=weights)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=0)
        true = sum(weights)
        assert true <= res.value <= (2 + EPS) * true

    def test_light_triangle_among_heavy_edges(self):
        g = erdos_renyi(24, 0.12, weighted=True, max_weight=60, seed=3)
        # Plant a light triangle.
        for u, v in [(0, 1), (1, 2), (2, 0)]:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            g.add_edge(u, v, 1)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=1)
        true = check(g, res)
        assert true == 3

    @pytest.mark.parametrize("seed", range(4))
    def test_many_seeds(self, seed):
        g = erdos_renyi(26, 0.12, weighted=True, max_weight=10, seed=77)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=seed)
        check(g, res)

    def test_acyclic_tree(self):
        g = Graph(6, weighted=True)
        for i in range(1, 6):
            g.add_edge(i, (i - 1) // 2, 2)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=0)
        assert res.value == INF

    def test_rejects_directed_input(self):
        g = cycle_graph(5, directed=True, weighted=True, weights=[1] * 5)
        with pytest.raises(GraphError):
            undirected_weighted_mwc_approx(g, seed=0)

    def test_rejects_unweighted_input(self):
        with pytest.raises(GraphError):
            undirected_weighted_mwc_approx(cycle_graph(5), seed=0)

    def test_rejects_zero_weights(self):
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 1)
        g.add_edge(2, 0, 1)
        with pytest.raises(GraphError):
            undirected_weighted_mwc_approx(g, seed=0)

    def test_tighter_eps_tightens_bound(self):
        g = erdos_renyi(22, 0.15, weighted=True, max_weight=6, seed=5)
        res = undirected_weighted_mwc_approx(g, eps=0.25, seed=0)
        check(g, res, eps=0.25)

    def test_details_recorded(self):
        g = erdos_renyi(20, 0.15, weighted=True, max_weight=4, seed=6)
        res = undirected_weighted_mwc_approx(g, eps=EPS, seed=0)
        for key in ("h", "sample_size", "rounds_long", "rounds_short",
                    "num_scales", "rounds_total"):
            assert key in res.details


class TestDirectedWeighted:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_digraphs(self, seed):
        g = erdos_renyi(24, 0.12, directed=True, weighted=True, max_weight=8,
                        seed=seed)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=seed)
        check(g, res)

    def test_planted_light_cycle(self):
        g = planted_mwc(24, cycle_len=3, p=0.05, directed=True, weighted=True,
                        cycle_weight=1, background_weight=40, seed=2)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=1)
        true = check(g, res)
        assert true == 3

    def test_single_directed_weighted_cycle(self):
        weights = [2, 7, 1, 8, 2, 8]
        g = cycle_graph(6, directed=True, weighted=True, weights=weights)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=0)
        true = sum(weights)
        assert true <= res.value <= (2 + EPS) * true

    def test_acyclic_dag(self):
        g = Graph(6, directed=True, weighted=True)
        for i in range(5):
            g.add_edge(i, i + 1, 3)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=0)
        assert res.value == INF

    def test_rejects_undirected_input(self):
        g = cycle_graph(5, weighted=True, weights=[1] * 5)
        with pytest.raises(GraphError):
            directed_weighted_mwc_approx(g, seed=0)

    @pytest.mark.parametrize("seed", range(4))
    def test_many_seeds(self, seed):
        g = erdos_renyi(22, 0.15, directed=True, weighted=True, max_weight=9,
                        seed=88)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=seed)
        check(g, res)

    def test_two_cycle_with_weights(self):
        g = Graph(5, directed=True, weighted=True)
        g.add_edge(0, 1, 4)
        g.add_edge(1, 0, 3)
        g.add_edge(1, 2, 1)
        g.add_edge(2, 3, 1)
        g.add_edge(3, 4, 1)
        res = directed_weighted_mwc_approx(g, eps=EPS, seed=0)
        assert 7 <= res.value <= (2 + EPS) * 7
