"""Unit tests for the repro.obs observability layer.

Registry instruments, the gating contextmanager, phase-accumulator
arithmetic, the network integration surface, and JSONL emission. The
statistical invariants (exact attribution under random workloads) live in
test_conformance.py; these are the direct behavioural contracts.
"""

import json

import pytest

from repro.congest import CongestNetwork
from repro.graphs import cycle_graph
from repro.obs import (
    METRICS_ENV,
    MetricsRegistry,
    NULL_PHASE,
    PhaseAccumulator,
    UNSCOPED,
    aggregate_phases,
    counter,
    emit_jsonl,
    get_registry,
    histogram,
    metrics_enabled,
    metrics_record,
    observing,
    read_jsonl,
    summarize_phases,
)
from repro.obs.registry import NULL


pytestmark = pytest.mark.fast


class TestRegistry:
    def test_counter_gauge_histogram_timer(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        g = reg.gauge("g")
        g.set(7)
        h = reg.histogram("h")
        for v in (1, 2, 3):
            h.observe(v)
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 7
        assert snap["h"]["count"] == 3
        assert snap["h"]["min"] == 1 and snap["h"]["max"] == 3
        assert snap["h"]["mean"] == pytest.approx(2.0)
        assert snap["t"]["count"] == 1
        assert snap["t"]["seconds"] >= 0.0

    def test_get_or_create_is_idempotent_but_kind_clash_raises(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_reset_clears_instruments(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert len(reg) == 1 and "x" in reg
        reg.reset()
        assert len(reg) == 0 and "x" not in reg

    def test_module_accessors_return_null_when_disabled(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert not metrics_enabled()
        assert counter("nope") is NULL
        assert histogram("nope") is NULL
        # NULL swallows every instrument operation, including timing scopes.
        NULL.inc()
        NULL.set(3)
        NULL.observe(1)
        with NULL:
            pass

    def test_observing_enables_and_restores(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert not metrics_enabled()
        with observing():
            assert metrics_enabled()
            c = counter("obs.test.counter")
            assert c is not NULL
            c.inc()
            assert get_registry().snapshot()["obs.test.counter"]["value"] == 1
        assert not metrics_enabled()

    def test_observing_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv(METRICS_ENV, "1")
        assert metrics_enabled()
        with observing(False):
            assert not metrics_enabled()
        assert metrics_enabled()

    def test_timer_accumulates_across_scopes(self):
        reg = MetricsRegistry()
        t = reg.timer("t")
        with t:
            pass
        with t:
            pass
        assert reg.snapshot()["t"]["count"] == 2


class TestPhaseAccumulator:
    def test_attribution_and_nesting(self):
        acc = PhaseAccumulator((0, 0, 0, 0, 0.0))
        acc.enter("a", (0, 0, 0, 0, 0.0))
        acc.enter("b", (2, 1, 5, 5, 0.0))      # 2 rounds inside "a"
        acc.exit((5, 2, 8, 9, 0.0))            # 3 rounds inside "a/b"
        acc.exit((6, 3, 9, 10, 0.0))           # 1 round in "a" tail
        report = acc.report((8, 4, 10, 12, 0.0))  # 2 unscoped rounds
        assert report["a"]["rounds"] == 3
        assert report["a/b"]["rounds"] == 3
        assert report[UNSCOPED]["rounds"] == 2
        assert sum(b["rounds"] for b in report.values()) == 8
        assert sum(b["words"] for b in report.values()) == 12
        assert report["a"]["entries"] == 1
        assert report["a/b"]["entries"] == 1

    def test_idle_time_outside_phases_is_not_attributed(self):
        acc = PhaseAccumulator((0, 0, 0, 0, 0.0))
        # Wall clock advances but no counters move and no phase is open:
        # nothing should be recorded anywhere.
        report = acc.report((0, 0, 0, 0, 5.0))
        assert report == {}

    def test_pure_wall_time_inside_phase_is_attributed(self):
        acc = PhaseAccumulator((0, 0, 0, 0, 0.0))
        acc.enter("think", (0, 0, 0, 0, 0.0))
        acc.exit((0, 0, 0, 0, 2.5))
        report = acc.report((0, 0, 0, 0, 2.5))
        assert report["think"]["seconds"] == pytest.approx(2.5)
        assert report["think"]["rounds"] == 0


class TestNetworkIntegration:
    def test_disabled_network_returns_null_phase_and_empty_report(self):
        net = CongestNetwork(cycle_graph(6), metrics=False)
        assert not net.metrics_active
        assert net.phase("anything") is NULL_PHASE
        assert net.phase_report() == {}

    def test_ambient_gate_controls_new_networks(self):
        with observing():
            net = CongestNetwork(cycle_graph(6))
            assert net.metrics_active
        net2 = CongestNetwork(cycle_graph(6))
        assert not net2.metrics_active

    def test_enable_metrics_is_idempotent_and_starts_fresh(self):
        net = CongestNetwork(cycle_graph(6), metrics=False)
        net.exchange({0: {1: [("pre", 1)]}})
        net.enable_metrics()
        acc = net._phases
        net.enable_metrics()
        assert net._phases is acc  # second call is a no-op
        with net.phase("p"):
            net.exchange({1: {2: [("in", 1)]}})
        report = net.phase_report()
        # Pre-enable traffic is invisible; only the scoped step shows up.
        assert sum(b["rounds"] for b in report.values()) == 1
        assert report["p"]["messages"] == 1

    def test_reset_accounting_resets_phase_baseline(self):
        net = CongestNetwork(cycle_graph(6), metrics=True)
        net.exchange({0: {1: [("x", 1)]}})
        net.reset_accounting()
        with net.phase("after"):
            net.exchange({0: {1: [("y", 1)]}})
        report = net.phase_report()
        assert sum(b["rounds"] for b in report.values()) == net.rounds == 1
        assert report["after"]["rounds"] == 1

    def test_exception_inside_phase_still_closes_scope(self):
        net = CongestNetwork(cycle_graph(6), metrics=True)
        with pytest.raises(RuntimeError):
            with net.phase("boom"):
                net.exchange({0: {1: [("x", 1)]}})
                raise RuntimeError("boom")
        net.exchange({1: {2: [("y", 1)]}})
        report = net.phase_report()
        assert report["boom"]["rounds"] == 1
        assert report[UNSCOPED]["rounds"] == 1


class TestEmission:
    def test_emit_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        emit_jsonl({"label": "a", "rounds": 3}, path)
        emit_jsonl({"label": "b", "rounds": 4}, path)
        records = read_jsonl(path)
        assert [r["label"] for r in records] == ["a", "b"]

    def test_emit_requires_a_sink(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
        with pytest.raises(ValueError):
            emit_jsonl({"label": "x"})

    def test_emit_uses_env_sink(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_METRICS_PATH", path)
        assert emit_jsonl({"label": "x"}) == path
        assert read_jsonl(path)[0]["label"] == "x"

    def test_read_rejects_invalid_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))

    def test_metrics_record_from_network(self):
        net = CongestNetwork(cycle_graph(6), metrics=True)
        with net.phase("p"):
            net.exchange({0: {1: [("x", 1)]}})
        reg = MetricsRegistry()
        reg.counter("calls").inc()
        record = metrics_record("lbl", net=net, registry=reg,
                                extra={"n": 6})
        assert record["label"] == "lbl"
        assert record["rounds"] == 1
        assert record["stats"]["messages"] == 1
        assert record["phases"]["p"]["rounds"] == 1
        assert record["metrics"]["calls"]["value"] == 1
        assert record["n"] == 6
        # Records are JSON-serializable as-is (the JSONL contract).
        json.loads(json.dumps(record))

    def test_aggregate_and_summarize(self):
        records = [
            {"phases": {"a": {"rounds": 2, "steps": 1, "messages": 3,
                              "words": 3, "seconds": 0.1, "entries": 1}}},
            {"phases": {"a": {"rounds": 1, "steps": 1, "messages": 1,
                              "words": 1, "seconds": 0.1, "entries": 1}},
             "label": "x"},
        ]
        totals = aggregate_phases(records)
        assert totals["a"]["rounds"] == 3
        text = summarize_phases(records)
        assert "a" in text and "rounds" in text
        assert summarize_phases([]) == "(no phase data)"
