"""Property-based simulator conformance suite (hypothesis).

Invariants of the accounting core under random multi-step workloads, on
both the dict and the batched exchange paths:

* the link-load histogram partitions the steps counter exactly;
* word totals dominate message totals (every message is >= 1 word);
* round counts compose additively across plans (accounting is memoryless);
* phase-scoped attribution partitions the flat counters exactly — for
  arbitrary nesting scripts, under faults, and with identical flat totals
  whether metrics are on or off.
"""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork
from repro.congest.batch import BatchedOutbox
from repro.congest.faults import FaultPlan, FaultyNetwork
from repro.obs import UNSCOPED

from tests.strategies import connected_graphs, message_plans, phase_scripts

pytestmark = pytest.mark.fast

FLAT_KEYS = ("rounds", "steps", "messages", "words")


def _flat(net):
    s = net.stats
    return {"rounds": net.rounds, "steps": s.steps,
            "messages": s.messages, "words": s.words}


def _run_step(net, outboxes, batched):
    if not outboxes:
        return
    if batched:
        batch = BatchedOutbox()
        for u in sorted(outboxes):
            for v in sorted(outboxes[u]):
                for payload, words in outboxes[u][v]:
                    batch.send(u, v, payload, words)
        net.exchange_batched(batch)
    else:
        net.exchange(outboxes)


def _run_plan(net, plan, batched=False):
    for outboxes in plan:
        _run_step(net, outboxes, batched)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_histogram_partitions_steps_and_words_dominate_messages(data):
    g = data.draw(connected_graphs(min_n=6, max_n=16))
    plan = data.draw(message_plans(g))
    for batched in (False, True):
        net = CongestNetwork(g)
        _run_plan(net, plan, batched=batched)
        hist = net.stats.link_load_histogram
        assert sum(hist.values()) == net.stats.steps
        assert all(load >= 1 for load in hist)
        assert net.stats.words >= net.stats.messages


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_rounds_compose_additively_across_plans(data):
    g = data.draw(connected_graphs(min_n=6, max_n=14))
    plan_a = data.draw(message_plans(g, max_steps=3))
    plan_b = data.draw(message_plans(g, max_steps=3))
    whole = CongestNetwork(g)
    _run_plan(whole, plan_a)
    _run_plan(whole, plan_b)
    part_a = CongestNetwork(g)
    _run_plan(part_a, plan_a)
    part_b = CongestNetwork(g)
    _run_plan(part_b, plan_b)
    assert whole.rounds == part_a.rounds + part_b.rounds
    assert whole.stats.steps == part_a.stats.steps + part_b.stats.steps
    assert whole.stats.words == part_a.stats.words + part_b.stats.words


def _run_script(net, script, batched=False):
    for path, outboxes in script:
        with contextlib.ExitStack() as stack:
            for name in path:
                stack.enter_context(net.phase(name))
            _run_step(net, outboxes, batched)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_phase_attribution_partitions_flat_totals_exactly(data):
    """The tentpole exactness contract: buckets sum to the flat counters."""
    g = data.draw(connected_graphs(min_n=6, max_n=14))
    script = data.draw(phase_scripts(g))
    for batched in (False, True):
        net = CongestNetwork(g, metrics=True)
        _run_script(net, script, batched=batched)
        report = net.phase_report()
        flat = _flat(net)
        for key in FLAT_KEYS:
            assert sum(b[key] for b in report.values()) == flat[key], key


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_phase_attribution_exact_under_faults(data):
    """Drops and duplicates change wire traffic; attribution stays exact."""
    g = data.draw(connected_graphs(min_n=6, max_n=12))
    script = data.draw(phase_scripts(g))
    plan = FaultPlan(drop_rate=0.3, duplicate_rate=0.3)
    net = FaultyNetwork(g, plan=plan, seed=data.draw(st.integers(0, 1000)),
                        metrics=True)
    _run_script(net, script)
    report = net.phase_report()
    flat = _flat(net)
    for key in FLAT_KEYS:
        assert sum(b[key] for b in report.values()) == flat[key], key


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_metrics_never_change_the_flat_accounting(data):
    g = data.draw(connected_graphs(min_n=6, max_n=14))
    script = data.draw(phase_scripts(g))
    plain = CongestNetwork(g, metrics=False)
    _run_plan(plain, [outboxes for _, outboxes in script])
    traced = CongestNetwork(g, metrics=True)
    _run_script(traced, script)
    assert _flat(plain) == _flat(traced)
    assert plain.stats.link_load_histogram == traced.stats.link_load_histogram


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_unscoped_bucket_collects_exactly_the_bare_steps(data):
    g = data.draw(connected_graphs(min_n=6, max_n=12))
    script = data.draw(phase_scripts(g))
    net = CongestNetwork(g, metrics=True)
    _run_script(net, script)
    bare = CongestNetwork(g)
    for path, outboxes in script:
        if not path:
            _run_step(bare, outboxes, batched=False)
    report = net.phase_report()
    unscoped = report.get(UNSCOPED, {"rounds": 0, "words": 0})
    assert unscoped["rounds"] == bare.rounds
    assert unscoped["words"] == bare.stats.words
