"""Tests for leader election and top-k aggregation primitives."""

import pytest

from repro.congest import CongestNetwork
from repro.congest.primitives.aggregation import aggregate_top_k, elect_leader
from repro.graphs import cycle_graph, erdos_renyi, grid_graph


class TestLeaderElection:
    @pytest.mark.parametrize("seed", range(3))
    def test_elects_min_id(self, seed):
        g = erdos_renyi(20, 0.15, seed=seed)
        net = CongestNetwork(g, seed=seed)
        assert elect_leader(net) == 0

    def test_rounds_linear_in_diameter(self):
        g = cycle_graph(30)
        net = CongestNetwork(g, seed=0)
        elect_leader(net)
        assert net.rounds <= 8 * g.undirected_diameter() + 16


class TestTopK:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_correct_top_k(self, seed, k):
        g = erdos_renyi(24, 0.12, seed=seed)
        net = CongestNetwork(g, seed=seed)
        values = [((v * 37) % 101) for v in range(g.n)]
        got = aggregate_top_k(net, values, k)
        expected = sorted((float(values[v]), v) for v in range(g.n))[:k]
        assert got == expected

    def test_ties_broken_by_id(self):
        g = grid_graph(4, 4)
        net = CongestNetwork(g, seed=0)
        got = aggregate_top_k(net, [5.0] * g.n, 3)
        assert got == [(5.0, 0), (5.0, 1), (5.0, 2)]

    def test_k_larger_than_n(self):
        g = cycle_graph(5)
        net = CongestNetwork(g, seed=0)
        got = aggregate_top_k(net, [4, 2, 5, 1, 3], 10)
        assert [v for _, v in got] == [3, 1, 4, 0, 2]

    def test_rounds_scale_with_k_plus_d(self):
        g = cycle_graph(40)
        net = CongestNetwork(g, seed=0)
        k = 6
        aggregate_top_k(net, list(range(40, 0, -1)), k)
        D = g.undirected_diameter()
        assert net.rounds <= 8 * (k + D) + 40

    def test_input_validation(self):
        net = CongestNetwork(cycle_graph(5), seed=0)
        with pytest.raises(ValueError):
            aggregate_top_k(net, [1, 2], 2)
        with pytest.raises(ValueError):
            aggregate_top_k(net, [1] * 5, 0)
