"""Tests for the benchmark harness (sweeps, reports, persistence)."""

import json
import os

import pytest

from repro.harness import SweepRow, default_jobs, persist, run_sweep


def quadratic_runner(n):
    return SweepRow(n=n, rounds=n * n, value=2.0, true_value=1.5)


class TestSweepRow:
    def test_ratio(self):
        assert SweepRow(n=1, rounds=1, value=3.0, true_value=2.0).ratio == 1.5

    def test_ratio_none_without_truth(self):
        assert SweepRow(n=1, rounds=1, value=3.0).ratio is None
        assert SweepRow(n=1, rounds=1).ratio is None

    def test_ratio_infinite_truth(self):
        inf = float("inf")
        assert SweepRow(n=1, rounds=1, value=inf, true_value=inf).ratio == 1.0
        assert SweepRow(n=1, rounds=1, value=5.0, true_value=inf).ratio is None


class TestRunSweep:
    def test_fit_and_rows(self):
        report = run_sweep("TEST", [4, 8, 16, 32], quadratic_runner)
        assert len(report.rows) == 4
        assert abs(report.fit.exponent - 2.0) < 1e-9
        assert report.max_ratio() == pytest.approx(2.0 / 1.5)

    def test_polylog_correction_recorded(self):
        report = run_sweep("TEST", [16, 32, 64], quadratic_runner,
                           polylog_correction=1.0)
        assert report.corrected_fit is not None
        assert report.corrected_fit.exponent < report.fit.exponent

    def test_no_fit_for_single_point(self):
        report = run_sweep("TEST", [4], quadratic_runner)
        assert report.fit is None

    def test_summary_mentions_claim(self):
        report = run_sweep("T1-R6-UB", [4, 8], quadratic_runner)
        text = report.summary()
        assert "T1-R6-UB" in text and "paper: 0.50" in text

    def test_summary_unknown_exp_id(self):
        report = run_sweep("UNKNOWN-ID", [4, 8], quadratic_runner)
        assert "UNKNOWN-ID" in report.summary()
        assert report.claimed_exponent is None


class TestParallelSweep:
    def test_jobs_matches_serial(self):
        serial = run_sweep("TEST-PAR", [4, 8, 16, 32], quadratic_runner, jobs=1)
        parallel = run_sweep("TEST-PAR", [4, 8, 16, 32], quadratic_runner, jobs=2)
        assert [r.__dict__ for r in parallel.rows] == \
            [r.__dict__ for r in serial.rows]
        assert parallel.fit.exponent == serial.fit.exponent

    def test_row_order_follows_sizes_not_completion(self):
        # Descending sizes: with a pool the small (fast) points would finish
        # first; the merged rows must still follow the requested order.
        sizes = [32, 4, 16, 8]
        report = run_sweep("TEST-ORDER", sizes, quadratic_runner, jobs=2)
        assert [r.n for r in report.rows] == sizes

    def test_unpicklable_runner_falls_back_to_serial(self):
        # A closure can't cross a process boundary; the sweep must degrade
        # to in-process execution rather than fail.
        offset = 7
        runner = lambda n: SweepRow(n=n, rounds=n + offset)  # noqa: E731
        report = run_sweep("TEST-FALLBACK", [4, 8], runner, jobs=2)
        assert [r.rounds for r in report.rows] == [11, 15]

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1  # clamped
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() == 1  # invalid degrades to serial

    def test_env_drives_run_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        report = run_sweep("TEST-ENV", [4, 8, 16], quadratic_runner)
        assert [r.n for r in report.rows] == [4, 8, 16]
        assert [r.rounds for r in report.rows] == [16, 64, 256]


class TestPersistence:
    def test_persist_writes_json(self):
        report = run_sweep("TEST-PERSIST", [4, 8], quadratic_runner,
                           polylog_correction=2.0, notes="hello")
        path = persist(report)
        try:
            with open(path) as f:
                payload = json.load(f)
            assert payload["exp_id"] == "TEST-PERSIST"
            assert payload["notes"] == "hello"
            assert "fit" in payload and "corrected_fit" in payload
            assert len(payload["rows"]) == 2
            assert not os.path.exists(path + ".tmp")
        finally:
            os.unlink(path)

    def test_persist_is_atomic_under_interruption(self, monkeypatch):
        # An interrupted write must neither leave a truncated JSON nor
        # clobber a previous good result.
        report = run_sweep("TEST-ATOMIC", [4, 8], quadratic_runner)
        path = persist(report)
        try:
            report2 = run_sweep("TEST-ATOMIC", [4, 8, 16], quadratic_runner)
            import repro.harness as harness

            def exploding_dump(*args, **kwargs):
                raise KeyboardInterrupt("simulated ctrl-C mid-write")

            monkeypatch.setattr(harness.json, "dump", exploding_dump)
            with pytest.raises(KeyboardInterrupt):
                persist(report2)
            monkeypatch.undo()
            with open(path) as f:
                payload = json.load(f)  # old result intact, valid JSON
            assert len(payload["rows"]) == 2
            assert not os.path.exists(path + ".tmp")
        finally:
            os.unlink(path)
