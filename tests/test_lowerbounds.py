"""Tests for the lower-bound constructions, verification, and protocol view."""

import math

import pytest

from repro.core.exact_mwc import exact_mwc_congest_on
from repro.lowerbounds import (
    CutMeter,
    DisjointnessInstance,
    alpha_approx_directed_family,
    alpha_approx_undirected_family,
    cut_edges,
    directed_mwc_family,
    fooling_set,
    girth_alpha_family,
    implied_round_bound,
    measure_cut_traffic,
    random_disjoint,
    random_intersecting,
    undirected_weighted_family,
    verify_gap,
    verify_instance,
)
from repro.lowerbounds.set_disjointness import crossing_intersects
from repro.sequential import exact_mwc


class TestDisjointness:
    def test_random_disjoint_is_disjoint(self):
        for seed in range(10):
            assert random_disjoint(20, seed=seed).disjoint

    def test_random_intersecting_intersects(self):
        for seed in range(10):
            inst = random_intersecting(20, seed=seed)
            assert not inst.disjoint
            assert inst.intersection()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DisjointnessInstance((True,), (True, False))

    def test_fooling_set_property(self):
        """Every pair disjoint; crossing any two distinct pairs intersects."""
        pairs = list(fooling_set(4))
        assert len(pairs) == 16
        for p in pairs:
            assert p.disjoint
        for i, p in enumerate(pairs):
            for q in pairs[i + 1:]:
                assert crossing_intersects(p, q)


class TestDirectedFamily:
    def test_intersecting_has_4_cycle(self):
        inst = directed_mwc_family(4, random_intersecting(16, seed=0))
        assert exact_mwc(inst.graph) == 4

    def test_disjoint_has_8_cycle(self):
        inst = directed_mwc_family(4, random_disjoint(16, seed=1))
        assert exact_mwc(inst.graph) == 8

    def test_verified_gap_many_seeds(self):
        report = verify_gap(lambda d: directed_mwc_family(5, d), k=25,
                            trials=4, seed=2)
        assert report["trials"] == 8

    def test_constant_diameter(self):
        inst = directed_mwc_family(6, random_disjoint(36, seed=3))
        assert inst.graph.undirected_diameter() <= 4

    def test_cut_linear_in_m(self):
        m = 6
        inst = directed_mwc_family(m, random_disjoint(36, seed=4))
        assert cut_edges(inst) == 2 * m + 1

    def test_implied_bound_scales_linearly(self):
        bounds = []
        for m in (4, 8):
            inst = directed_mwc_family(m, random_disjoint(m * m, seed=5))
            bounds.append((inst.graph.n, implied_round_bound(inst)))
        (n1, b1), (n2, b2) = bounds
        # k/(cut log n) = m^2/(2m+1)log ~ m: doubling m ~doubles the bound.
        assert b2 > 1.5 * b1

    def test_wrong_bit_count_rejected(self):
        from repro.graphs.graph import GraphError
        with pytest.raises(GraphError):
            directed_mwc_family(3, random_disjoint(8, seed=0))


class TestUndirectedWeightedFamily:
    def test_gap_values(self):
        W = 64
        yes = undirected_weighted_family(4, random_intersecting(16, seed=0), W=W)
        no = undirected_weighted_family(4, random_disjoint(16, seed=1), W=W)
        assert exact_mwc(yes.graph) == 2 * W + 2
        assert exact_mwc(no.graph) == 4 * W

    def test_verify_gap(self):
        verify_gap(lambda d: undirected_weighted_family(4, d), k=16,
                   trials=3, seed=6)

    def test_ratio_approaches_two(self):
        inst = undirected_weighted_family(3, random_disjoint(9, seed=0), W=512)
        assert inst.gap_ratio > 1.99

    def test_small_W_rejected(self):
        from repro.graphs.graph import GraphError
        with pytest.raises(GraphError):
            undirected_weighted_family(3, random_disjoint(9, seed=0), W=1)


class TestAlphaFamilies:
    @pytest.mark.parametrize("alpha", [2.0, 4.0])
    def test_directed_alpha_gap(self, alpha):
        k, ell = 6, 8
        yes = alpha_approx_directed_family(k, ell, alpha,
                                           random_intersecting(k, seed=0))
        no = alpha_approx_directed_family(k, ell, alpha,
                                          random_disjoint(k, seed=1))
        assert exact_mwc(yes.graph) == ell + 4
        assert exact_mwc(no.graph) > alpha * (ell + 4)

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_undirected_alpha_gap(self, alpha):
        k, ell = 5, 8
        yes = alpha_approx_undirected_family(k, ell, alpha,
                                             random_intersecting(k, seed=2))
        no = alpha_approx_undirected_family(k, ell, alpha,
                                            random_disjoint(k, seed=3))
        assert exact_mwc(yes.graph) == ell + 4
        assert exact_mwc(no.graph) > alpha * (ell + 4)

    def test_directed_low_diameter(self):
        k, ell = 8, 8
        inst = alpha_approx_directed_family(k, ell, 2.0,
                                            random_disjoint(k, seed=4))
        assert inst.graph.undirected_diameter() <= 4 * math.ceil(
            math.log2(inst.graph.n)) + 4

    def test_girth_family_gap(self):
        k, ell, alpha = 4, 6, 2.0
        yes = girth_alpha_family(k, ell, alpha, random_intersecting(k, seed=5))
        no = girth_alpha_family(k, ell, alpha, random_disjoint(k, seed=6))
        assert exact_mwc(yes.graph) == ell + 4
        assert exact_mwc(no.graph) > alpha * (ell + 4)

    def test_girth_family_connected_all_bit_patterns(self):
        k, ell = 3, 5
        for seed in range(6):
            inst = girth_alpha_family(k, ell, 2.0, random_disjoint(k, seed=seed))
            assert inst.graph.is_connected()

    def test_verify_instance_reports(self):
        inst = alpha_approx_directed_family(6, 8, 2.0,
                                            random_intersecting(6, seed=7))
        report = verify_instance(inst)
        assert report["k_bits"] == 6
        assert report["implied_rounds"] > 0


class TestProtocolView:
    def test_cut_meter_counts_crossing_traffic(self):
        inst = directed_mwc_family(4, random_intersecting(16, seed=0))
        outcome = measure_cut_traffic(inst, exact_mwc_congest_on, seed=0)
        assert outcome["result"].value == 4
        assert outcome["bits_crossed"] > 0

    def test_exact_algorithm_crosses_many_bits(self):
        """Consistency with the LB: a correct distinguisher on the family
        moves Ω(k)-scale information across the cut."""
        inst = directed_mwc_family(6, random_disjoint(36, seed=1))
        outcome = measure_cut_traffic(inst, exact_mwc_congest_on, seed=0)
        assert outcome["result"].value == 8
        assert outcome["bits_crossed"] >= inst.k_bits / 4

    def test_meter_detach_restores(self):
        from repro.congest import CongestNetwork
        inst = directed_mwc_family(3, random_disjoint(9, seed=2))
        net = CongestNetwork(inst.graph, seed=0)
        meter = CutMeter(net, inst.alice)
        meter.detach()
        assert net.exchange == meter._original_exchange


class TestBitFlipSensitivity:
    """Flipping a single disjointness bit flips the instance's MWC value —
    the encoding is tight at every position (not just in aggregate)."""

    def test_directed_family_single_bit(self):
        k = 16
        base = random_disjoint(k, seed=3)
        inst = directed_mwc_family(4, base)
        assert exact_mwc(inst.graph) == 8
        for pos in range(0, k, 5):
            sa = list(base.sa)
            sb = list(base.sb)
            sa[pos] = True
            sb[pos] = True
            flipped = directed_mwc_family(
                4, DisjointnessInstance(tuple(sa), tuple(sb)))
            assert exact_mwc(flipped.graph) == 4, pos

    def test_removing_the_intersection_restores_no_value(self):
        inter = random_intersecting(16, seed=4)
        positions = inter.intersection()
        sa = list(inter.sa)
        for pos in positions:
            sa[pos] = False
        cleaned = directed_mwc_family(
            4, DisjointnessInstance(tuple(sa), inter.sb))
        assert exact_mwc(cleaned.graph) == 8

    def test_alpha_family_single_bit(self):
        k, ell, alpha = 5, 6, 3.0
        base = random_disjoint(k, seed=5)
        for pos in range(k):
            sa = list(base.sa)
            sb = list(base.sb)
            sa[pos] = True
            sb[pos] = True
            inst = alpha_approx_directed_family(
                k, ell, alpha, DisjointnessInstance(tuple(sa), tuple(sb)))
            assert exact_mwc(inst.graph) == ell + 4, pos
