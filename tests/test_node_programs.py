"""Tests for the node-program API, including primitive-equivalence oracles."""

import pytest

from repro.congest import CongestNetwork
from repro.congest.node import (
    BfsProgram,
    MinAggregationProgram,
    NodeProgram,
    run_programs,
)
from repro.congest.primitives import bfs, converge_min
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import bfs_distances


class TestRunner:
    def test_program_count_validated(self):
        net = CongestNetwork(cycle_graph(4))
        with pytest.raises(ValueError):
            run_programs(net, [BfsProgram(0)])

    def test_round_budget_enforced(self):
        class Chatterbox(NodeProgram):
            def on_round(self, r, inbox):
                return {u: [("hi", 1)] for u in self.view.comm_neighbors}

        net = CongestNetwork(cycle_graph(4))
        with pytest.raises(RuntimeError):
            run_programs(net, [Chatterbox() for _ in range(4)], max_rounds=10)

    def test_view_is_local(self):
        captured = {}

        class Probe(NodeProgram):
            def setup(self, view):
                super().setup(view)
                captured[view.id] = view

            def on_round(self, r, inbox):
                return {}

        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 4)
        g.add_edge(2, 1, 5)
        net = CongestNetwork(g)
        run_programs(net, [Probe() for _ in range(3)])
        assert captured[0].out_edges == ((1, 4),)
        assert captured[1].in_edges == ((0, 4), (2, 5))
        assert set(captured[1].comm_neighbors) == {0, 2}


class TestBfsEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_primitive_and_sequential(self, seed, directed):
        g = erdos_renyi(22, 0.15, directed=directed, seed=seed)
        net_prog = CongestNetwork(g, seed=0)
        results = run_programs(net_prog, [BfsProgram(0) for _ in range(g.n)])
        ref = bfs_distances(g, 0)
        for v in range(g.n):
            expected = None if ref[v] == INF else int(ref[v])
            assert results[v] == expected
        # Round parity with the orchestrated primitive (same wave shape).
        net_prim = CongestNetwork(g, seed=0)
        bfs(net_prim, 0)
        assert abs(net_prog.rounds - net_prim.rounds) <= 2


class TestMinEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_global_min_agrees_everywhere(self, seed):
        g = erdos_renyi(18, 0.2, seed=seed)
        values = [float((v * 13) % 29) for v in range(g.n)]
        net = CongestNetwork(g, seed=0)
        results = run_programs(
            net, [MinAggregationProgram(values[v]) for v in range(g.n)])
        assert set(results) == {min(values)}
        net2 = CongestNetwork(g, seed=0)
        assert converge_min(net2, values) == min(values)

    def test_flooding_rounds_linear_in_diameter(self):
        g = cycle_graph(30)
        net = CongestNetwork(g, seed=0)
        run_programs(net, [MinAggregationProgram(float(v)) for v in range(30)])
        assert net.rounds <= 3 * g.undirected_diameter() + 6
