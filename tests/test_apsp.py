"""Tests for the standalone distributed APSP API."""

import pytest

from repro.core.apsp import (
    apsp_approx,
    apsp_unweighted,
    apsp_weighted_exact,
    mwc_via_approx_apsp,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError, INF
from repro.sequential import all_pairs_shortest_paths, exact_mwc


class TestUnweightedApsp:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("directed", [False, True])
    def test_exact(self, seed, directed):
        g = erdos_renyi(24, 0.12, directed=directed, seed=seed)
        res = apsp_unweighted(g, seed=seed)
        ref = all_pairs_shortest_paths(g)
        for u in range(g.n):
            for v in range(g.n):
                assert res.distance(u, v) == ref[u][v]

    def test_rounds_linear(self):
        g = cycle_graph(50, directed=True)
        res = apsp_unweighted(g, seed=0)
        assert res.rounds <= 3 * g.n

    def test_rejects_weighted(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 2)
        with pytest.raises(GraphError):
            apsp_unweighted(g)


class TestWeightedApsp:
    @pytest.mark.parametrize("seed", range(3))
    def test_exact_matches_sequential(self, seed):
        g = erdos_renyi(18, 0.2, directed=True, weighted=True, max_weight=9,
                        seed=seed)
        res = apsp_weighted_exact(g, seed=seed)
        ref = all_pairs_shortest_paths(g)
        for u in range(g.n):
            for v in range(g.n):
                assert res.distance(u, v) == ref[u][v]

    def test_unweighted_falls_back(self):
        g = cycle_graph(8, directed=True)
        res = apsp_weighted_exact(g, seed=0)
        assert res.distance(0, 4) == 4


class TestApproxApsp:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("directed", [False, True])
    def test_guarantee(self, seed, directed):
        eps = 0.5
        g = erdos_renyi(20, 0.15, directed=directed, weighted=True,
                        max_weight=7, seed=seed)
        res = apsp_approx(g, eps=eps, seed=seed)
        ref = all_pairs_shortest_paths(g)
        for u in range(g.n):
            for v in range(g.n):
                true = ref[u][v]
                got = res.distance(u, v)
                if true == INF:
                    assert got == INF
                else:
                    assert true - 1e-9 <= got <= (1 + eps) * true + 1e-9

    def test_zero_weight_rejected(self):
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 1)
        with pytest.raises(GraphError):
            apsp_approx(g)


class TestMwcViaApproxApsp:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("directed", [False, True])
    def test_guarantee(self, seed, directed):
        eps = 0.5
        g = erdos_renyi(20, 0.15, directed=directed, weighted=True,
                        max_weight=6, seed=seed + 7)
        true = exact_mwc(g)
        res = mwc_via_approx_apsp(g, eps=eps, seed=seed)
        if true == INF:
            assert res.value == INF
        else:
            assert true - 1e-9 <= res.value <= (1 + eps) * true + 1e-9

    def test_unweighted_is_exact(self):
        g = erdos_renyi(22, 0.12, directed=True, seed=3)
        true = exact_mwc(g)
        res = mwc_via_approx_apsp(g, seed=0)
        assert res.value == true
