"""Edge-case coverage across the stack: tiny graphs, extreme parameters,
degenerate inputs, and explicit failure paths."""

import pytest

from repro.congest import CongestNetwork
from repro.congest.primitives import (
    bfs,
    broadcast,
    build_bfs_tree,
    converge_min,
    multi_source_bfs,
    multi_source_wave,
    propagate_down_trees,
    source_detection,
)
from repro.core.directed_mwc import DirectedMwcParams, directed_mwc_2approx
from repro.core.girth import GirthParams, girth_2approx
from repro.core.ksource import k_source_bfs, k_source_sssp
from repro.core.weighted_mwc import undirected_weighted_mwc_approx
from repro.graphs import Graph, cycle_graph, erdos_renyi
from repro.graphs.graph import GraphError, INF
from repro.sequential import exact_mwc, k_source_distances


class TestTinyNetworks:
    def test_single_vertex_network(self):
        net = CongestNetwork(Graph(1))
        tree = build_bfs_tree(net)
        assert tree.parent == [-1]
        assert converge_min(net, [42]) == 42
        assert broadcast(net, {0: ["x"]}) == [["x"]]

    def test_two_vertex_directed_two_cycle(self):
        g = Graph(2, directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert exact_mwc(g) == 2
        res = directed_mwc_2approx(g, seed=0)
        assert 2 <= res.value <= 4

    def test_triangle_girth(self):
        res = girth_2approx(cycle_graph(3), seed=0)
        assert res.value == 3  # (2 - 1/3) * 3 = 5, but 3 must be found

    def test_smallest_weighted_cycle(self):
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(2, 0, 1)
        res = undirected_weighted_mwc_approx(g, eps=0.5, seed=0)
        assert 3 <= res.value <= 7.5


class TestExtremeParameters:
    def test_ksource_h_exceeding_n(self):
        g = cycle_graph(12, directed=True)
        res = k_source_bfs(g, [0, 4], seed=0, h=100, method="skeleton")
        ref = k_source_distances(g, [0, 4])
        for v in range(12):
            assert res.distance(0, v) == ref[0][v]

    def test_ksource_all_vertices_as_sources(self):
        g = erdos_renyi(14, 0.25, directed=True, seed=1)
        res = k_source_bfs(g, list(range(14)), seed=0, method="skeleton",
                           sample_constant=4.0)
        ref = k_source_distances(g, range(14))
        for u in range(14):
            for v in range(14):
                assert res.distance(u, v) == ref[u][v]

    def test_ksource_sssp_tiny_eps(self):
        g = erdos_renyi(14, 0.3, directed=True, weighted=True, max_weight=4,
                        seed=2)
        res = k_source_sssp(g, [0, 5], eps=0.05, seed=0)
        ref = k_source_distances(g, [0, 5])
        for u in (0, 5):
            for v in range(14):
                if ref[u][v] != INF:
                    assert ref[u][v] <= res.distance(u, v) <= 1.05 * ref[u][v] + 1e-9

    def test_girth_sigma_constant_huge(self):
        g = cycle_graph(16)
        params = GirthParams(sigma_constant=10.0, sample_constant=10.0)
        assert girth_2approx(g, seed=0, params=params).value == 16

    def test_directed_mwc_h_exponent_extremes(self):
        g = erdos_renyi(24, 0.12, directed=True, seed=3)
        true = exact_mwc(g)
        for h_exp in (0.2, 0.95):
            params = DirectedMwcParams(h_exponent=h_exp)
            res = directed_mwc_2approx(g, seed=0, params=params)
            assert true <= res.value <= 2 * true, h_exp

    def test_weighted_mwc_large_eps(self):
        g = erdos_renyi(18, 0.2, weighted=True, max_weight=6, seed=4)
        true = exact_mwc(g)
        res = undirected_weighted_mwc_approx(g, eps=4.0, seed=0)
        assert true - 1e-9 <= res.value <= 6 * true + 1e-9


class TestPrimitiveBudgets:
    def test_multi_bfs_max_steps_raises(self):
        g = cycle_graph(20, directed=True)
        net = CongestNetwork(g)
        with pytest.raises(RuntimeError):
            multi_source_bfs(net, [0], max_steps=3)

    def test_wave_max_steps_raises(self):
        g = cycle_graph(20, directed=True)
        net = CongestNetwork(g)
        with pytest.raises(RuntimeError):
            multi_source_wave(net, [0], budget=30, max_steps=3)

    def test_detection_max_steps_raises(self):
        g = cycle_graph(20)
        net = CongestNetwork(g)
        with pytest.raises(RuntimeError):
            source_detection(net, sigma=5, budget=10, max_steps=2)

    def test_broadcast_max_steps_raises(self):
        g = cycle_graph(20)
        net = CongestNetwork(g)
        with pytest.raises(RuntimeError):
            broadcast(net, {0: list(range(10))}, max_steps=2)

    def test_propagate_max_steps_raises(self):
        g = cycle_graph(20)
        net = CongestNetwork(g)
        _, parents = multi_source_bfs(net, [0], record_parents=True)
        with pytest.raises(RuntimeError):
            propagate_down_trees(net, parents, {0: list(range(30))},
                                 max_steps=1)


class TestDegenerateBroadcasts:
    def test_broadcast_single_huge_batch(self):
        g = cycle_graph(8)
        net = CongestNetwork(g)
        received = broadcast(net, {3: list(range(40))})
        assert all(len(r) == 40 for r in received)

    def test_broadcast_every_vertex_contributes(self):
        g = cycle_graph(10)
        net = CongestNetwork(g)
        received = broadcast(net, {v: [v] for v in range(10)})
        assert all(sorted(r) == list(range(10)) for r in received)

    def test_broadcast_multiword_messages(self):
        g = cycle_graph(8)
        net = CongestNetwork(g)
        broadcast(net, {0: ["big"] * 4}, words_per_message=3)
        assert net.rounds >= 12  # 4 messages x 3 words each way at least


class TestBfsCorners:
    def test_bfs_from_isolated_ish_source(self):
        # Source with no out-edges in a directed graph: only itself reached.
        g = Graph(4, directed=True)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        net = CongestNetwork(g)
        dist, _ = bfs(net, 0)
        assert dist[0] == 0 and all(dist[v] == INF for v in (1, 2, 3))

    def test_bfs_h_zero(self):
        g = cycle_graph(6)
        net = CongestNetwork(g)
        dist, _ = bfs(net, 0, h=0)
        assert dist[0] == 0 and all(dist[v] == INF for v in range(1, 6))

    def test_wave_budget_zero(self):
        g = cycle_graph(6)
        net = CongestNetwork(g)
        known, _ = multi_source_wave(net, [0], budget=0)
        assert known[0] == {0: 0}
        assert all(known[v] == {} for v in range(1, 6))


class TestValidationMessages:
    def test_graph_errors_carry_context(self):
        g = Graph(3)
        with pytest.raises(GraphError, match="out of range"):
            g.add_edge(0, 7)
        with pytest.raises(GraphError, match="not present"):
            g.weight(0, 1)
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(1, 1)

    def test_network_rejects_with_reason(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(GraphError, match="connected"):
            CongestNetwork(g)
