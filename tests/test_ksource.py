"""Tests for k-source BFS / approximate SSSP (Algorithm 1, Theorem 1.6)."""


import pytest

from repro.congest import CongestNetwork
from repro.core.ksource import (
    default_h,
    k_source_bfs,
    k_source_bfs_on,
    k_source_bfs_repeated_on,
    k_source_sssp,
    skeleton_apsp,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi, grid_graph
from repro.graphs.graph import GraphError, INF
from repro.sequential import k_source_distances


def check_exact(g, result, sources):
    ref = k_source_distances(g, sources)
    for v in range(g.n):
        for u in sources:
            assert result.distance(u, v) == ref[u][v], (u, v)


class TestSkeletonApsp:
    def test_simple_chain(self):
        edges = [(0, 1, 2.0), (1, 2, 3.0)]
        d = skeleton_apsp(edges, [0, 1, 2])
        assert d[0][2] == 5.0
        assert 0 not in d[2]

    def test_prefers_cheaper_route(self):
        edges = [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)]
        d = skeleton_apsp(edges, [0, 1, 2])
        assert d[0][1] == 2.0


class TestKSourceBfsExactness:
    @pytest.mark.parametrize("seed", range(4))
    def test_directed_random_graphs(self, seed):
        g = erdos_renyi(40, 0.08, directed=True, seed=seed)
        sources = list(range(0, 40, 7))
        result = k_source_bfs(g, sources, seed=seed, sample_constant=4.0)
        check_exact(g, result, sources)

    @pytest.mark.parametrize("seed", range(3))
    def test_undirected_random_graphs(self, seed):
        g = erdos_renyi(36, 0.09, seed=seed + 10)
        sources = [0, 5, 9, 17, 23]
        result = k_source_bfs(g, sources, seed=seed, sample_constant=4.0)
        check_exact(g, result, sources)

    def test_long_paths_through_skeleton(self):
        # Cycle: every pairwise distance is long, exercising the >h-hop path
        # (skeleton) machinery.
        g = cycle_graph(50, directed=True)
        sources = [0, 13, 26]
        result = k_source_bfs(g, sources, seed=0, h=7, sample_constant=4.0)
        check_exact(g, result, sources)

    def test_small_h_forces_skeleton_use(self):
        g = grid_graph(7, 7)
        sources = [0, 24, 48]
        result = k_source_bfs(g, sources, seed=1, h=4, sample_constant=4.0)
        check_exact(g, result, sources)

    def test_duplicate_sources_deduped(self):
        g = cycle_graph(12, directed=True)
        result = k_source_bfs(g, [0, 0, 3], seed=0, sample_constant=4.0)
        check_exact(g, result, [0, 3])

    def test_empty_sources(self):
        g = cycle_graph(8)
        result = k_source_bfs(g, [], seed=0, method="skeleton")
        assert all(d == {} for d in result.dist)

    def test_rejects_weighted(self):
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 2)
        net = CongestNetwork(g)
        with pytest.raises(GraphError):
            k_source_bfs_on(net, [0])

    def test_unreachable_vertices_absent(self):
        g = Graph(4, directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        g.add_edge(2, 3)
        result = k_source_bfs(g, [0], seed=0, method="skeleton")
        assert result.distance(0, 3) == INF


class TestMethodSelection:
    def test_repeat_method_exact(self):
        g = erdos_renyi(30, 0.12, directed=True, seed=5)
        sources = [0, 7]
        result = k_source_bfs(g, sources, seed=0, method="repeat")
        check_exact(g, result, sources)
        assert result.details["method"] == "repeat"

    def test_auto_uses_skeleton_for_many_sources(self):
        g = erdos_renyi(27, 0.15, directed=True, seed=6)
        sources = list(range(9))  # k = 9 >= 27^(1/3) = 3
        result = k_source_bfs(g, sources, seed=0, method="auto")
        assert "sample_size" in result.details
        check_exact(g, result, sources)

    def test_unknown_method_rejected(self):
        g = cycle_graph(6)
        with pytest.raises(ValueError):
            k_source_bfs(g, [0], method="nope")

    def test_default_h(self):
        assert default_h(100, 4) == 20
        assert default_h(1, 0) == 1


@pytest.mark.slow
class TestRoundScaling:
    def test_rounds_sublinear_for_many_sources_on_cycle(self):
        """On an n-cycle with k sources, Algorithm 1 beats k * ecc.

        Asymptotically Õ(sqrt(nk) + D) vs k * ecc; at simulable n the polylog
        sampling constant matters, so we use a lean constant (exactness is
        still checked — the hitting property holds comfortably here).
        """
        n, k = 256, 32
        g = cycle_graph(n, directed=True)
        sources = list(range(0, n, n // k))
        skel = k_source_bfs(g, sources, seed=3, method="skeleton",
                            sample_constant=1.5)
        net = CongestNetwork(g, seed=3)
        rep = k_source_bfs_repeated_on(net, sources)
        assert skel.rounds < rep.rounds
        check_exact(g, skel, sources)


class TestKSourceSssp:
    @pytest.mark.parametrize("seed", range(4))
    def test_approximation_guarantee(self, seed):
        g = erdos_renyi(30, 0.12, directed=True, weighted=True, max_weight=8,
                        seed=seed)
        sources = [0, 6, 14, 21]
        eps = 0.5
        result = k_source_sssp(g, sources, eps=eps, seed=seed)
        ref = k_source_distances(g, sources)
        for v in range(g.n):
            for u in sources:
                true = ref[u][v]
                got = result.distance(u, v)
                if true == INF:
                    assert got == INF
                else:
                    assert true <= got <= (1 + eps) * true + 1e-9, (u, v, true, got)

    def test_undirected_weighted(self):
        g = erdos_renyi(24, 0.15, weighted=True, max_weight=5, seed=9)
        sources = [0, 8, 16]
        result = k_source_sssp(g, sources, eps=0.4, seed=1)
        ref = k_source_distances(g, sources)
        for v in range(g.n):
            for u in sources:
                true = ref[u][v]
                if true != INF:
                    assert true <= result.distance(u, v) <= 1.4 * true + 1e-9

    def test_unweighted_falls_back_to_exact(self):
        g = erdos_renyi(20, 0.15, directed=True, seed=11)
        sources = [0, 5]
        result = k_source_sssp(g, sources, seed=0)
        check_exact(g, result, sources)

    def test_zero_weight_rejected(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 1)
        g.add_edge(2, 0, 1)
        with pytest.raises(GraphError):
            k_source_sssp(g, [0], seed=0)
