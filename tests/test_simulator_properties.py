"""Property and failure-injection tests for the CONGEST simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import BandwidthExceeded, CongestNetwork, LocalityViolation
from repro.congest.primitives import (
    bfs,
    multi_source_bfs,
    multi_source_wave,
    source_detection,
)
from repro.graphs import Graph, cycle_graph, erdos_renyi, grid_graph


@st.composite
def random_outboxes(draw, g):
    """Legal random outboxes for one exchange step on graph g."""
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    outboxes = {}
    for u in range(g.n):
        neighbors = list(g.neighbors(u))
        if not neighbors or rng.random() < 0.5:
            continue
        chosen = rng.choice(neighbors, size=min(2, len(neighbors)),
                            replace=False)
        outboxes[u] = {
            int(v): [((u, int(v), i), 1) for i in range(int(rng.integers(1, 4)))]
            for v in chosen
        }
    return outboxes


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_exchange_delivers_everything_exactly_once(data):
    g = erdos_renyi(14, 0.25, seed=data.draw(st.integers(0, 1000)))
    net = CongestNetwork(g)
    outboxes = data.draw(random_outboxes(g))
    sent = [(u, v, payload) for u, ob in outboxes.items()
            for v, msgs in ob.items() for payload, _ in msgs]
    inboxes = net.exchange(outboxes)
    received = [(u, v, payload) for v, by_sender in inboxes.items()
                for u, payloads in by_sender.items() for payload in payloads]
    assert sorted(sent) == sorted(received)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_stats_match_traffic(data):
    g = erdos_renyi(12, 0.3, seed=data.draw(st.integers(0, 1000)))
    net = CongestNetwork(g)
    outboxes = data.draw(random_outboxes(g))
    total_msgs = sum(len(msgs) for ob in outboxes.values()
                     for msgs in ob.values())
    total_words = sum(w for ob in outboxes.values()
                      for msgs in ob.values() for _, w in msgs)
    net.exchange(outboxes)
    assert net.stats.messages == total_msgs
    assert net.stats.words == total_words
    assert net.rounds >= 1


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_rounds_monotone_and_bandwidth_halves_rounds(data):
    g = cycle_graph(8)
    outboxes = data.draw(random_outboxes(g))
    slow = CongestNetwork(g, bandwidth=1)
    fast = CongestNetwork(g, bandwidth=4)
    slow.exchange(outboxes)
    fast.exchange(outboxes)
    assert fast.rounds <= slow.rounds


class TestFailureInjection:
    def test_send_to_self_rejected(self):
        net = CongestNetwork(cycle_graph(4))
        with pytest.raises(LocalityViolation):
            net.exchange({0: {0: [("x", 1)]}})

    def test_send_to_distant_vertex_rejected(self):
        net = CongestNetwork(cycle_graph(6))
        with pytest.raises(LocalityViolation):
            net.exchange({0: {3: [("x", 1)]}})

    def test_directed_edge_still_bidirectional_link(self):
        g = Graph(2, directed=True)
        g.add_edge(0, 1)
        net = CongestNetwork(g)
        inboxes = net.exchange({1: {0: [("backwards", 1)]}})
        assert inboxes[0][1] == ["backwards"]

    def test_strict_catches_exact_overload(self):
        net = CongestNetwork(cycle_graph(4), bandwidth=2, strict=True)
        net.exchange({0: {1: [("a", 1), ("b", 1)]}})  # exactly at capacity
        with pytest.raises(BandwidthExceeded):
            net.exchange({0: {1: [("a", 1), ("b", 1), ("c", 1)]}})

    def test_word_size_zero_is_free(self):
        net = CongestNetwork(cycle_graph(4), bandwidth=1, strict=True)
        net.exchange({0: {1: [("meta", 0), ("data", 1)]}})
        assert net.rounds == 1


class TestStrictPipelines:
    """The pipelined primitives really fit the bandwidth, end to end."""

    def test_wave_strict(self):
        g = grid_graph(5, 5, weighted=True, max_weight=4, seed=1)
        net = CongestNetwork(g, strict=True)
        multi_source_wave(net, [0, 12, 24], budget=20)

    def test_detection_strict(self):
        g = grid_graph(5, 5)
        net = CongestNetwork(g, strict=True)
        source_detection(net, sigma=5, budget=8)

    def test_multi_bfs_strict_many_sources(self):
        g = erdos_renyi(30, 0.12, directed=True, seed=3)
        net = CongestNetwork(g, strict=True)
        multi_source_bfs(net, list(range(0, 30, 2)))

    def test_single_bfs_strict(self):
        g = erdos_renyi(25, 0.15, seed=4)
        net = CongestNetwork(g, strict=True)
        bfs(net, 0)


class TestHosting:
    def test_quotient_topology_charges_only_cross_host(self):
        # Path 0-1-2-3 with {0,1} on host A and {2,3} on host B.
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1)
        net = CongestNetwork(g, host=[0, 0, 1, 1], strict=True)
        # Heavy local chatter is free; one word on the 1-2 link is charged.
        net.exchange({
            0: {1: [(i, 1) for i in range(10)]},
            1: {2: [("cross", 1)]},
            2: {3: [(i, 1) for i in range(10)]},
        })
        assert net.rounds == 1
        assert net.stats.local_messages == 20

    def test_hosted_stretch_run_counts_fewer_words_on_links(self):
        from repro.graphs import StretchedGraph
        g = Graph(3, weighted=True)
        g.add_edge(0, 1, 6)
        g.add_edge(1, 2, 6)
        sg = StretchedGraph(g)
        hosted = CongestNetwork(sg.graph, host=sg.host)
        flat = CongestNetwork(sg.graph)
        bfs(hosted, 0)
        bfs(flat, 0)
        hosted_link_words = hosted.stats.words - 0  # all words sent
        assert hosted.stats.local_messages > 0
        assert flat.stats.local_messages == 0
