"""Unit tests for the core Graph type."""

import pytest

from repro.graphs.graph import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert g.is_connected()

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_add_edge_undirected_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.m == 1

    def test_add_edge_directed_one_way(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2)

    def test_negative_weight_rejected(self):
        g = Graph(2, weighted=True)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1)

    def test_nonunit_weight_on_unweighted_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 5)

    def test_readd_edge_keeps_min_weight(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 7)
        g.add_edge(0, 1, 3)
        g.add_edge(0, 1, 9)
        assert g.weight(0, 1) == 3
        assert g.m == 1

    def test_remove_edge(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert g.m == 0 and not g.has_edge(0, 1)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)


class TestQueries:
    def make_directed(self):
        g = Graph(4, directed=True, weighted=True)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 0, 4)
        g.add_edge(2, 3, 1)
        return g

    def test_neighbors_directions(self):
        g = self.make_directed()
        assert set(g.out_neighbors(2)) == {0, 3}
        assert set(g.in_neighbors(2)) == {1}
        assert set(g.neighbors(2)) == {0, 1, 3}

    def test_degrees(self):
        g = self.make_directed()
        assert g.out_degree(2) == 2
        assert g.in_degree(2) == 1

    def test_weight_lookup_missing_edge(self):
        g = self.make_directed()
        with pytest.raises(GraphError):
            g.weight(3, 2)

    def test_edges_iterates_each_once(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert sorted(g.edges()) == [(0, 1, 1), (1, 2, 1)]

    def test_max_weight(self):
        g = self.make_directed()
        assert g.max_weight() == 4
        assert Graph(3).max_weight() == 0


class TestDerivedGraphs:
    def test_reverse_directed(self):
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        r = g.reverse()
        assert r.has_edge(1, 0) and not r.has_edge(0, 1)

    def test_reverse_undirected_is_copy(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert g.reverse() == g

    def test_underlying_undirected(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 5)
        g.add_edge(1, 0, 2)
        u = g.underlying_undirected()
        assert not u.directed and not u.weighted
        assert u.m == 1 and u.has_edge(0, 1)

    def test_copy_independent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        c = g.copy()
        c.add_edge(1, 2)
        assert g.m == 1 and c.m == 2

    def test_with_weights(self):
        g = Graph(2, weighted=True)
        g.add_edge(0, 1, 3)
        doubled = g.with_weights(lambda u, v, w: 2 * w)
        assert doubled.weight(0, 1) == 6

    def test_subgraph(self):
        g = Graph(5, directed=True)
        g.add_edge(0, 2)
        g.add_edge(2, 4)
        g.add_edge(1, 3)
        sub, remap = g.subgraph([0, 2, 4])
        assert sub.n == 3
        assert sub.has_edge(remap[0], remap[2])
        assert sub.has_edge(remap[2], remap[4])
        assert sub.m == 2


class TestConnectivityAndDiameter:
    def test_is_connected_path(self):
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1)
        assert g.is_connected()

    def test_is_connected_detects_split(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert not g.is_connected()

    def test_directed_uses_communication_links(self):
        # 0 -> 1, 2 -> 1: weakly connected => CONGEST-connected.
        g = Graph(3, directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        assert g.is_connected()

    def test_diameter_path(self):
        g = Graph(5)
        for i in range(4):
            g.add_edge(i, i + 1)
        assert g.undirected_diameter() == 4

    def test_diameter_disconnected_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.undirected_diameter()

    def test_eccentricity(self):
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1)
        assert g.undirected_eccentricity(0) == 3
        assert g.undirected_eccentricity(1) == 2


class TestInterop:
    def test_networkx_roundtrip_directed_weighted(self):
        g = Graph(3, directed=True, weighted=True)
        g.add_edge(0, 1, 4)
        g.add_edge(1, 2, 5)
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_equality_and_repr(self):
        g = Graph(2)
        h = Graph(2)
        g.add_edge(0, 1)
        h.add_edge(0, 1)
        assert g == h
        assert "n=2" in repr(g)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))
