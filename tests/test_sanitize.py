"""Runtime sanitizer: parity when clean, loud failure when violated.

The sanitizer re-derives every exchange step scalar-side; these tests
prove (a) arming it never changes rounds/messages/words/results, (b) each
check actually fires on a deliberately broken step, and (c) the
enablement plumbing (env var, ``sanitizing()`` scope) behaves.
"""

import pytest

from repro.congest.network import CongestNetwork
from repro.congest.sanitize import (
    SANITIZE_ENV,
    SanitizeViolation,
    payload_bits,
    sanitize_enabled,
    sanitizing,
    verify_phase_partition,
    verify_step,
    word_bits,
)
from repro.congest.batch import BatchedOutbox, batching
from repro.core.girth import girth_2approx
from repro.core.directed_mwc import directed_mwc_2approx
from repro.graphs import cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.obs import observing


def run_counters(fn):
    res = fn()
    return (res.value, res.rounds, res.stats.messages, res.stats.words)


class TestEnablement:
    def test_disabled_by_default(self):
        assert not sanitize_enabled()

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV, "off")
        assert not sanitize_enabled()

    def test_scope_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        with sanitizing(False):
            assert not sanitize_enabled()
        assert sanitize_enabled()
        with pytest.raises(RuntimeError):
            with sanitizing(True):
                assert sanitize_enabled()
                raise RuntimeError("boom")
        monkeypatch.delenv(SANITIZE_ENV)
        assert not sanitize_enabled()


class TestParity:
    """Sanitized runs are bit-identical to unsanitized ones."""

    def test_girth_identical_with_sanitizer(self):
        g = erdos_renyi(24, 0.14, seed=7)
        plain = run_counters(lambda: girth_2approx(g, seed=3))
        with sanitizing():
            armed = run_counters(lambda: girth_2approx(g, seed=3))
        assert plain == armed

    def test_directed_mwc_identical_on_both_engines(self):
        g = erdos_renyi(20, 0.18, directed=True, seed=2)
        for batch in (False, True):
            with batching(batch):
                plain = run_counters(lambda: directed_mwc_2approx(g, seed=1))
                with sanitizing():
                    armed = run_counters(
                        lambda: directed_mwc_2approx(g, seed=1))
            assert plain == armed, f"batching={batch}"

    def test_sanitizer_composes_with_metrics(self):
        g = cycle_graph(12)
        with observing(), sanitizing():
            res = girth_2approx(g, seed=0)
        assert res.value == 12


class TestPayloadModel:
    def test_scalars_are_cheap(self):
        assert payload_bits(0) == 2
        assert payload_bits(True) == 1
        assert payload_bits(None) == 1
        assert payload_bits(INF) == 2
        assert payload_bits(3.0) == payload_bits(3)
        assert payload_bits("tag") == 8

    def test_containers_scale_with_size(self):
        small = payload_bits({1: 2})
        big = payload_bits({i: i for i in range(40)})
        assert big > 40 * small // 2

    def test_word_bits_floor_and_growth(self):
        assert word_bits(10) == 64
        assert word_bits(10**6) == 8 * 20


class TestViolations:
    def net(self, n=8, **kw):
        return CongestNetwork(cycle_graph(n), **kw)

    def test_oversized_payload_in_dict_exchange(self):
        net = self.net()
        fat = {i: i * 3 for i in range(50)}
        with sanitizing():
            with pytest.raises(SanitizeViolation, match="bits"):
                net.exchange({0: {1: [(fat, 1)]}})

    def test_oversized_payload_in_batched_exchange(self):
        net = self.net()
        batch = BatchedOutbox()
        batch.send(0, 1, {i: i for i in range(50)})
        with sanitizing():
            with pytest.raises(SanitizeViolation, match="bits"):
                net.exchange_batched(batch)

    def test_honest_word_charge_passes(self):
        net = self.net()
        fat = {i: i * 3 for i in range(50)}
        with sanitizing():
            net.exchange({0: {1: [(fat, 50)]}})
        assert net.stats.words == 50

    def test_verify_step_catches_load_and_total_mismatch(self):
        net = self.net()
        msgs = [(0, 1, "x", 1), (1, 2, "y", 1)]
        verify_step(net, msgs, 1, 2, 2, engine="test")
        with pytest.raises(SanitizeViolation, match="max link load"):
            verify_step(net, msgs, 9, 2, 2, engine="test")
        with pytest.raises(SanitizeViolation, match="messages"):
            verify_step(net, msgs, 1, 3, 2, engine="test")

    def test_verify_step_catches_nonlocal_delivery(self):
        net = self.net()
        with pytest.raises(SanitizeViolation, match="non-edge"):
            verify_step(net, [(0, 4, "x", 1)], 1, 1, 1, engine="test")

    def test_phase_partition_corruption_detected(self):
        with observing():
            net = self.net()
            with net.phase("work"):
                net.exchange({0: {1: [("a", 1)]}})
            verify_phase_partition(net)  # intact: no raise
            net._phases.stats["work"].rounds += 7
            with pytest.raises(SanitizeViolation, match="partition"):
                verify_phase_partition(net)

    def test_partition_check_is_noop_without_metrics(self):
        net = self.net()
        assert net._phases is None
        verify_phase_partition(net)  # must not raise

    def test_passing_run_leaves_accounting_untouched(self):
        net_a, net_b = self.net(), self.net()
        out = {0: {1: [("m", 1)]}, 3: {2: [("m", 1)]}}
        net_a.exchange(out)
        with sanitizing():
            net_b.exchange(out)
        assert (net_a.rounds, net_a.stats) == (net_b.rounds, net_b.stats)
