"""Chaos test suite: algorithms vs. injected faults.

Property contract proved here, for drop rates up to 0.3:

* exact undirected MWC and single-source BFS over the retransmitting
  primitives return *exactly* the fault-free answer (faults cost rounds,
  never correctness);
* fail-stop crashes either degrade gracefully (results over the surviving
  network) or fail loudly (``RetryBudgetExceeded`` / partial results) —
  never silent corruption or hangs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import FaultPlan, FaultyNetwork, NodeCrash
from repro.congest.node import BfsProgram, run_programs
from repro.congest.primitives import (
    ReliableNetwork,
    RetryBudgetExceeded,
    reliable_bfs,
    reliable_broadcast,
    reliable_convergecast,
)
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.graphs import cycle_graph, erdos_renyi
from repro.graphs.graph import INF
from repro.sequential import bfs_distances, exact_mwc

#: The acceptance ceiling for masked message loss.
MAX_DROP = 0.3


def chaos_graph(seed, weighted=True):
    """Small connected workload graph; one per chaos seed."""
    return erdos_renyi(14 + (seed % 5), 0.22, weighted=weighted,
                       max_weight=9, seed=seed)


class TestExactMwcUnderDrops:
    """Acceptance: exact undirected MWC correct at p <= 0.3, >= 20 graphs."""

    @pytest.mark.parametrize("seed", range(20))
    def test_correct_cycle_weight(self, seed):
        g = chaos_graph(seed)
        drop = MAX_DROP * (seed % 4 + 1) / 4  # sweep 0.075 .. 0.3
        faulty = FaultyNetwork(g, FaultPlan(drop_rate=drop), seed=seed)
        res = exact_mwc_congest_on(ReliableNetwork(faulty))
        assert res.value == exact_mwc(g), (seed, drop)
        assert faulty.fault_stats.dropped_messages > 0

    def test_rounds_exceed_fault_free(self):
        g = chaos_graph(1)
        clean = exact_mwc_congest_on(
            ReliableNetwork(FaultyNetwork(g, FaultPlan(), seed=1)))
        noisy = exact_mwc_congest_on(
            ReliableNetwork(FaultyNetwork(g, FaultPlan(drop_rate=MAX_DROP),
                                          seed=1)))
        assert noisy.value == clean.value
        assert noisy.rounds > clean.rounds


class TestBfsUnderDrops:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           drop=st.floats(min_value=0.0, max_value=MAX_DROP),
           net_seed=st.integers(min_value=0, max_value=10_000))
    def test_distances_exact_despite_drops(self, seed, drop, net_seed):
        g = chaos_graph(seed, weighted=False)
        net = FaultyNetwork(g, FaultPlan(drop_rate=drop), seed=net_seed)
        dist, _ = reliable_bfs(net, 0)
        assert dist == bfs_distances(g, 0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           drop=st.floats(min_value=0.0, max_value=MAX_DROP))
    def test_convergecast_and_broadcast_exact(self, seed, drop):
        g = chaos_graph(seed, weighted=False)
        net = FaultyNetwork(g, FaultPlan(drop_rate=drop), seed=seed)
        values = [float((7 * v + seed) % 23) for v in range(g.n)]
        assert reliable_convergecast(net, values, min) == min(values)
        received = reliable_broadcast(net, {0: ["a", "b"], 1: ["c"]})
        assert all(r == ["a", "b", "c"] for r in received)


class TestDuplicationAndCorruption:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           dup=st.floats(min_value=0.0, max_value=0.4),
           corrupt=st.floats(min_value=0.0, max_value=0.3))
    def test_reliable_bfs_masks_dup_and_corruption(self, seed, dup, corrupt):
        g = chaos_graph(seed, weighted=False)
        plan = FaultPlan(duplicate_rate=dup, corrupt_rate=corrupt)
        net = FaultyNetwork(g, plan, seed=seed)
        dist, _ = reliable_bfs(net, 0)
        assert dist == bfs_distances(g, 0)


class TestCrashDegradation:
    def test_unreachable_receiver_raises_loudly(self):
        g = cycle_graph(6)
        plan = FaultPlan(crashes=(NodeCrash(1, at_round=0),))
        net = FaultyNetwork(g, plan, seed=0)
        with pytest.raises(RetryBudgetExceeded):
            reliable_bfs(net, 0, retry_budget=4)

    @pytest.mark.parametrize("seed", range(5))
    def test_node_programs_survive_crash_or_stay_partial(self, seed):
        # Fail-stop crash of a non-source node: every node the wave can
        # still reach gets its true distance in the cut graph; the dead
        # node reports nothing.
        g = erdos_renyi(16, 0.25, seed=seed)
        dead = 1 + seed % (g.n - 1)
        plan = FaultPlan(crashes=(NodeCrash(dead, at_round=0),))
        net = FaultyNetwork(g, plan, seed=seed)
        results = run_programs(net, [BfsProgram(0) for _ in range(g.n)],
                               max_rounds=200)
        assert results[dead] is None
        # Reference: BFS on the graph with the dead vertex's edges removed.
        ref = _bfs_without(g, 0, dead)
        for v in range(g.n):
            if v == dead:
                continue
            expected = None if ref[v] == INF else int(ref[v])
            assert results[v] == expected, (seed, dead, v)

    def test_recovering_node_rejoins(self):
        g = cycle_graph(8)
        plan = FaultPlan(crashes=(NodeCrash(4, at_round=0, recover_round=2),))
        net = FaultyNetwork(g, plan, seed=0)
        results = run_programs(net, [BfsProgram(0) for _ in range(8)],
                               max_rounds=100)
        # Node 4 is down only for the first rounds; the wave reaches it
        # after recovery, and every distance is the true cycle distance.
        assert results == [0, 1, 2, 3, 4, 3, 2, 1]


def _bfs_without(g, source, removed):
    """Hop distances from ``source`` ignoring vertex ``removed``."""
    from collections import deque

    dist = [INF] * g.n
    dist[source] = 0
    q = deque([source])
    while q:
        u = q.popleft()
        for v in g.out_neighbors(u):
            if v == removed or dist[v] != INF:
                continue
            dist[v] = dist[u] + 1
            q.append(v)
    return dist


class TestChaosObservabilityInterplay:
    """Metrics are pure observers of faulted, retransmitting traffic.

    The stop-and-wait retransmission protocol re-sends lost messages, and
    the fault layer duplicates others; the flat counters must count each
    wire copy exactly once (``stats.messages == delivered_messages``) and
    the phase buckets must still partition the flat totals exactly.
    """

    PLAN = FaultPlan(drop_rate=0.25, duplicate_rate=0.2)

    def _run(self, metrics, seed=3):
        g = chaos_graph(seed, weighted=False)
        net = FaultyNetwork(g, self.PLAN, seed=seed, metrics=metrics)
        dist, _ = reliable_bfs(net, 0)
        return g, net, dist

    def test_wire_stats_match_fault_bookkeeping_exactly(self):
        g, net, dist = self._run(metrics=True)
        assert dist == bfs_distances(g, 0)
        fs = net.fault_stats
        # Retransmissions genuinely happened and genuinely got faulted.
        assert fs.dropped_messages > 0 and fs.duplicated_messages > 0
        # The wire counters equal what the fault layer says it delivered:
        # no retransmission or duplicate is ever counted twice (or missed).
        assert net.stats.messages == fs.delivered_messages
        assert net.stats.words == fs.delivered_words
        # And the attempts partition into delivered-or-lost (duplicates are
        # extra wire copies of a single attempt).
        assert (fs.delivered_messages
                == fs.attempted_messages - fs.lost_messages()
                + fs.duplicated_messages)

    def test_phase_buckets_stay_exact_under_retransmission(self):
        g, net, _ = self._run(metrics=True)
        report = net.phase_report()
        assert "bfs" in report
        for key in ("rounds", "steps", "messages", "words"):
            total = {"rounds": net.rounds, "steps": net.stats.steps,
                     "messages": net.stats.messages,
                     "words": net.stats.words}[key]
            assert sum(b[key] for b in report.values()) == total, key

    def test_metrics_do_not_perturb_the_fault_sequence(self):
        _, plain, dist_plain = self._run(metrics=False)
        _, traced, dist_traced = self._run(metrics=True)
        assert dist_plain == dist_traced
        assert plain.rounds == traced.rounds
        assert plain.stats.messages == traced.stats.messages
        assert plain.stats.words == traced.stats.words
        assert plain.fault_stats.as_dict() == traced.fault_stats.as_dict()
        assert plain.phase_report() == {}
        assert traced.phase_report() != {}


class TestKernelEngineUnderFaults:
    """The vectorized kernel engine composes with fault injection.

    An active fault plan must see every message, so ``kernel_path`` (which
    rides on ``batching_supported``) is documented to refuse the fast path
    and take the scalar fallback — with counters bit-identical to a run
    that never asked for kernels. A zero plan is fully transparent, so the
    kernel may engage and must still match the dict engine exactly.
    """

    def _mwc(self, plan, use_kernels, seed=5):
        from repro.congest.batch import batching
        from repro.congest.kernels import kernels

        g = chaos_graph(seed, weighted=False)
        net = FaultyNetwork(g, plan, seed=seed)
        with batching(use_kernels), kernels(use_kernels):
            res = exact_mwc_congest_on(ReliableNetwork(net))
        return net, res

    def test_nonzero_plan_takes_scalar_fallback(self):
        from repro.congest.kernels import engaged_runs, kernel_path, kernels

        plan = FaultPlan(drop_rate=0.2)
        net = FaultyNetwork(chaos_graph(5, weighted=False), plan, seed=5)
        assert not net.batching_supported()
        before = engaged_runs()
        with kernels(True):
            assert not kernel_path(net)
            _, res = self._mwc(plan, use_kernels=True)
        assert engaged_runs() == before  # kernel never engaged
        assert res.value == exact_mwc(chaos_graph(5, weighted=False))

    def test_fallback_counters_bit_identical_to_scalar_run(self):
        plan = FaultPlan(drop_rate=0.2, duplicate_rate=0.1)
        net_k, res_k = self._mwc(plan, use_kernels=True)
        net_s, res_s = self._mwc(plan, use_kernels=False)
        assert res_k.value == res_s.value
        assert res_k.rounds == res_s.rounds
        assert res_k.stats == res_s.stats
        assert net_k.fault_stats.as_dict() == net_s.fault_stats.as_dict()
        assert net_k.fault_stats.dropped_messages > 0

    def test_zero_plan_lets_kernel_engage_and_match(self):
        from repro.congest.batch import batching
        from repro.congest.kernels import engaged_runs, kernels

        g = chaos_graph(5, weighted=False)
        net = FaultyNetwork(g, FaultPlan(), seed=5)
        assert net.batching_supported()
        before = engaged_runs()
        with batching(True), kernels(True):
            res_k = exact_mwc_congest_on(net)
        assert engaged_runs() > before  # kernel really ran
        with batching(False), kernels(False):
            res_s = exact_mwc_congest_on(FaultyNetwork(g, FaultPlan(), seed=5))
        assert (res_k.value, res_k.rounds, res_k.stats) == (
            res_s.value, res_s.rounds, res_s.stats)


class TestSanitizerUnderFaults:
    """The runtime sanitizer composes with fault injection.

    FaultyNetwork delegates survivor accounting to the base exchange, so
    an armed sanitizer re-verifies exactly the delivered (post-drop)
    traffic — and must neither perturb the fault sequence nor false-alarm
    on retransmission envelopes.
    """

    def _bfs_run(self, sanitize):
        from repro.congest.sanitize import sanitizing

        g = chaos_graph(4, weighted=False)
        faulty = FaultyNetwork(g, FaultPlan(drop_rate=0.2), seed=11)
        with sanitizing(sanitize):
            dist = reliable_bfs(faulty, 0)
        return faulty, dist

    def test_sanitized_faulty_run_is_bit_identical(self):
        plain_net, plain = self._bfs_run(sanitize=False)
        armed_net, armed = self._bfs_run(sanitize=True)
        assert plain == armed
        assert plain_net.rounds == armed_net.rounds
        assert plain_net.stats.messages == armed_net.stats.messages
        assert plain_net.stats.words == armed_net.stats.words
        assert (plain_net.fault_stats.as_dict()
                == armed_net.fault_stats.as_dict())
        assert plain_net.fault_stats.dropped_messages > 0

    def test_sanitizer_still_fires_through_fault_layer(self):
        from repro.congest.sanitize import SanitizeViolation, sanitizing

        g = chaos_graph(2, weighted=False)
        faulty = FaultyNetwork(g, FaultPlan(), seed=3)
        fat = {i: i for i in range(60)}
        with sanitizing():
            with pytest.raises(SanitizeViolation):
                faulty.exchange({0: {next(iter(sorted(g.neighbors(0)))):
                                     [(fat, 1)]}})
