"""Mini reproduction of the paper's Table 1 in one run.

Runs a reduced version of every upper-bound experiment at a single modest
size (so it finishes in ~a minute) and prints the paper-vs-measured table.
The full sweeps with exponent fits live in `benchmarks/` — this example is
the at-a-glance version.

Run:  python examples/paper_table.py
"""

from repro.analysis.tables import render_table
from repro.core.baselines import exact_girth_congest
from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.girth import girth_2approx
from repro.core.ksource import k_source_bfs, k_source_sssp
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs import erdos_renyi
from repro.sequential import exact_mwc


def main() -> None:
    n = 72
    measured = {}

    g = erdos_renyi(n, 5 / n, directed=True, seed=1)
    true = exact_mwc(g)
    res = exact_mwc_congest(g, seed=0)
    measured["T1-R1-UB"] = {"note": f"n={n}: {res.rounds} rounds, exact"}

    res = directed_mwc_2approx(g, seed=0)
    measured["T1-R2-UB"] = {
        "ratio_ok": true <= res.value <= 2 * true,
        "note": f"{res.rounds} rounds",
    }

    gw = erdos_renyi(n, 5 / n, directed=True, weighted=True, max_weight=8,
                     seed=1)
    truew = exact_mwc(gw)
    res = directed_weighted_mwc_approx(gw, eps=0.5, seed=0)
    measured["T1-R2-UBw"] = {
        "ratio_ok": truew <= res.value <= 2.5 * truew,
        "note": f"{res.rounds} rounds",
    }

    gu = erdos_renyi(n, 10 / n, weighted=True, max_weight=8, seed=1)
    trueu = exact_mwc(gu)
    res = exact_mwc_congest(gu, seed=0)
    measured["T1-R3-UB"] = {"note": f"{res.rounds} rounds, exact"}
    res = undirected_weighted_mwc_approx(gu, eps=0.5, seed=0)
    measured["T1-R4-UB"] = {
        "ratio_ok": trueu <= res.value <= 2.5 * trueu,
        "note": f"{res.rounds} rounds",
    }

    gg = erdos_renyi(n, 10 / n, seed=1)
    trueg = exact_mwc(gg)
    res = exact_girth_congest(gg, seed=0)
    measured["T1-R5-UB"] = {"note": f"{res.rounds} rounds, exact"}
    res = girth_2approx(gg, seed=0)
    measured["T1-R6-UB"] = {
        "ratio_ok": trueg <= res.value <= (2 - 1 / trueg) * trueg,
        "note": f"{res.rounds} rounds",
    }

    sources = list(range(0, n, 6))
    res = k_source_bfs(gg, sources, seed=0, method="skeleton")
    measured["T6-A"] = {"note": f"k={len(sources)}: {res.rounds} rounds"}
    res = k_source_sssp(gu, sources, eps=0.5, seed=0)
    measured["T6-B"] = {"note": f"k={len(sources)}: {res.rounds} rounds"}

    for lb in ("T1-R1-LB", "T1-R2-LB", "T1-R3-LB", "T1-R5-LB"):
        measured[lb] = {"note": "see benchmarks/bench_lb_*.py"}

    print(render_table(measured))


if __name__ == "__main__":
    main()
