"""Deadlock analysis in a distributed lock manager via directed MWC.

The paper's motivation (§1): "a shortest cycle can model the likelihood of
deadlocks in routing or in database applications [38]". This example builds
a waits-for graph — node = transaction, edge T -> U with weight = how long T
has already waited for a lock U holds — and uses the CONGEST MWC algorithms
to find the *tightest* deadlock cycle: the cycle of minimum total waiting
time is the one to break first (fewest wasted work units rolled back).

Run:  python examples/deadlock_detection.py
"""

import numpy as np

from repro.core.weighted_mwc import directed_weighted_mwc_approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.graphs import Graph
from repro.graphs.graph import INF
from repro.sequential.mwc import mwc_witness


def build_waits_for(num_txns: int = 40, seed: int = 3) -> Graph:
    """A synthetic waits-for graph with a couple of lock cycles."""
    rng = np.random.default_rng(seed)
    g = Graph(num_txns, directed=True, weighted=True)
    # Background waits: mostly acyclic (higher id waits on lower id).
    for t in range(1, num_txns):
        for _ in range(rng.integers(1, 3)):
            holder = int(rng.integers(0, t))
            g.add_edge(t, holder, int(rng.integers(1, 20)))
    # Two genuine deadlocks: a tight 3-cycle and a sprawling 6-cycle.
    tight = [5, 11, 23]
    for a, b in zip(tight, tight[1:] + tight[:1]):
        g.add_edge(a, b, int(rng.integers(1, 4)))
    wide = [2, 9, 17, 25, 31, 38]
    for a, b in zip(wide, wide[1:] + wide[:1]):
        g.add_edge(a, b, int(rng.integers(10, 25)))
    return g


def main() -> None:
    g = build_waits_for()
    print(f"waits-for graph: {g}")

    exact = exact_mwc_congest(g, seed=0)
    if exact.value == INF:
        print("no deadlock: waits-for graph is acyclic")
        return
    print(f"\ntightest deadlock (exact, {exact.rounds} rounds): "
          f"total wait {exact.value}")

    approx = directed_weighted_mwc_approx(g, eps=0.5, seed=0)
    print(f"(2+eps)-approx estimate ({approx.rounds} rounds): "
          f"total wait <= {approx.value:.1f}")

    weight, cycle = mwc_witness(g)
    print(f"\ntransactions to examine (cycle of weight {weight}):")
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        print(f"  T{a} waits {g.weight(a, b)} units on T{b}")
    victim = min(cycle)
    print(f"suggested victim to abort: T{victim} (breaks the tightest cycle)")


if __name__ == "__main__":
    main()
