"""Quickstart: compute a minimum weight cycle on a simulated CONGEST network.

Builds a small directed network, runs the exact Õ(n)-round algorithm and the
sublinear 2-approximation of Theorem 1.2.C side by side, and reports values,
measured rounds, and a witness cycle.

Run:  python examples/quickstart.py
"""

from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.graphs import planted_mwc
from repro.sequential import exact_mwc
from repro.sequential.mwc import mwc_witness


def main() -> None:
    # A 60-node random directed network with a planted short cycle
    # (random background edges may create an even shorter one).
    g = planted_mwc(60, cycle_len=4, p=0.04, directed=True, seed=7)
    print(f"network: {g}")
    print(f"underlying diameter D = {g.undirected_diameter()}")

    truth = exact_mwc(g)
    print(f"\nsequential ground truth: MWC = {truth}")

    exact = exact_mwc_congest(g, seed=0)
    print(f"exact CONGEST (APSP reduction): value = {exact.value}, "
          f"rounds = {exact.rounds}")

    approx = directed_mwc_2approx(g, seed=0)
    print(f"2-approx CONGEST (Thm 1.2.C):  value = {approx.value}, "
          f"rounds = {approx.rounds}")
    assert truth <= approx.value <= 2 * truth

    weight, cycle = mwc_witness(g)
    print(f"\nwitness cycle (weight {weight}): "
          f"{' -> '.join(map(str, cycle + [cycle[0]]))}")


if __name__ == "__main__":
    main()
