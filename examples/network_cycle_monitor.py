"""Monitoring a network's shortest redundancy cycle (girth) in sublinear time.

Cycles are the redundancy of a network: the girth bounds how locally a link
failure can be routed around. This example watches a router topology and
estimates its girth with the paper's Õ(sqrt(n) + D)-round algorithm
(Theorem 1.3.B), comparing against the prior Õ(sqrt(n g) + D) method of
Peleg–Roditty–Tal [44] and the exact O(n)-round baseline [28] — on a
large-girth ring-of-rings topology, the paper's algorithm is the only
sublinear one that stays fast as the girth grows.

Run:  python examples/network_cycle_monitor.py
"""

from repro.core.baselines import exact_girth_congest, girth_prt
from repro.core.girth import girth_2approx
from repro.graphs import Graph, cycle_graph, ring_of_cliques


def ring_of_rings(num_rings: int, ring_size: int) -> Graph:
    """Rings chained into a big ring: girth = ring_size, large diameter."""
    n = num_rings * ring_size
    g = Graph(n)
    for r in range(num_rings):
        base = r * ring_size
        for i in range(ring_size):
            g.add_edge(base + i, base + (i + 1) % ring_size)
        nxt = ((r + 1) % num_rings) * ring_size
        g.add_edge(base, nxt)
    return g


def report(name: str, g: Graph) -> None:
    print(f"\n--- {name}: n={g.n}, m={g.m}, D={g.undirected_diameter()} ---")
    ours = girth_2approx(g, seed=0)
    prt = girth_prt(g, seed=0)
    exact = exact_girth_congest(g, seed=0)
    print(f"exact girth [28]:        g = {exact.value:<6} rounds = {exact.rounds}")
    print(f"PRT (2-1/g)-approx [44]: g <= {prt.value:<5} rounds = {prt.rounds}")
    print(f"ours (Thm 1.3.B):        g <= {ours.value:<5} rounds = {ours.rounds}")
    assert exact.value <= ours.value <= (2 - 1 / exact.value) * exact.value


def main() -> None:
    report("metro ring of 16-rings", ring_of_rings(8, 16))
    report("datacenter pods (ring of cliques)", ring_of_cliques(10, 6))
    report("backbone ring (worst case for [44])", cycle_graph(160))


if __name__ == "__main__":
    main()
