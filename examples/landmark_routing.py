"""Landmark-based distance oracles via k-source BFS / approximate SSSP (§2).

A classic use of multi-source shortest paths: pick k landmark routers; after
one Õ(sqrt(nk) + D)-round precomputation (Theorem 1.6), every node knows its
distance to every landmark and any node pair can bound its distance by
min over landmarks of d(u, L) + d(L, v) — triangulation routing.

Run:  python examples/landmark_routing.py
"""

import numpy as np

from repro.core.ksource import k_source_bfs, k_source_sssp
from repro.graphs import cycle_with_chords
from repro.graphs.graph import INF
from repro.sequential import k_source_distances, distances


def main() -> None:
    n, k = 120, 12
    g = cycle_with_chords(n, num_chords=6, directed=True, seed=2)
    rng = np.random.default_rng(0)
    landmarks = sorted(int(x) for x in rng.choice(n, size=k, replace=False))
    print(f"topology: {g}, landmarks: {landmarks}")

    res = k_source_bfs(g, landmarks, seed=0, method="skeleton",
                       sample_constant=2.0)
    print(f"precomputation: {res.rounds} CONGEST rounds "
          f"(repeating BFS would need ~{k} * ecc)")

    # Oracle quality: triangulation upper bound vs true distance.
    rev = k_source_bfs(g.reverse(), landmarks, seed=0, method="skeleton",
                       sample_constant=2.0)
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(8, 2))]
    print("\nsample queries (true vs landmark triangulation):")
    for u, v in pairs:
        true = distances(g, u)[v]
        est = min(
            (rev.distance(lm, u) + res.distance(lm, v) for lm in landmarks),
            default=INF,
        )
        if true == INF:
            continue
        print(f"  d({u:>3} -> {v:>3}) = {int(true):<4} "
              f"triangulated <= {int(est) if est != INF else 'inf'}")
        assert est >= true

    # Weighted variant: (1+eps)-approximate landmark distances.
    gw = cycle_with_chords(n, num_chords=6, directed=True, weighted=True,
                           max_weight=9, seed=2)
    wres = k_source_sssp(gw, landmarks, eps=0.25, seed=0)
    ref = k_source_distances(gw, landmarks)
    worst = max(
        (wres.distance(lm, v) / ref[lm][v]
         for lm in landmarks for v in range(n)
         if ref[lm][v] not in (0, INF)),
        default=1.0,
    )
    print(f"\nweighted landmarks: {wres.rounds} rounds, "
          f"worst estimate ratio = {worst:.4f} (guarantee: 1.25)")


if __name__ == "__main__":
    main()
