"""A guided tour of the paper's lower-bound machinery.

Builds the Theorem 1.2.A reduction family step by step: encode a set
disjointness instance into a network, verify the 4-vs-8 MWC gap, compute
the implied round bound, and run a real CONGEST algorithm through the
two-party cut meter — demonstrating why (2 - eps)-approximation of directed
MWC cannot be sublinear while 2-approximation can.

Run:  python examples/lower_bound_tour.py
"""

from repro.core.directed_mwc import directed_mwc_2approx_on
from repro.lowerbounds import (
    directed_mwc_family,
    implied_round_bound,
    random_disjoint,
    random_intersecting,
    verify_instance,
)
from repro.lowerbounds.protocol import solve_disjointness_via_mwc


def main() -> None:
    m = 8
    k = m * m
    print(f"Encoding {k}-bit set disjointness into a {4 * m + 10}-node "
          f"directed network (Theorem 1.2.A family)\n")

    for label, maker in (("disjoint", random_disjoint),
                         ("intersecting", random_intersecting)):
        inst = directed_mwc_family(m, maker(k, seed=1))
        report = verify_instance(inst)
        print(f"{label} sets:  MWC = {report['mwc']}  "
              f"(cut = {report['cut']} edges, D = {report['diameter']})")
    print()

    inst = directed_mwc_family(m, random_disjoint(k, seed=1))
    bound = implied_round_bound(inst)
    print("Any algorithm distinguishing MWC=4 from MWC=8 — i.e. any")
    print(f"(2-eps)-approximation — solves disjointness, so it needs at")
    print(f"least k/(cut * log n) ~ {bound:.1f} rounds at this size,")
    print("growing as Omega(n / log n).\n")

    print("The reduction, end to end (exact algorithm as distinguisher):")
    outcome = solve_disjointness_via_mwc(inst, seed=0)
    print(f"  declared disjoint: {outcome['declared_disjoint']} "
          f"(correct: {outcome['correct']})")
    print(f"  rounds: {outcome['rounds']}, bits across the Alice/Bob cut: "
          f"{outcome['bits_crossed']} (k = {outcome['k_bits']})\n")

    print("Why 2-approximation escapes: composite 8-cycles cap the disjoint")
    print("value at exactly twice the intersecting value, so a factor-2")
    print("algorithm may legally answer 8 on both. Running the paper's")
    print("2-approximation on the intersecting instance:")
    yes = directed_mwc_family(m, random_intersecting(k, seed=1))
    result = solve_disjointness_via_mwc(yes, runner=directed_mwc_2approx_on,
                                        seed=0)
    print(f"  value reported: {result['value']} (anywhere in [4, 8] is a")
    print("  valid 2-approximation — the reduction cannot rely on it, which")
    print("  is exactly why the sublinear Theorem 1.2.C algorithm exists).")


if __name__ == "__main__":
    main()
