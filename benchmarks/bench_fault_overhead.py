"""EXP FAULT-OVERHEAD — round-overhead factor of retransmission vs. drop rate.

Runs exact undirected weighted MWC through the ack-and-retransmit layer
(`repro.congest.primitives.reliable`) on a `FaultyNetwork` while sweeping
the per-message drop probability, and reports the measured round count as
a multiple of the fault-free baseline. The stop-and-wait protocol predicts
an expected overhead factor of about ``2 / (1 - p)^2`` relative to the raw
(ack-free) execution: a factor 2 for acks even at p = 0, growing as both
data and ack must survive.

The ``n`` column of the persisted report is the drop rate in percent.
"""

from conftest import sparse_weighted
from repro.congest import FaultPlan, FaultyNetwork
from repro.congest.primitives import ReliableNetwork
from repro.core.exact_mwc import exact_mwc_congest_on
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

N = 48
DROP_PERCENTS = [0, 10, 20, 30]

_graph = sparse_weighted(N, seed=7, max_weight=16)
_truth = exact_mwc(_graph)
_baseline = None


def _baseline_rounds() -> int:
    """Fault-free rounds of the plain (ack-free) execution, computed once."""
    global _baseline
    if _baseline is None:
        res = exact_mwc_congest_on(FaultyNetwork(_graph, FaultPlan(), seed=1))
        assert res.value == _truth
        _baseline = res.rounds
    return _baseline


def _point(pct: int) -> SweepRow:
    p = pct / 100.0
    faulty = FaultyNetwork(_graph, FaultPlan(drop_rate=p), seed=1)
    res = exact_mwc_congest_on(ReliableNetwork(faulty))
    assert res.value == _truth, (pct, res.value, _truth)
    base = _baseline_rounds()
    stats = faulty.fault_stats
    return SweepRow(
        n=pct,
        rounds=res.rounds,
        value=float(res.value),
        true_value=float(_truth),
        extra={
            "drop_rate": p,
            "baseline_rounds": base,
            "overhead_factor": round(res.rounds / base, 3),
            "dropped_messages": stats.dropped_messages,
            "attempted_messages": stats.attempted_messages,
        },
    )


def test_fault_overhead_row(once):
    report = once(lambda: run_sweep(
        "FAULT-OVERHEAD", DROP_PERCENTS, _point, fit=False,
        notes=f"n={N}; exact undirected weighted MWC via reliable_exchange; "
              "n column = drop rate in percent"))
    emit(report)
    assert report.max_ratio() == 1.0  # correctness never degrades
    factors = [row.extra["overhead_factor"] for row in report.rows]
    # Even at p = 0 acks cost extra rounds (less than 2x: heavy data steps
    # amortize the 1-word acks); drops then grow the overhead further.
    assert factors[0] > 1.0
    assert factors[-1] > factors[0]
