"""EXP T1-R3-LB — Theorems 1.4.A/B: undirected weighted MWC lower bounds.

Part 1 (1.4.A): the layered weighted family — gap 2W+2 vs 4W verified,
implied bound k/(cut log n) growing ~ n.
Part 2 (1.4.B): the alpha-gap loop family — gap > alpha verified, implied
zone bound growing ~ sqrt(n).
"""

import math

from repro.harness import SweepRow, emit, run_sweep
from repro.lowerbounds import (
    alpha_approx_undirected_family,
    implied_round_bound,
    random_disjoint,
    random_intersecting,
    undirected_weighted_family,
    verify_instance,
)

MS = [6, 12, 24, 48]
LOOPS = [(4, 4), (8, 8), (16, 16), (32, 32)]  # (k, ell) ~ (sqrt n, sqrt n)
W = 64
ALPHA = 4.0


def _point_2eps(m: int) -> SweepRow:
    yes = undirected_weighted_family(m, random_intersecting(m * m, seed=m), W=W)
    no = undirected_weighted_family(m, random_disjoint(m * m, seed=m + 1), W=W)
    assert verify_instance(yes)["mwc"] == 2 * W + 2
    rep_no = verify_instance(no)
    assert rep_no["mwc"] == 4 * W
    return SweepRow(n=no.graph.n, rounds=implied_round_bound(no),
                    extra={"k_bits": no.k_bits, "cut": rep_no["cut"]})


def _point_alpha(params) -> SweepRow:
    k, ell = params
    yes = alpha_approx_undirected_family(k, ell, ALPHA,
                                         random_intersecting(k, seed=k))
    no = alpha_approx_undirected_family(k, ell, ALPHA,
                                        random_disjoint(k, seed=k + 1))
    rep_yes = verify_instance(yes)
    rep_no = verify_instance(no)
    assert rep_no["mwc"] > ALPHA * rep_yes["mwc"]
    return SweepRow(n=no.graph.n, rounds=implied_round_bound(no),
                    extra={"k_bits": no.k_bits, "ell": ell})


def test_lb_undirected_2eps_row(once):
    report = once(lambda: run_sweep("T1-R3-LB", MS, _point_2eps))
    report.notes = "1.4.A family; 'rounds' = implied bound k/(cut log n)"
    emit(report)
    assert 0.75 <= report.fit.exponent <= 1.25


def test_lb_undirected_alpha_row(once):
    def sweep():
        return [_point_alpha(p) for p in LOOPS]

    rows = once(sweep)
    for row in rows:
        print(f"  n={row.n}: implied >= {row.rounds:.2f} (k={row.extra['k_bits']})")
    # Zone bound min(ell/2, k/polylog) with k = ell = Theta(sqrt n): the
    # implied bound must grow roughly like sqrt(n) (polylog bends the
    # small-n slope downward).
    growth = math.log(rows[-1].rounds / rows[0].rounds) / math.log(
        rows[-1].n / rows[0].n)
    assert 0.2 <= growth <= 0.8, growth
