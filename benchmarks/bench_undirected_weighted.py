"""EXP T1-R4-UB — Theorem 1.4.C: (2+eps)-approx undirected weighted MWC.

Paper claim: Õ(n^{2/3} + D) rounds, ratio <= 2 + eps. One hidden log factor
comes from the O(log nW)-size scale ladder.
"""

from conftest import sparse_weighted
from repro.core.weighted_mwc import undirected_weighted_mwc_approx
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [48, 96, 192, 320]
EPS = 0.5


def _point(n: int) -> SweepRow:
    g = sparse_weighted(n, seed=n, max_weight=12)
    true = exact_mwc(g)
    res = undirected_weighted_mwc_approx(g, eps=EPS, seed=1)
    assert true <= res.value <= (2 + EPS) * true + 1e-9, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true,
                    extra={"scales": res.details["num_scales"]})


def test_undirected_weighted_row(once):
    report = once(lambda: run_sweep("T1-R4-UB", SIZES, _point,
                                    polylog_correction=2.0))
    emit(report)
    assert report.max_ratio() <= 2 + EPS
    assert report.corrected_fit.exponent < 1.0
