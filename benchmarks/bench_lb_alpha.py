"""EXP T1-R2-LB — Theorem 1.2.B: alpha-approx directed MWC needs Ω̃(sqrt(n)).

Loop family with k = ell = Θ(sqrt(n)): gap > alpha verified for alpha in
{2, 8}, diameter O(log n) via the directed out-tree overlay, implied zone
bound growing ~ sqrt(n).
"""

import math

from repro.harness import SweepRow
from repro.lowerbounds import (
    alpha_approx_directed_family,
    implied_round_bound,
    random_disjoint,
    random_intersecting,
    verify_instance,
)

LOOPS = [(4, 4), (8, 8), (16, 16), (32, 32)]
ALPHA = 8.0


def _point(params) -> SweepRow:
    k, ell = params
    yes = alpha_approx_directed_family(k, ell, ALPHA,
                                       random_intersecting(k, seed=k))
    no = alpha_approx_directed_family(k, ell, ALPHA,
                                      random_disjoint(k, seed=k + 1))
    rep_yes = verify_instance(yes)
    rep_no = verify_instance(no)
    assert rep_no["mwc"] > ALPHA * rep_yes["mwc"]
    assert rep_no["diameter"] <= 4 * math.ceil(math.log2(no.graph.n)) + 4
    return SweepRow(n=no.graph.n, rounds=implied_round_bound(no),
                    extra={"k_bits": no.k_bits, "ell": ell,
                           "diameter": rep_no["diameter"]})


def test_lb_alpha_directed_row(once):
    def sweep():
        return [_point(p) for p in LOOPS]

    rows = once(sweep)
    for row in rows:
        print(f"  n={row.n}: implied >= {row.rounds:.2f} "
              f"(D={row.extra['diameter']})")
    growth = math.log(rows[-1].rounds / rows[0].rounds) / math.log(
        rows[-1].n / rows[0].n)
    assert 0.25 <= growth <= 0.8, growth  # Omega~(sqrt(n)); polylog bends the small-n slope


def test_lb_alpha_gap_scales_with_alpha(once):
    """The same family supports arbitrarily large constant alpha."""

    def run():
        out = []
        for alpha in (2.0, 4.0, 16.0):
            k, ell = 8, 8
            no = alpha_approx_directed_family(
                k, ell, alpha, random_disjoint(k, seed=1))
            yes = alpha_approx_directed_family(
                k, ell, alpha, random_intersecting(k, seed=2))
            out.append((alpha, verify_instance(yes)["mwc"],
                        verify_instance(no)["mwc"]))
        return out

    rows = once(run)
    for alpha, y, n_ in rows:
        print(f"  alpha={alpha}: yes={y}, no={n_}")
        assert n_ > alpha * y
