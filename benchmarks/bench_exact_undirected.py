"""EXP T1-R3-UB — exact undirected *weighted* MWC via APSP, Õ(n) ([8]).

Substitution note (DESIGN.md §1 / EXPERIMENTS.md): the weighted APSP
substrate is the improvement-driven pipelined Bellman–Ford skeleton of [8];
its measured rounds are near-linear on these workloads, while [8]'s full
machinery guarantees Õ(n) in the worst case.
"""

from conftest import sparse_weighted
from repro.core.exact_mwc import exact_mwc_congest
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [48, 96, 192, 384]


def _point(n: int) -> SweepRow:
    g = sparse_weighted(n, seed=n, max_weight=16)
    true = exact_mwc(g)
    res = exact_mwc_congest(g, seed=1)
    assert res.value == true, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true)


def test_exact_undirected_weighted_row(once):
    report = once(lambda: run_sweep(
        "T1-R3-UB", SIZES, _point,
        notes="improvement-driven pipelined BF APSP (skeleton of [8])"))
    emit(report)
    assert report.max_ratio() == 1.0
    assert 0.7 <= report.fit.exponent <= 1.4
