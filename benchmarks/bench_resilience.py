"""EXP BENCH_RESILIENCE — resilience layer overhead: checkpoints and journal.

Two lanes, both asserting the resilience machinery is observationally free
before recording what it costs in wall clock:

* ``mwc-ckpt`` points run exact MWC twice — plain, then with a
  :class:`repro.congest.checkpoint.CheckpointManager` snapshotting every 32
  rounds — and assert value/rounds/messages/words are identical (a
  checkpointed run IS the plain run, plus periodic pickling). The persisted
  row records both wall times and how many snapshots were cut.
* The ``journal`` point runs the same micro-sweep through ``run_sweep``
  twice — the classic pool path, then the supervised path with a JSONL
  sweep journal — and asserts the two reports have the same
  :func:`repro.harness.report_fingerprint` (journaling never perturbs
  results). Wall times of both sweeps ride along.

The checked-in ``benchmarks/results/BENCH_RESILIENCE.json`` is a golden
baseline: round counts must not drift (they are deterministic), and
``benchmarks/check_regression.py --suite resilience`` applies the committed
file as a standalone gate (rounds within 20%, wall clock within 2x), fencing
checkpoint/journal overhead the same way BENCH_SIMCORE fences the engines.
"""

import json
import os
import tempfile
import time

from conftest import sparse_graph, sparse_weighted
from repro.congest.checkpoint import CheckpointManager
from repro.core.exact_mwc import exact_mwc_congest
from repro.harness import (
    SweepRow,
    emit,
    report_fingerprint,
    results_dir,
    run_sweep,
)

EXP_ID = "BENCH_RESILIENCE"

# (workload, size): the mwc-ckpt sizes keep the checkpointed rerun cheap
# enough for a CI smoke job while still cutting several snapshots; the
# journal point's "size" is the number of inner sweep points.
POINTS = [
    ("mwc-ckpt", 36),
    ("mwc-ckpt", 56),
    ("journal", 3),
]

CHECKPOINT_INTERVAL = 32

INNER_SIZES = [10, 14, 18]


def _inner_point(n: int) -> SweepRow:
    """Micro-workload for the journal lane: small unweighted exact MWC."""
    res = exact_mwc_congest(sparse_graph(n, seed=n), seed=1)
    return SweepRow(n=n, rounds=res.rounds, value=float(res.value),
                    extra={"messages": res.stats.messages})


def _checkpoint_point(size: int) -> SweepRow:
    g = sparse_weighted(size, seed=size, max_weight=12)
    start = time.perf_counter()
    plain = exact_mwc_congest(g, seed=1)
    baseline_seconds = time.perf_counter() - start

    ck = CheckpointManager(f"bench|{EXP_ID}|mwc|{size}",
                           interval=CHECKPOINT_INTERVAL)
    start = time.perf_counter()
    with_ck = exact_mwc_congest(g, seed=1, checkpoint=ck)
    checkpoint_seconds = time.perf_counter() - start

    # Checkpointing must be observationally free: same answer, same
    # simulation accounting, down to the message/word totals.
    assert with_ck.value == plain.value, (size, with_ck.value, plain.value)
    assert with_ck.rounds == plain.rounds, (size, with_ck, plain)
    assert with_ck.stats == plain.stats, (size, with_ck.stats, plain.stats)
    snapshots = with_ck.details["checkpoint"]["saved"]
    assert snapshots >= 1, "checkpoint cadence never fired"
    return SweepRow(
        n=size, rounds=plain.rounds, value=float(plain.value),
        extra={"workload": "mwc-ckpt",
               "messages": plain.stats.messages,
               "words": plain.stats.words,
               "snapshots": snapshots,
               "baseline_seconds": round(baseline_seconds, 4),
               "checkpoint_seconds": round(checkpoint_seconds, 4)})


def _journal_point() -> SweepRow:
    start = time.perf_counter()
    classic = run_sweep(f"{EXP_ID}_INNER", INNER_SIZES, _inner_point,
                        fit=False, jobs=1)
    journal_off_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "sweep.jsonl")
        start = time.perf_counter()
        journaled = run_sweep(f"{EXP_ID}_INNER", INNER_SIZES, _inner_point,
                              fit=False, jobs=1, journal=journal)
        journal_on_seconds = time.perf_counter() - start
        assert os.path.exists(journal), "journal file was never written"

    # The journal records the sweep; it must not change it.
    assert report_fingerprint(journaled) == report_fingerprint(classic)
    rounds = sum(r.rounds for r in classic.rows)
    return SweepRow(
        n=len(INNER_SIZES), rounds=rounds,
        extra={"workload": "journal",
               "inner_sizes": list(INNER_SIZES),
               "journal_off_seconds": round(journal_off_seconds, 4),
               "journal_on_seconds": round(journal_on_seconds, 4)})


def _point(idx: int) -> SweepRow:
    kind, size = POINTS[idx]
    if kind == "mwc-ckpt":
        return _checkpoint_point(size)
    return _journal_point()


def _baseline_rounds():
    """Round counts from the checked-in baseline, or None on first run."""
    path = os.path.join(results_dir(), f"{EXP_ID}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        payload = json.load(f)
    return {(r["extra"]["workload"], r["n"]): r["rounds"]
            for r in payload["rows"]}


def test_resilience_overhead_and_baseline(once):
    baseline = _baseline_rounds()
    report = once(lambda: run_sweep(
        EXP_ID, list(range(len(POINTS))), _point, fit=False,
        notes="checkpointed runs asserted bit-identical to plain runs; "
              "journaled sweeps asserted fingerprint-identical to classic "
              "sweeps; *_seconds are wall times of each lane"))
    if baseline is not None:
        fresh = {(r.extra["workload"], r.n): r.rounds for r in report.rows}
        assert fresh == baseline, \
            "round counts drifted from BENCH_RESILIENCE.json"
    emit(report)
