"""EXP T6-B — Theorem 1.6.B: (1+eps)-approx k-source SSSP, Õ(sqrt(nk) + D).

Weighted directed high-eccentricity workload (cycle plus chords), k-sweep:
every estimate within (1+eps) of the true distance and never below it;
rounds grow sublinearly in k.
"""

from repro.core.ksource import k_source_sssp
from repro.graphs import cycle_with_chords
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_k_source_distances as k_source_distances

N = 96
KS = [16, 24, 40, 64, 96]
EPS = 0.5


def workload():
    return cycle_with_chords(N, num_chords=3, directed=True, weighted=True,
                             max_weight=6, seed=4)


def _point(k: int) -> SweepRow:
    g = workload()
    sources = list(range(0, N, max(1, N // k)))[:k]
    res = k_source_sssp(g, sources, eps=EPS, seed=1, sample_constant=1.0)
    ref = k_source_distances(g, sources)
    worst = 1.0
    for u in sources:
        for v in range(N):
            true = ref[u][v]
            got = res.distance(u, v)
            if true == float("inf"):
                assert got == float("inf")
                continue
            assert got >= true - 1e-9, (u, v)
            if true > 0:
                worst = max(worst, got / true)
    return SweepRow(n=k, rounds=res.rounds, extra={"worst_ratio": round(worst, 4)})


def test_ksource_sssp_curve(once):
    report = once(lambda: run_sweep("T6-B", KS, _point, polylog_correction=1.0))
    report.notes = f"fixed n={N}, eps={EPS}, high-eccentricity workload"
    emit(report)
    assert all(r.extra["worst_ratio"] <= 1 + EPS + 1e-9 for r in report.rows)
    assert report.fit.exponent < 0.9
