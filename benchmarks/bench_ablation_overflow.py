"""EXP ABL-1 — ablation: phase-overflow handling in Algorithm 3 (§3.1).

The paper separates *phase-overflow vertices* and serves them with a
dedicated pipelined BFS, arguing this caps per-phase congestion. Disabling
the caps (``enforce_caps=False``) lets the simulator charge the true
uncapped per-phase load; on bottleneck-heavy workloads (a hub vertex that
lies in P(v) for nearly every v) the capped variant's maximum per-step link
load stays bounded while the uncapped variant's grows with n.
"""

from repro.core.directed_mwc import DirectedMwcParams, directed_mwc_2approx
from repro.graphs import Graph
from repro.harness import SweepRow
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [32, 64, 128]


def hub_workload(n: int) -> Graph:
    """A hub on every short cycle: maximal P(v)-overlap congestion."""
    g = Graph(n, directed=True)
    hub = 0
    for v in range(1, n - 1):
        g.add_edge(hub, v)
        g.add_edge(v, (v % (n - 2)) + 1)
        g.add_edge(v, hub)
    g.add_edge(n - 1, hub)
    g.add_edge(hub, n - 1)
    return g


def _run(n: int, enforce: bool) -> SweepRow:
    g = hub_workload(n)
    true = exact_mwc(g)
    params = DirectedMwcParams(cap=6, beta=3, enforce_caps=enforce)
    res = directed_mwc_2approx(g, seed=1, params=params)
    assert true <= res.value <= 2 * true
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true,
                    extra={"max_link_load": res.stats.max_link_load,
                           "overflow": res.details["overflow_count"]})


def test_overflow_ablation(once):
    def sweep():
        capped = [_run(n, True) for n in SIZES]
        uncapped = [_run(n, False) for n in SIZES]
        return capped, uncapped

    capped, uncapped = once(sweep)
    for c, u in zip(capped, uncapped):
        print(f"  n={c.n}: capped max-load={c.extra['max_link_load']} "
              f"(overflow={c.extra['overflow']}), "
              f"uncapped max-load={u.extra['max_link_load']}")
    # Both remain correct; without caps the peak per-step congestion grows
    # past the capped variant's on the largest instance.
    assert uncapped[-1].extra["max_link_load"] >= capped[-1].extra["max_link_load"]
