"""EXP ABL-4 — APSP substrate modes (substitution study for the Õ(n) rows).

DESIGN.md §1 documents that the exact weighted APSP substrate is the
improvement-driven pipelined Bellman–Ford *skeleton* of [8] (near-linear
measured rounds, no worst-case certificate), while ``apsp_approx`` is the
scaling-based (1+eps) APSP of [41] with a *guaranteed* Õ(n/eps) bound. This
bench runs both on the same workloads: the exact mode should track ~n
rounds, the approx mode should too but with the guarantee — and both
derived MWC values must bracket correctly.
"""

from conftest import sparse_weighted
from repro.core.apsp import apsp_approx, apsp_weighted_exact, mwc_via_approx_apsp
from repro.harness import SweepRow
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [32, 64, 128, 256]
EPS = 0.5


def test_apsp_modes(once):
    def sweep():
        rows = []
        for n in SIZES:
            g = sparse_weighted(n, seed=n, max_weight=9)
            exact = apsp_weighted_exact(g, seed=1)
            approx = apsp_approx(g, eps=EPS, seed=1)
            true = exact_mwc(g)
            via = mwc_via_approx_apsp(g, eps=EPS, seed=1)
            assert true - 1e-9 <= via.value <= (1 + EPS) * true + 1e-9
            rows.append(SweepRow(
                n=n, rounds=exact.rounds, value=via.value, true_value=true,
                extra={"approx_rounds": approx.rounds}))
        return rows

    rows = once(sweep)
    for row in rows:
        print(f"  n={row.n}: exact={row.rounds} approx={row.extra['approx_rounds']} "
              f"mwc ratio={row.ratio:.3f}")
    # Both modes near-linear; the guaranteed mode's overhead is the
    # O(log nW) scale ladder.
    import math
    exact_growth = math.log(rows[-1].rounds / rows[0].rounds) / math.log(
        rows[-1].n / rows[0].n)
    assert 0.7 <= exact_growth <= 1.3
