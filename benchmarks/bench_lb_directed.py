"""EXP T1-R1-LB — Theorem 1.2.A: (2-eps)-approx directed MWC needs Ω(n/log n).

Regenerates the lower-bound row: builds the disjointness-encoding family at
growing sizes, machine-verifies the 4-vs-8 gap and the constant diameter,
computes the implied round bound k/(cut log n) (slope ~ 1 in n), and runs
the real exact algorithm through the two-party cut meter to show a correct
distinguisher indeed moves Ω(k)-scale information across the cut.
"""

from repro.core.exact_mwc import exact_mwc_congest_on
from repro.harness import SweepRow, emit, run_sweep
from repro.lowerbounds import (
    directed_mwc_family,
    implied_round_bound,
    measure_cut_traffic,
    random_disjoint,
    random_intersecting,
    verify_instance,
)

MS = [6, 12, 24, 48]


def _point(m: int) -> SweepRow:
    yes = directed_mwc_family(m, random_intersecting(m * m, seed=m))
    no = directed_mwc_family(m, random_disjoint(m * m, seed=m + 1))
    rep_yes = verify_instance(yes)
    rep_no = verify_instance(no)
    assert rep_yes["mwc"] == 4 and rep_no["mwc"] == 8
    bound = implied_round_bound(no)
    return SweepRow(n=no.graph.n, rounds=bound,
                    extra={"k_bits": no.k_bits, "cut": rep_no["cut"],
                           "diameter": rep_no["diameter"]})


def test_lb_directed_row(once):
    report = once(lambda: run_sweep("T1-R1-LB", MS, _point))
    report.notes = ("'rounds' column = implied lower bound k/(cut log n); "
                    "gap 4 vs 8 verified per instance")
    emit(report)
    assert 0.75 <= report.fit.exponent <= 1.25  # Omega(n / log n)
    assert all(r.extra["diameter"] <= 4 for r in report.rows)


def test_lb_directed_cut_traffic(once):
    def run():
        inst = directed_mwc_family(12, random_disjoint(144, seed=3))
        return measure_cut_traffic(inst, exact_mwc_congest_on, seed=0)

    outcome = once(run)
    print(f"  exact distinguisher crossed {outcome['bits_crossed']} bits "
          f"(k = {outcome['k_bits']})")
    assert outcome["result"].value == 8
    assert outcome["bits_crossed"] >= outcome["k_bits"] / 8
