#!/usr/bin/env python
"""Kill-mid-sweep / resume smoke test for the resilience layer.

The CI resilience job runs this script with no arguments. It

1. runs a small journaled sweep to completion in-process (the reference);
2. re-runs the same sweep in a child process that ``os._exit``\\ s the
   moment the journal holds two completed points — a hard crash, no
   ``finally`` blocks, exactly what a preempted CI runner does;
3. verifies the child died mid-sweep (sentinel exit code, torn journal
   holding only the completed prefix);
4. resumes from the journal in the parent via
   ``run_sweep(..., resume=True)`` and asserts the merged report's
   :func:`repro.harness.report_fingerprint` is byte-identical to the
   uninterrupted reference.

Exit codes: 0 pass, 1 assertion failure, anything else infrastructure.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
for path in (os.path.join(os.path.dirname(HERE), "src"), HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.core.exact_mwc import exact_mwc_congest  # noqa: E402
from repro.graphs import erdos_renyi  # noqa: E402
from repro.harness import SweepRow, report_fingerprint, run_sweep  # noqa: E402
from repro.resilience.journal import read_journal  # noqa: E402

EXP_ID = "RESILIENCE_SMOKE"
SIZES = [10, 13, 16, 19]
KILL_AFTER = 2  # child dies at the start of point KILL_AFTER (0-based)
KILL_EXIT_CODE = 70
KILL_ENV = "RESILIENCE_SMOKE_KILL"

_calls = 0


def _point(n: int) -> SweepRow:
    """One sweep point: exact MWC on a small deterministic graph.

    In the child process (KILL_ENV set) the process hard-exits at the
    start of the third call, leaving the journal with two completed
    points and no clean shutdown.
    """
    global _calls
    if os.environ.get(KILL_ENV) and _calls == KILL_AFTER:
        os._exit(KILL_EXIT_CODE)
    _calls += 1
    g = erdos_renyi(n, p=min(1.0, 6.0 / n), weighted=True, max_weight=9,
                    seed=n)
    res = exact_mwc_congest(g, seed=1)
    return SweepRow(n=n, rounds=res.rounds, value=float(res.value),
                    extra={"messages": res.stats.messages,
                           "words": res.stats.words})


def _child(journal: str) -> None:
    run_sweep(EXP_ID, SIZES, _point, fit=False, jobs=1, journal=journal)
    os._exit(3)  # unreachable: the kill switch must fire first


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2])
        return 3

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "smoke.jsonl")

        print(f"reference: uninterrupted journaled sweep over n={SIZES}")
        reference = run_sweep(EXP_ID, SIZES, _point, fit=False, jobs=1,
                              journal=os.path.join(tmp, "reference.jsonl"))
        want = report_fingerprint(reference)

        print(f"child: same sweep, hard-killed after {KILL_AFTER} points")
        env = dict(os.environ, **{KILL_ENV: "1"})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(HERE), "src"),
                        env.get("PYTHONPATH")) if p)
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", journal],
            env=env, timeout=300)
        if proc.returncode != KILL_EXIT_CODE:
            print(f"FAIL: child exited {proc.returncode}, expected the "
                  f"mid-sweep kill sentinel {KILL_EXIT_CODE}")
            return 1

        _, completed = read_journal(journal)
        if sorted(completed) != list(range(KILL_AFTER)):
            print(f"FAIL: journal holds points {sorted(completed)}, "
                  f"expected exactly {list(range(KILL_AFTER))}")
            return 1
        print(f"journal survived with points {sorted(completed)} completed")

        print("parent: resuming the interrupted sweep from the journal")
        resumed = run_sweep(EXP_ID, SIZES, _point, fit=False, jobs=1,
                            journal=journal, resume=True)
        got = report_fingerprint(resumed)
        if got != want:
            print("FAIL: resumed report fingerprint differs from the "
                  "uninterrupted run")
            print(f"  reference: {want}")
            print(f"  resumed:   {got}")
            return 1
        print(f"resumed report fingerprint matches the reference: {got}")
        print("resilience smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
