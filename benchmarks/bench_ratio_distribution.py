"""EXP QUAL-1 — approximation-quality distribution across seeds/workloads.

The paper proves worst-case ratios (2, 2-1/g, 2+eps); this experiment
measures the *empirical* ratio distribution of every approximation
algorithm over many (graph, seed) pairs. Expected shape: heavily
concentrated at 1.0 (the algorithms are exact whenever a sampled vertex
lands on an optimal cycle, which is the common case), never above the
guarantee.
"""

import statistics

from conftest import sparse_digraph, sparse_graph, sparse_weighted
from repro.core.directed_mwc import directed_mwc_2approx
from repro.core.girth import GirthParams, girth_2approx
from repro.core.weighted_mwc import (
    directed_weighted_mwc_approx,
    undirected_weighted_mwc_approx,
)
from repro.graphs import cycle_with_chords
from repro.graphs.graph import INF
from repro.cache import cached_exact_mwc as exact_mwc

N = 40
SEEDS = range(6)

# Starved sampling/neighborhood constants: forces the approximation paths
# to actually engage (default constants make every run exact at this n).
LEAN_GIRTH = GirthParams(sample_constant=0.4, sigma_constant=0.3)

CASES = [
    ("girth 2-1/g", lambda s: sparse_graph(N, seed=100 + s),
     lambda g, s: girth_2approx(g, seed=s), 2.0),
    ("girth (lean)", lambda s: cycle_with_chords(48, 4, seed=200 + s),
     lambda g, s: girth_2approx(g, seed=s, params=LEAN_GIRTH), 2.0),
    ("directed 2", lambda s: sparse_digraph(N, seed=100 + s),
     lambda g, s: directed_mwc_2approx(g, seed=s), 2.0),
    ("undirected 2+eps", lambda s: sparse_weighted(N, seed=100 + s),
     lambda g, s: undirected_weighted_mwc_approx(g, eps=0.5, seed=s), 2.5),
    ("directed 2+eps",
     lambda s: sparse_weighted(N, seed=100 + s, directed=True),
     lambda g, s: directed_weighted_mwc_approx(g, eps=0.5, seed=s), 2.5),
]


def test_ratio_distribution(once):
    def sweep():
        table = {}
        for name, workload, algorithm, bound in CASES:
            ratios = []
            for s in SEEDS:
                g = workload(s)
                true = exact_mwc(g)
                if true == INF:
                    continue
                res = algorithm(g, s)
                assert true - 1e-9 <= res.value <= bound * true + 1e-9, (
                    name, s, true, res.value)
                ratios.append(res.value / true)
            table[name] = ratios
        return table

    table = once(sweep)
    for name, ratios in table.items():
        mean = statistics.mean(ratios)
        worst = max(ratios)
        exact_frac = sum(1 for r in ratios if r <= 1 + 1e-9) / len(ratios)
        print(f"  {name:<18} mean={mean:.3f} worst={worst:.3f} "
              f"exact={100 * exact_frac:.0f}% ({len(ratios)} runs)")
        assert worst <= 2.5 + 1e-9
        # Concentration claim: the typical run is exact or near-exact.
        assert mean <= 1.5
