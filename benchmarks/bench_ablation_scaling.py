"""EXP ABL-3 — ablation: the eps knob of the §5 scaling ladder.

In the worst case a smaller eps costs more rounds (hop budget
h* = (1 + 2/eps) h per scale). On simulated workloads the waves are
quiescence-driven — they stop when distances are settled, well before the
budget — so the *measured* rounds stay nearly flat and the knob's visible
effect is accuracy: the scaled weights are coarser for larger eps, so the
returned value drifts up (while always staying within the (2+eps)
guarantee). The sweep documents both observations.
"""

from repro.graphs import cycle_with_chords
from repro.core.weighted_mwc import undirected_weighted_mwc_approx
from repro.harness import SweepRow
from repro.cache import cached_exact_mwc as exact_mwc

N = 96
EPSES = [0.25, 0.5, 1.0, 2.0]


def test_scaling_eps_ablation(once):
    g = cycle_with_chords(N, 8, weighted=True, max_weight=12, seed=3)
    true = exact_mwc(g)

    def sweep():
        rows = []
        for eps in EPSES:
            res = undirected_weighted_mwc_approx(g, eps=eps, seed=1)
            assert true <= res.value <= (2 + eps) * true + 1e-9
            rows.append(SweepRow(n=int(eps * 100), rounds=res.rounds,
                                 value=res.value, true_value=true,
                                 extra={"eps": eps,
                                        "scales": res.details["num_scales"]}))
        return rows

    rows = once(sweep)
    for row in rows:
        print(f"  eps={row.extra['eps']}: rounds={row.rounds} "
              f"ratio={row.ratio:.3f} scales={row.extra['scales']}")
    # Accuracy degrades (weakly) as eps coarsens the scaled weights...
    assert rows[-1].value >= rows[0].value
    # ...while measured rounds stay within a narrow band (quiescence-driven
    # exploration; the h* budget is a worst-case cap, not a typical cost).
    all_rounds = [r.rounds for r in rows]
    assert max(all_rounds) <= 1.25 * min(all_rounds)
