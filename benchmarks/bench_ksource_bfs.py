"""EXP T6-A — Theorem 1.6.A: exact k-source BFS, Õ(sqrt(nk) + D).

Workload: a directed cycle with a few chords — eccentricities are Θ(n), so
the skeleton machinery (not plain h-hop BFS) carries the long distances and
the sqrt(nk) shape is exposed. The theorem's regime at simulable n starts
where the skeleton broadcast |S|^2 = (n log n / h)^2 is dominated, i.e.
k >= n^{1/3} polylog; the sweep stays in that range.

Checks: exactness at every k; sublinear-in-k growth; the skeleton algorithm
beats the k * SSSP repetition baseline (k * Θ(n) on this workload).
"""

import math

from repro.congest import CongestNetwork
from repro.core.ksource import k_source_bfs, k_source_bfs_repeated_on
from repro.graphs import cycle_with_chords
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_k_source_distances as k_source_distances

N = 128
KS = [24, 40, 64, 96, 128]


def workload():
    return cycle_with_chords(N, num_chords=3, directed=True, seed=4)


def _point(k: int) -> SweepRow:
    g = workload()
    sources = list(range(0, N, max(1, N // k)))[:k]
    res = k_source_bfs(g, sources, seed=1, method="skeleton",
                       sample_constant=1.0)
    ref = k_source_distances(g, sources)
    exact = all(
        res.distance(u, v) == ref[u][v] for u in sources for v in range(N)
    )
    net = CongestNetwork(g, seed=1)
    rep = k_source_bfs_repeated_on(net, sources)
    return SweepRow(n=k, rounds=res.rounds,
                    extra={"exact": exact, "repeat_rounds": rep.rounds,
                           "sqrt_nk": int(math.sqrt(N * k))})


def test_ksource_bfs_curve(once):
    report = once(lambda: run_sweep("T6-A", KS, _point, polylog_correction=1.0))
    report.notes = f"fixed n={N}, high-eccentricity workload; x-axis is k"
    emit(report)
    assert all(r.extra["exact"] for r in report.rows)
    # Sublinear in k (the repetition baseline is linear in k).
    assert report.fit.exponent < 0.9
    # Beats the repetition baseline everywhere on this workload.
    assert all(r.rounds < r.extra["repeat_rounds"] for r in report.rows)
