#!/usr/bin/env python
"""Regression gate for the simulator core benchmark (BENCH_SIMCORE).

Compares per-point round counts and total wall clock of a *fresh* sweep
against the committed golden baseline ``benchmarks/results/BENCH_SIMCORE.json``
and exits non-zero on drift:

* any point's round count drifting more than ``--max-round-drift`` (default
  20%) from the baseline — rounds are deterministic, so any drift at all
  means the simulator's accounting changed;
* total wall clock exceeding ``--max-wall-ratio`` (default 2x) times the
  baseline's — a coarse fence against accidental slowdowns that survives
  CI-runner noise.

Modes
-----
Default: run the BENCH_SIMCORE sweep in-process and compare it against the
committed baseline. With ``--fresh FILE`` the sweep is skipped and FILE
(a previously persisted report JSON) is compared instead — this file-vs-file
mode is what the test suite uses to prove the gate actually fails on an
injected regression.

Run the gate BEFORE re-running ``bench_simcore.py`` in CI: the benchmark's
``emit()`` overwrites the committed baseline file in the working tree.

Exit codes: 0 pass, 1 regression detected, 2 usage / missing files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "results", "BENCH_SIMCORE.json")

RowKey = Tuple[str, int]


def _ensure_importable() -> None:
    """Make ``repro`` and the benchmark modules importable as a script."""
    src = os.path.join(os.path.dirname(HERE), "src")
    for path in (src, HERE):
        if path not in sys.path:
            sys.path.insert(0, path)


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)


def rows_by_key(payload: Dict[str, Any]) -> Dict[RowKey, Dict[str, Any]]:
    """Index report rows by (workload, n)."""
    out: Dict[RowKey, Dict[str, Any]] = {}
    for row in payload.get("rows", []):
        key = (row.get("extra", {}).get("workload", "?"), row["n"])
        out[key] = row
    return out


def wall_seconds(payload: Dict[str, Any]) -> float:
    """Total recorded wall clock: every ``*_seconds`` field of every row."""
    total = 0.0
    for row in payload.get("rows", []):
        for field, value in row.get("extra", {}).items():
            if field.endswith("_seconds"):
                total += float(value)
    return total


def common_wall_seconds(
    base_rows: Dict[RowKey, Dict[str, Any]],
    fresh_rows: Dict[RowKey, Dict[str, Any]],
) -> Tuple[float, float, list]:
    """Wall totals over the rows *and* ``*_seconds`` fields both sides record.

    A fresh report that adds sweep points or timing columns (e.g. a new
    ``kernel_seconds`` lane) must not be penalized for the extra
    measurements; only like-for-like time is compared. Returns
    ``(base_total, fresh_total, fresh_only_fields)``.
    """
    base_total = 0.0
    fresh_total = 0.0
    fresh_only = set()
    for key in set(base_rows) & set(fresh_rows):
        base_extra = base_rows[key].get("extra", {})
        fresh_extra = fresh_rows[key].get("extra", {})
        for field, value in fresh_extra.items():
            if not field.endswith("_seconds"):
                continue
            if field in base_extra:
                base_total += float(base_extra[field])
                fresh_total += float(value)
            else:
                fresh_only.add(field)
    return base_total, fresh_total, sorted(fresh_only)


def run_fresh_sweep() -> Dict[str, Any]:
    """Run the BENCH_SIMCORE sweep in-process; returns a report payload."""
    _ensure_importable()
    from dataclasses import asdict

    import bench_simcore
    from repro.harness import run_sweep

    report = run_sweep(
        bench_simcore.EXP_ID,
        list(range(len(bench_simcore.POINTS))),
        bench_simcore._point,
        fit=False,
    )
    return {"exp_id": report.exp_id, "rows": [asdict(r) for r in report.rows]}


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    max_round_drift: float,
    max_wall_ratio: float,
) -> int:
    """Print a verdict per check; return the number of failures."""
    failures = 0
    base_rows = rows_by_key(baseline)
    fresh_rows = rows_by_key(fresh)

    missing = sorted(set(base_rows) - set(fresh_rows))
    extra = sorted(set(fresh_rows) - set(base_rows))
    if missing:
        failures += 1
        print(f"FAIL: fresh run is missing baseline points: {missing}")
    if extra:
        print(f"note: fresh run has points absent from the baseline: {extra}")

    for key in sorted(set(base_rows) & set(fresh_rows)):
        base_r = float(base_rows[key]["rounds"])
        fresh_r = float(fresh_rows[key]["rounds"])
        if base_r <= 0:
            continue
        drift = abs(fresh_r - base_r) / base_r
        verdict = "ok" if drift <= max_round_drift else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(f"{verdict}: rounds[{key[0]}, n={key[1]}] "
              f"baseline={base_r:g} fresh={fresh_r:g} drift={drift:.1%} "
              f"(limit {max_round_drift:.0%})")

    base_wall, fresh_wall, fresh_only = common_wall_seconds(
        base_rows, fresh_rows)
    if fresh_only:
        print(f"note: fresh-only timing fields excluded from the wall "
              f"check: {fresh_only}")
    if base_wall > 0:
        # Only slowdowns fail; a ratio below 1 is an improvement and always
        # passes (it is the point of a perf PR, not drift).
        ratio = fresh_wall / base_wall
        verdict = "ok" if ratio <= max_wall_ratio else "FAIL"
        if verdict == "FAIL":
            failures += 1
        label = " (improvement)" if ratio < 1.0 else ""
        print(f"{verdict}: wall clock baseline={base_wall:.3f}s "
              f"fresh={fresh_wall:.3f}s ratio={ratio:.2f}x "
              f"(limit {max_wall_ratio:g}x){label}")
    else:
        print("note: baseline records no wall clock; skipping the wall check")
    return failures


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on BENCH_SIMCORE round-count or wall-clock drift")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="golden report JSON (default: the committed "
                             "benchmarks/results/BENCH_SIMCORE.json)")
    parser.add_argument("--fresh", default=None,
                        help="compare this report JSON instead of running "
                             "the sweep in-process")
    parser.add_argument("--max-round-drift", type=float, default=0.20,
                        metavar="FRAC",
                        help="per-point relative round drift limit "
                             "(default 0.20)")
    parser.add_argument("--max-wall-ratio", type=float, default=2.0,
                        metavar="X",
                        help="total wall clock limit as a multiple of the "
                             "baseline's (default 2.0)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"error: baseline not found: {args.baseline}", file=sys.stderr)
        return 2
    baseline = load_report(args.baseline)

    if args.fresh is not None:
        if not os.path.exists(args.fresh):
            print(f"error: fresh report not found: {args.fresh}",
                  file=sys.stderr)
            return 2
        fresh = load_report(args.fresh)
        print(f"comparing {args.fresh} against {args.baseline}")
    else:
        print(f"running fresh BENCH_SIMCORE sweep against {args.baseline}")
        fresh = run_fresh_sweep()

    failures = compare(baseline, fresh,
                       max_round_drift=args.max_round_drift,
                       max_wall_ratio=args.max_wall_ratio)
    if failures:
        print(f"regression gate: {failures} check(s) failed")
        return 1
    print("regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
