#!/usr/bin/env python
"""Regression gate for the golden benchmark baselines.

Two suites share the gate: ``simcore`` (BENCH_SIMCORE, the exchange-engine
parity sweep — the default) and ``resilience`` (BENCH_RESILIENCE, the
checkpoint/journal overhead sweep); ``--suite all`` runs both. Each compares
per-point round counts and total wall clock of a *fresh* sweep against the
committed golden baseline under ``benchmarks/results/`` and exits non-zero
on drift:

* any point's round count drifting more than ``--max-round-drift`` (default
  20%) from the baseline — rounds are deterministic, so any drift at all
  means the simulator's accounting changed;
* total wall clock exceeding ``--max-wall-ratio`` (default 2x) times the
  baseline's — a coarse fence against accidental slowdowns that survives
  CI-runner noise.

Modes
-----
Default: run the selected suite's sweep in-process and compare it against
the committed baseline. With ``--fresh FILE`` the sweep is skipped and FILE
(a previously persisted report JSON) is compared instead — this file-vs-file
mode is what the test suite uses to prove the gate actually fails on an
injected regression (``--fresh`` gates a single suite, not ``all``).

Run the gate BEFORE re-running the benchmark files in CI: a benchmark's
``emit()`` overwrites its committed baseline file in the working tree.

Exit codes: 0 pass, 1 regression detected, 2 usage / missing files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "results", "BENCH_SIMCORE.json")

# suite name -> (benchmark module, committed golden baseline). Every module
# exposes the same sweep surface: EXP_ID, POINTS, _point.
SUITES = {
    "simcore": ("bench_simcore",
                os.path.join(HERE, "results", "BENCH_SIMCORE.json")),
    "resilience": ("bench_resilience",
                   os.path.join(HERE, "results", "BENCH_RESILIENCE.json")),
}

RowKey = Tuple[str, int]


def _ensure_importable() -> None:
    """Make ``repro`` and the benchmark modules importable as a script."""
    src = os.path.join(os.path.dirname(HERE), "src")
    for path in (src, HERE):
        if path not in sys.path:
            sys.path.insert(0, path)


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)


def rows_by_key(payload: Dict[str, Any]) -> Dict[RowKey, Dict[str, Any]]:
    """Index report rows by (workload, n)."""
    out: Dict[RowKey, Dict[str, Any]] = {}
    for row in payload.get("rows", []):
        key = (row.get("extra", {}).get("workload", "?"), row["n"])
        out[key] = row
    return out


def wall_seconds(payload: Dict[str, Any]) -> float:
    """Total recorded wall clock: every ``*_seconds`` field of every row."""
    total = 0.0
    for row in payload.get("rows", []):
        for field, value in row.get("extra", {}).items():
            if field.endswith("_seconds"):
                total += float(value)
    return total


def common_wall_seconds(
    base_rows: Dict[RowKey, Dict[str, Any]],
    fresh_rows: Dict[RowKey, Dict[str, Any]],
) -> Tuple[float, float, list]:
    """Wall totals over the rows *and* ``*_seconds`` fields both sides record.

    A fresh report that adds sweep points or timing columns (e.g. a new
    ``kernel_seconds`` lane) must not be penalized for the extra
    measurements; only like-for-like time is compared. Returns
    ``(base_total, fresh_total, fresh_only_fields)``.
    """
    base_total = 0.0
    fresh_total = 0.0
    fresh_only = set()
    for key in set(base_rows) & set(fresh_rows):
        base_extra = base_rows[key].get("extra", {})
        fresh_extra = fresh_rows[key].get("extra", {})
        for field, value in fresh_extra.items():
            if not field.endswith("_seconds"):
                continue
            if field in base_extra:
                base_total += float(base_extra[field])
                fresh_total += float(value)
            else:
                fresh_only.add(field)
    return base_total, fresh_total, sorted(fresh_only)


def run_fresh_sweep(suite: str = "simcore") -> Dict[str, Any]:
    """Run a suite's benchmark sweep in-process; returns a report payload."""
    _ensure_importable()
    import importlib
    from dataclasses import asdict

    from repro.harness import run_sweep

    module = importlib.import_module(SUITES[suite][0])
    report = run_sweep(
        module.EXP_ID,
        list(range(len(module.POINTS))),
        module._point,
        fit=False,
    )
    return {"exp_id": report.exp_id, "rows": [asdict(r) for r in report.rows]}


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    max_round_drift: float,
    max_wall_ratio: float,
) -> int:
    """Print a verdict per check; return the number of failures."""
    failures = 0
    base_rows = rows_by_key(baseline)
    fresh_rows = rows_by_key(fresh)

    missing = sorted(set(base_rows) - set(fresh_rows))
    extra = sorted(set(fresh_rows) - set(base_rows))
    if missing:
        failures += 1
        print(f"FAIL: fresh run is missing baseline points: {missing}")
    if extra:
        print(f"note: fresh run has points absent from the baseline: {extra}")

    for key in sorted(set(base_rows) & set(fresh_rows)):
        base_r = float(base_rows[key]["rounds"])
        fresh_r = float(fresh_rows[key]["rounds"])
        if base_r <= 0:
            continue
        drift = abs(fresh_r - base_r) / base_r
        verdict = "ok" if drift <= max_round_drift else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(f"{verdict}: rounds[{key[0]}, n={key[1]}] "
              f"baseline={base_r:g} fresh={fresh_r:g} drift={drift:.1%} "
              f"(limit {max_round_drift:.0%})")

    base_wall, fresh_wall, fresh_only = common_wall_seconds(
        base_rows, fresh_rows)
    if fresh_only:
        print(f"note: fresh-only timing fields excluded from the wall "
              f"check: {fresh_only}")
    if base_wall > 0:
        # Only slowdowns fail; a ratio below 1 is an improvement and always
        # passes (it is the point of a perf PR, not drift).
        ratio = fresh_wall / base_wall
        verdict = "ok" if ratio <= max_wall_ratio else "FAIL"
        if verdict == "FAIL":
            failures += 1
        label = " (improvement)" if ratio < 1.0 else ""
        print(f"{verdict}: wall clock baseline={base_wall:.3f}s "
              f"fresh={fresh_wall:.3f}s ratio={ratio:.2f}x "
              f"(limit {max_wall_ratio:g}x){label}")
    else:
        print("note: baseline records no wall clock; skipping the wall check")
    return failures


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on golden-baseline round-count or wall-clock drift")
    parser.add_argument("--suite", default="simcore",
                        choices=sorted(SUITES) + ["all"],
                        help="which golden baseline to gate (default: "
                             "simcore); 'all' runs every suite")
    parser.add_argument("--baseline", default=None,
                        help="golden report JSON (default: the committed "
                             "baseline of the selected suite)")
    parser.add_argument("--fresh", default=None,
                        help="compare this report JSON instead of running "
                             "the sweep in-process")
    parser.add_argument("--max-round-drift", type=float, default=0.20,
                        metavar="FRAC",
                        help="per-point relative round drift limit "
                             "(default 0.20)")
    parser.add_argument("--max-wall-ratio", type=float, default=2.0,
                        metavar="X",
                        help="total wall clock limit as a multiple of the "
                             "baseline's (default 2.0)")
    args = parser.parse_args(argv)

    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.suite == "all" and (args.baseline or args.fresh):
        print("error: --baseline/--fresh gate a single suite, not 'all'",
              file=sys.stderr)
        return 2

    failures = 0
    for suite in suites:
        baseline_path = args.baseline or SUITES[suite][1]
        if not os.path.exists(baseline_path):
            print(f"error: baseline not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        baseline = load_report(baseline_path)

        if args.fresh is not None:
            if not os.path.exists(args.fresh):
                print(f"error: fresh report not found: {args.fresh}",
                      file=sys.stderr)
                return 2
            fresh = load_report(args.fresh)
            print(f"comparing {args.fresh} against {baseline_path}")
        else:
            print(f"running fresh {SUITES[suite][0]} sweep "
                  f"against {baseline_path}")
            fresh = run_fresh_sweep(suite)

        failures += compare(baseline, fresh,
                            max_round_drift=args.max_round_drift,
                            max_wall_ratio=args.max_wall_ratio)
    if failures:
        print(f"regression gate: {failures} check(s) failed")
        return 1
    print("regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
