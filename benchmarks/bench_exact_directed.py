"""EXP T1-R1-UB — exact directed MWC via APSP in Õ(n) rounds ([8]).

Unweighted case: pipelined n-source BFS, exact, slope ~ 1. The weighted
analogue is covered by ``bench_exact_undirected.py`` (same substrate).
"""

from conftest import sparse_digraph
from repro.core.exact_mwc import exact_mwc_congest
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [64, 128, 256, 512]


def _point(n: int) -> SweepRow:
    g = sparse_digraph(n, seed=n)
    true = exact_mwc(g)
    res = exact_mwc_congest(g, seed=1)
    assert res.value == true, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true)


def test_exact_directed_row(once):
    report = once(lambda: run_sweep("T1-R1-UB", SIZES, _point))
    emit(report)
    assert report.max_ratio() == 1.0
    # O(n + D): near-linear slope.
    assert 0.75 <= report.fit.exponent <= 1.25
