"""EXP T1-R6-UB — Theorem 1.3.B: (2 - 1/g)-approx girth in Õ(sqrt(n) + D).

Two parts:

1. n-sweep on sparse graphs: round exponent vs the claimed 1/2, ratio
   within (2 - 1/g).
2. the paper's headline improvement over Peleg–Roditty–Tal [44]
   (Õ(sqrt(n g) + D)): on growing-girth workloads (pure cycles, g = n) our
   algorithm's rounds grow like sqrt(n) while the baseline's grow like
   sqrt(n g) = n — the gap widens with g and ours must win.
"""

from conftest import sparse_graph
from repro.core.baselines import girth_prt
from repro.core.girth import girth_2approx
from repro.graphs import cycle_graph
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_girth as exact_girth

SIZES = [64, 128, 256, 512]
GIRTH_SIZES = [32, 64, 128, 256]


def _point(n: int) -> SweepRow:
    g = sparse_graph(n, seed=n)
    true = exact_girth(g)
    res = girth_2approx(g, seed=1)
    assert true <= res.value <= (2 - 1 / true) * true, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true,
                    extra={"sigma": res.details["sigma"]})


def test_girth_2approx_row(once):
    report = once(lambda: run_sweep("T1-R6-UB", SIZES, _point,
                                    polylog_correction=1.0))
    emit(report)
    assert report.max_ratio() < 2.0
    assert report.corrected_fit.exponent < 0.85


def test_girth_vs_prt_baseline(once):
    """Ours (sqrt(n)+D) vs [44] (sqrt(ng)+D) as the girth grows."""

    def sweep():
        rows = []
        for n in GIRTH_SIZES:
            g = cycle_graph(n)  # girth = n: the baseline's worst case
            ours = girth_2approx(g, seed=1)
            prt = girth_prt(g, seed=1)
            assert ours.value == n and prt.value == n
            rows.append(SweepRow(n=n, rounds=ours.rounds, value=ours.value,
                                 true_value=float(n),
                                 extra={"prt_rounds": prt.rounds,
                                        "win": ours.rounds < prt.rounds}))
        return rows

    rows = once(sweep)
    for row in rows:
        print(f"  g=n={row.n}: ours={row.rounds} vs PRT={row.extra['prt_rounds']}")
    # The paper's improvement: we must win, and the advantage must widen.
    assert all(r.extra["win"] for r in rows[1:])
    advantages = [r.extra["prt_rounds"] / r.rounds for r in rows]
    assert advantages[-1] > advantages[0]
