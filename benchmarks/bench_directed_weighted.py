"""EXP T1-R2-UBw — Theorem 1.2.D: (2+eps)-approx directed weighted MWC.

Paper claim: Õ(n^{4/5} + D) rounds, ratio <= 2 + eps. The heaviest
algorithm in the repository (scale ladder x restricted BFS); sizes are
accordingly modest.
"""

from conftest import sparse_weighted
from repro.core.weighted_mwc import directed_weighted_mwc_approx
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [32, 64, 128, 192]
EPS = 0.5


def _point(n: int) -> SweepRow:
    g = sparse_weighted(n, seed=n, max_weight=8, directed=True)
    true = exact_mwc(g)
    res = directed_weighted_mwc_approx(g, eps=EPS, seed=1)
    assert true <= res.value <= (2 + EPS) * true + 1e-9, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true,
                    extra={"scales": res.details["num_scales"]})


def test_directed_weighted_row(once):
    report = once(lambda: run_sweep("T1-R2-UBw", SIZES, _point,
                                    polylog_correction=2.0))
    emit(report)
    assert report.max_ratio() <= 2 + EPS
    assert report.corrected_fit.exponent < 1.1
