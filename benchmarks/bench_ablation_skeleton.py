"""EXP ABL-2 — ablation: Algorithm 1's skeleton parameter h.

The paper balances the h-hop BFS cost O(h + k) against the skeleton
broadcast O(|S|^2) = O((n log n / h)^2) by picking h = sqrt(nk). The sweep
uses a high-eccentricity directed workload (cycle with chords) where the
h-cost is real: small h inflates the skeleton broadcast, large h inflates
the hop-limited searches, and the sqrt(nk) neighborhood is the sweet spot.
"""

import math

from repro.congest import CongestNetwork
from repro.core.ksource import k_source_bfs_on
from repro.graphs import cycle_with_chords
from repro.harness import SweepRow
from repro.cache import cached_k_source_distances as k_source_distances

N, K = 192, 6


def test_skeleton_h_ablation(once):
    g = cycle_with_chords(N, num_chords=3, directed=True, seed=4)
    sources = list(range(0, N, N // K))[:K]
    h_star = math.ceil(math.sqrt(N * K))  # = 34
    hs = [max(2, h_star // 4), h_star // 2, h_star, 2 * h_star, 4 * h_star]

    def sweep():
        rows = []
        ref = k_source_distances(g, sources)
        for h in hs:
            net = CongestNetwork(g, seed=1)
            res = k_source_bfs_on(net, sources, h=h, sample_constant=1.5)
            exact = all(res.distance(u, v) == ref[u][v]
                        for u in sources for v in range(N))
            rows.append(SweepRow(n=h, rounds=res.rounds,
                                 extra={"exact": exact,
                                        "sample": res.details["sample_size"]}))
        return rows

    rows = once(sweep)
    for row in rows:
        print(f"  h={row.n}: rounds={row.rounds} |S|={row.extra['sample']} "
              f"exact={row.extra['exact']}")
    assert all(r.extra["exact"] for r in rows)
    by_h = {r.n: r.rounds for r in rows}
    # U-shape: the sqrt(nk) neighborhood beats both extremes.
    near_opt = min(by_h[h_star], by_h[h_star // 2], by_h[2 * h_star])
    assert near_opt <= by_h[max(2, h_star // 4)]
    assert near_opt <= by_h[4 * h_star]
