"""Shared workload builders for the benchmark suite.

Benchmarks measure CONGEST *rounds* (the paper's complexity measure) on
simulated networks; pytest-benchmark additionally records wall time of each
experiment sweep. Each file regenerates one Table 1 row / Theorem 1.6 curve
(see DESIGN.md §3 for the index) and persists its report under
``benchmarks/results/``.

Performance knobs (docs/performance.md): workload graphs and sequential
ground truths are memoized on disk via :mod:`repro.cache`; ``--jobs N`` (or
``REPRO_JOBS=N``) fans independent sweep points out over a process pool.
"""

import os

import pytest

from repro.cache import cached_graph
from repro.graphs import erdos_renyi


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per experiment sweep (default: REPRO_JOBS or serial)",
    )


def pytest_configure(config):
    # Surface --jobs through the env var run_sweep already honors, so the
    # setting reaches pool workers and library code alike.
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)


def sparse_digraph(n: int, seed: int = 1, avg_degree: float = 5.0):
    """Connected sparse random digraph: the directed MWC workload."""
    p = min(1.0, avg_degree / n)
    return cached_graph(
        f"sparse_digraph|{n}|{seed}|{p}",
        lambda: erdos_renyi(n, p=p, directed=True, seed=seed))


def sparse_graph(n: int, seed: int = 1, avg_degree: float = 5.0):
    """Connected sparse random graph: the undirected workload."""
    p = min(1.0, 2 * avg_degree / n)
    return cached_graph(
        f"sparse_graph|{n}|{seed}|{p}",
        lambda: erdos_renyi(n, p=p, directed=False, seed=seed))


def sparse_weighted(n: int, seed: int = 1, max_weight: int = 8,
                    directed: bool = False, avg_degree: float = 5.0):
    """Connected sparse weighted graph, W = poly(n)-bounded weights."""
    p = min(1.0, (avg_degree if directed else 2 * avg_degree) / n)
    return cached_graph(
        f"sparse_weighted|{n}|{seed}|{max_weight}|{int(directed)}|{p}",
        lambda: erdos_renyi(n, p=p, directed=directed, weighted=True,
                            max_weight=max_weight, seed=seed))


@pytest.fixture
def once(benchmark):
    """Run a whole experiment sweep exactly once under pytest-benchmark."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return run
