"""EXP T1-R5-UB — exact girth in O(n) rounds (Holzer–Wattenhofer [28])."""

from conftest import sparse_graph
from repro.core.baselines import exact_girth_congest
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_girth as exact_girth

SIZES = [64, 128, 256, 512]


def _point(n: int) -> SweepRow:
    g = sparse_graph(n, seed=n)
    true = exact_girth(g)
    res = exact_girth_congest(g, seed=1)
    assert res.value == true, (n, true, res.value)
    return SweepRow(n=n, rounds=res.rounds, value=res.value, true_value=true)


def test_exact_girth_row(once):
    report = once(lambda: run_sweep("T1-R5-UB", SIZES, _point))
    emit(report)
    assert report.max_ratio() == 1.0
    assert 0.75 <= report.fit.exponent <= 1.25
