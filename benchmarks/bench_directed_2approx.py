"""EXP T1-R2-UB — Theorem 1.2.C: 2-approx directed unweighted MWC.

Paper claim: Õ(n^{4/5} + D) rounds, ratio <= 2. The sweep fits the round
exponent on sparse random digraphs (D = O(log n)), checks every output is
within [MWC, 2 MWC], and compares against the exact Õ(n)-round APSP
algorithm on the largest instance to show the sublinear win.
"""


from conftest import sparse_digraph
from repro.core.directed_mwc import DirectedMwcParams, directed_mwc_2approx
from repro.core.exact_mwc import exact_mwc_congest
from repro.harness import SweepRow, emit, run_sweep
from repro.cache import cached_exact_mwc as exact_mwc

SIZES = [48, 96, 192, 384]

# Polylog knobs (per-phase cap, R(v) partitions) held constant across the
# sweep so the fitted slope reflects the n^{4/5} phase count; the paper's
# Θ(log n) caps would add a log^2-factor that dominates at simulable n
# (DESIGN.md §1, "Õ absorbing polylog factors").
PARAMS = DirectedMwcParams(cap=8, beta=3, sample_constant=3.0)


def _point(n: int) -> SweepRow:
    g = sparse_digraph(n, seed=n)
    true = exact_mwc(g)
    res = directed_mwc_2approx(g, seed=1, params=PARAMS)
    assert true <= res.value <= 2 * true, (n, true, res.value)
    return SweepRow(
        n=n, rounds=res.rounds, value=res.value, true_value=true,
        extra={"sample": res.details["sample_size"],
               "overflow": res.details["overflow_count"]},
    )


def test_directed_2approx_row(once):
    # Two hidden log factors: hitting-set sampling in Algorithm 1's skeleton
    # and the O(log^2 n)-round phases of the restricted BFS.
    report = once(lambda: run_sweep("T1-R2-UB", SIZES, _point,
                                    polylog_correction=2.0))
    # Round comparison against the exact Õ(n) APSP algorithm at the largest
    # size. NOTE: at simulable n the approximation's polylog constants still
    # exceed exact APSP's lean pipeline — the paper's win is asymptotic; the
    # reproducible claim is the sublinear *growth exponent*.
    g = sparse_digraph(SIZES[-1], seed=SIZES[-1])
    exact_rounds = exact_mwc_congest(g, seed=1).rounds
    report.notes = (f"exact APSP: {exact_rounds} rounds at n={SIZES[-1]}; "
                    f"2-approx: {report.rows[-1].rounds} "
                    f"(constants favor exact at small n; slope is the claim)")
    emit(report)
    assert report.max_ratio() is not None and report.max_ratio() <= 2.0
    # Shape check: sublinear growth once the hidden polylog is divided out
    # (paper exponent 0.8).
    assert report.corrected_fit.exponent < 1.0
