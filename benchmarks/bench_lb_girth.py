"""EXP T1-R5-LB — Theorem 1.3.A: alpha-approx girth needs Ω̃(n^{1/4}).

Two parts, split by what is checkable at which scale:

1. **Gap verification** on constructible instances: the unweighted loop
   family's girth is ell + 4 iff the sets intersect and > alpha (ell + 4)
   otherwise, across random inputs (exact sequential girth check).
2. **Exponent of the implied bound** at the theorem's parameterization
   (ell = Θ(n^{1/4}), k = Θ(n^{3/4}) bits): the bound formula
   min(ell / 2, k / log^2 n) is evaluated over a large synthetic n-range —
   constructing those instances is infeasible (and unnecessary: the bound
   depends only on the parameters), and its fitted exponent must be ~ 1/4.
   The n^{1/4} balance point genuinely requires n >> 10^4, which is why
   part 2 is formula-level (EXPERIMENTS.md discusses).
"""

import math

from repro.analysis.complexity import fit_exponent
from repro.harness import SweepRow
from repro.lowerbounds import (
    girth_alpha_family,
    implied_round_bound,
    random_disjoint,
    random_intersecting,
    verify_instance,
)

SMALL = [(6, 3), (12, 4), (24, 6)]
ALPHA = 3.0
SYNTH_NS = [10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8, 10 ** 9]


def test_lb_girth_gap_verified(once):
    def sweep():
        rows = []
        for k, ell in SMALL:
            yes = girth_alpha_family(k, ell, ALPHA,
                                     random_intersecting(k, seed=k))
            no = girth_alpha_family(k, ell, ALPHA, random_disjoint(k, seed=k + 1))
            rep_yes = verify_instance(yes)
            rep_no = verify_instance(no)
            assert rep_yes["mwc"] == ell + 4
            assert rep_no["mwc"] > ALPHA * (ell + 4)
            rows.append(SweepRow(n=no.graph.n,
                                 rounds=implied_round_bound(no),
                                 extra={"k_bits": k, "ell": ell}))
        return rows

    rows = once(sweep)
    for row in rows:
        print(f"  n={row.n}: gap verified, implied >= {row.rounds:.2f}")


def test_lb_girth_theorem_exponent(once):
    """The bound formula at ell = n^{1/4}, k = n^{3/4} fits exponent ~ 1/4."""

    def compute():
        out = []
        for n in SYNTH_NS:
            ell = n ** 0.25
            k = n ** 0.75
            out.append(min(ell / 2.0, k / math.log2(n) ** 2))
        return out

    bounds = once(compute)
    for n, bound in zip(SYNTH_NS, bounds):
        print(f"  n={n:.0e}: implied >= {bound:.1f}")
    fit = fit_exponent(SYNTH_NS, bounds)
    print(f"  formula-level exponent: {fit.exponent:.3f} (paper: 0.25)")
    assert 0.2 <= fit.exponent <= 0.3
