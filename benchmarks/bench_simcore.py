"""EXP BENCH_SIMCORE — exchange fast paths: parity and speedup.

Every point runs the same algorithm four times — with the columnar batched
exchange disabled (the dict reference path), with it enabled (kernel engine
off), with the vectorized kernel engine on top of it, and with phase-scoped
metrics on — and asserts the simulation is observationally identical: same
rounds, same message and word totals. Wall times of all paths are recorded
in the persisted JSON, which doubles as the performance log behind
docs/performance.md and docs/observability.md; the traced run's phase
breakdown is attached to each row.

The checked-in ``benchmarks/results/BENCH_SIMCORE.json`` is a golden
baseline: CI re-runs this sweep (with ``--jobs 2``) and fails if any round
count drifts from it, fencing the simulator core and the fast paths at
once; ``benchmarks/check_regression.py`` applies the same file as a
standalone regression gate (rounds within 20%, wall clock within 2x over
the fields both reports record).
"""

import json
import os
import time

from conftest import sparse_weighted
from repro.congest.batch import batching
from repro.congest.kernels import engaged_runs, kernels
from repro.core.exact_mwc import exact_mwc_congest
from repro.core.ksource import k_source_bfs
from repro.graphs import cycle_with_chords
from repro.harness import SweepRow, emit, results_dir, row_phases, run_sweep
from repro.obs import observing

EXP_ID = "BENCH_SIMCORE"

# (workload, size): small enough for a CI smoke run, large enough that the
# batched path's advantage is visible in the recorded timings.
POINTS = [
    ("mwc", 48),
    ("mwc", 96),
    ("ksource", 24),
    ("ksource", 40),
    ("ksource", 96),
]


def _run(kind: str, size: int):
    if kind == "mwc":
        g = sparse_weighted(size, seed=size, max_weight=16)
        return exact_mwc_congest(g, seed=1)
    g = cycle_with_chords(128, num_chords=3, directed=True, seed=4)
    sources = list(range(0, 128, max(1, 128 // size)))[:size]
    return k_source_bfs(g, sources, seed=1, method="skeleton",
                        sample_constant=1.0)


def _point(idx: int) -> SweepRow:
    kind, size = POINTS[idx]
    timings = {}
    observed = {}
    for label, batch_on, kernel_on in (
        ("dict", False, False),
        ("batch", True, False),
        ("kernel", True, True),
    ):
        engaged_before = engaged_runs()
        with batching(batch_on), kernels(kernel_on):
            start = time.perf_counter()
            res = _run(kind, size)
            timings[label] = time.perf_counter() - start
        if label == "kernel":
            # A silently-fallen-back kernel run would record a meaningless
            # timing; fail loudly instead (CI asserts this too).
            assert engaged_runs() > engaged_before, (
                "kernel engine never engaged", kind, size)
        observed[label] = (res.rounds, res.stats.messages, res.stats.words)
    assert observed["batch"] == observed["dict"], (kind, size, observed)
    assert observed["kernel"] == observed["dict"], (kind, size, observed)
    # Final run with phase metrics on: the observed simulation must be
    # bit-identical (observability never perturbs the workload), and the
    # phase breakdown rides along in the persisted row.
    with batching(True), kernels(True), observing():
        start = time.perf_counter()
        traced = _run(kind, size)
        timings["traced"] = time.perf_counter() - start
    observed["traced"] = (traced.rounds, traced.stats.messages,
                          traced.stats.words)
    assert observed["traced"] == observed["dict"], (kind, size, observed)
    rounds, messages, words = observed["dict"]
    return SweepRow(
        n=size, rounds=rounds,
        extra={"workload": kind, "messages": messages, "words": words,
               "dict_seconds": round(timings["dict"], 4),
               "batch_seconds": round(timings["batch"], 4),
               "kernel_seconds": round(timings["kernel"], 4),
               "traced_seconds": round(timings["traced"], 4)},
        phases=row_phases(traced))


def _baseline_rounds():
    """Round counts from the checked-in baseline, or None on first run."""
    path = os.path.join(results_dir(), f"{EXP_ID}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        payload = json.load(f)
    return {(r["extra"]["workload"], r["n"]): r["rounds"]
            for r in payload["rows"]}


def test_simcore_parity_and_baseline(once):
    baseline = _baseline_rounds()
    report = once(lambda: run_sweep(
        EXP_ID, list(range(len(POINTS))), _point, fit=False,
        notes="dict vs batched exchange: rounds/messages/words asserted "
              "identical per point; *_seconds are wall times of each path"))
    if baseline is not None:
        fresh = {(r.extra["workload"], r.n): r.rounds for r in report.rows}
        assert fresh == baseline, "round counts drifted from BENCH_SIMCORE.json"
    emit(report)
